"""Coverage for tools/check_chrome_trace.py (the CI trace validator)."""

import importlib.util
import json
import os

import pytest

TOOL = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "tools", "check_chrome_trace.py")

spec = importlib.util.spec_from_file_location("check_chrome_trace", TOOL)
cct = importlib.util.module_from_spec(spec)
spec.loader.exec_module(cct)


def _span_x(ts, dur, span="op-1", name="stage"):
    return {"ph": "X", "name": name, "pid": 1, "tid": 1,
            "ts": ts, "dur": dur, "args": {"span": span}}


def _valid_events():
    return [
        {"ph": "B", "name": "run", "pid": 1, "tid": 1, "ts": 0},
        _span_x(0, 3, name="post"),
        _span_x(3, 4, name="transmit"),
        _span_x(7, 2, name="complete"),
        {"ph": "E", "name": "run", "pid": 1, "tid": 1, "ts": 9},
    ]


def _write(tmp_path, events, name="trace.json", wrap=True):
    path = tmp_path / name
    doc = {"traceEvents": events} if wrap else events
    path.write_text(json.dumps(doc))
    return str(path)


def test_valid_trace_passes(tmp_path):
    assert cct.check(_write(tmp_path, _valid_events())) == []


def test_bare_event_array_accepted(tmp_path):
    assert cct.check(_write(tmp_path, _valid_events(), wrap=False)) == []


def test_unreadable_file(tmp_path):
    assert cct.check(str(tmp_path / "missing.json"))[0].startswith("unreadable")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert cct.check(str(bad))[0].startswith("unreadable")


def test_empty_trace(tmp_path):
    assert cct.check(_write(tmp_path, [])) == ["no traceEvents"]
    path = tmp_path / "obj.json"
    path.write_text(json.dumps({"other": 1}))
    assert cct.check(str(path)) == ["no traceEvents"]


def test_missing_phase(tmp_path):
    events = _valid_events() + [{"name": "oops", "pid": 1, "tid": 1, "ts": 1}]
    errors = cct.check(_write(tmp_path, events))
    assert any("missing ph" in e for e in errors)


def test_unbalanced_begin_end(tmp_path):
    unclosed = _valid_events()[:-1]  # drop the E
    errors = cct.check(_write(tmp_path, unclosed))
    assert any("unclosed B" in e for e in errors)

    stray_end = _valid_events() + [
        {"ph": "E", "name": "run", "pid": 9, "tid": 9, "ts": 10},
    ]
    errors = cct.check(_write(tmp_path, stray_end))
    assert any("E without matching B" in e for e in errors)


def test_negative_ts_or_dur(tmp_path):
    events = _valid_events()
    events[1] = _span_x(-1, 4)
    errors = cct.check(_write(tmp_path, events))
    assert any("ts/dur >= 0" in e for e in errors)


def test_span_out_of_order(tmp_path):
    events = [_span_x(5, 2), _span_x(0, 5)]
    errors = cct.check(_write(tmp_path, events))
    assert any("not causally ordered" in e for e in errors)


def test_span_duration_gap(tmp_path):
    # Stages cover [0,3) and [5,7): a 2-unit hole vs the 7-unit extent.
    events = [_span_x(0, 3), _span_x(5, 2)]
    errors = cct.check(_write(tmp_path, events))
    assert any("do not sum" in e for e in errors)


def test_trace_without_spans_is_flagged(tmp_path):
    events = [
        {"ph": "B", "name": "run", "pid": 1, "tid": 1, "ts": 0},
        {"ph": "E", "name": "run", "pid": 1, "tid": 1, "ts": 9},
    ]
    errors = cct.check(_write(tmp_path, events))
    assert errors == ["no span events (args.span) found"]


@pytest.mark.parametrize("wrap", [True, False])
def test_main_exit_codes(tmp_path, capsys, wrap):
    good = _write(tmp_path, _valid_events(), name="good.json", wrap=wrap)
    assert cct.main([good]) == 0
    assert "OK" in capsys.readouterr().out

    bad = _write(tmp_path, [_span_x(5, 2), _span_x(0, 5)], name="bad.json")
    assert cct.main([good, bad]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "not causally ordered" in out


def test_main_without_args_prints_usage(capsys):
    assert cct.main([]) == 2
    assert "Usage" in capsys.readouterr().out
