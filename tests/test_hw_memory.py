"""Memory model: address spaces, buffers, copy costs."""

import pytest

from repro.errors import MemoryAccessError
from repro.hw.memory import AddressSpace, MemoryModel
from repro.hw.profiles import SYSTEM_L
from repro.units import mib, us


def test_alloc_unique_aligned_addresses():
    space = AddressSpace()
    a = space.alloc(1000)
    b = space.alloc(1000)
    assert a.addr % 4096 == 0
    assert b.addr % 4096 == 0
    assert b.addr >= a.addr + 1000


def test_alloc_zero_rejected():
    with pytest.raises(MemoryAccessError):
        AddressSpace().alloc(0)


def test_find_locates_containing_buffer():
    space = AddressSpace()
    buf = space.alloc(8192)
    assert space.find(buf.addr + 100, 50) is buf
    with pytest.raises(MemoryAccessError):
        space.find(buf.addr + 8000, 500)  # crosses the end


def test_contains():
    space = AddressSpace()
    buf = space.alloc(128)
    assert buf.addr in space
    assert (buf.addr + 127) in space
    assert (buf.addr + 128) not in space


def test_buffer_read_write_roundtrip():
    space = AddressSpace()
    buf = space.alloc(256)
    buf.write(10, b"hello")
    assert buf.read(10, 5) == b"hello"
    # Unwritten regions read as zeros.
    assert buf.read(0, 4) == b"\x00" * 4


def test_buffer_read_before_any_write_is_zeros():
    buf = AddressSpace().alloc(64)
    assert buf.read(0, 64) == bytes(64)


def test_buffer_bounds_enforced():
    buf = AddressSpace().alloc(16)
    with pytest.raises(MemoryAccessError):
        buf.write(10, b"toolongpayload")
    with pytest.raises(MemoryAccessError):
        buf.read(0, 17)
    with pytest.raises(MemoryAccessError):
        buf.check_range(buf.addr - 1, 4)


def test_copy_cost_anchor_140us_per_mib():
    """The paper's §2 anchor: one extra memcpy costs ~140 us/MiB."""
    model = MemoryModel(SYSTEM_L.memory)
    cost = model.copy_ns(mib(1))
    assert us(120) < cost < us(160)


def test_copy_cost_zero_and_negative():
    model = MemoryModel(SYSTEM_L.memory)
    assert model.copy_ns(0) == 0.0
    with pytest.raises(MemoryAccessError):
        model.copy_ns(-1)


def test_copy_overhead_dominates_small():
    model = MemoryModel(SYSTEM_L.memory)
    assert model.copy_ns(8) >= SYSTEM_L.memory.memcpy_overhead_ns


def test_pin_cost_scales_with_pages():
    model = MemoryModel(SYSTEM_L.memory)
    one_page = model.pin_ns(100)
    two_pages = model.pin_ns(4097)
    assert two_pages == pytest.approx(2 * one_page)
