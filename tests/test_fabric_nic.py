"""Fabric and NIC engine behaviour: serialization, sharing, loopback, UD."""

import math

import pytest

from repro.cluster import build_cluster, build_pair
from repro.core.endpoint import connect, make_endpoint, make_rc_pair, make_ud_pair
from repro.errors import HardwareError
from repro.hw.link import Link
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import gbit_per_s, to_gbit_per_s, us
from repro.verbs.wr import Opcode, RecvWR, SendWR


def test_fabric_serialization_includes_packet_tax():
    sim = Simulator()
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 2)
    nicp = SYSTEM_L.nic
    one = fabric.serialization_ns(100)
    assert one == pytest.approx(nicp.per_packet_ns + 100 / nicp.link_bw)
    # 3 packets for 3*MTU bytes.
    three = fabric.serialization_ns(3 * nicp.mtu)
    assert three == pytest.approx(3 * nicp.per_packet_ns + 3 * nicp.mtu / nicp.link_bw)


def test_fabric_rejects_unknown_host_and_negative_size():
    sim = Simulator()
    fabric, _ = build_cluster(sim, SYSTEM_L, 2)
    with pytest.raises(HardwareError):
        fabric.nic(99)

    def proc():
        yield from fabric.transmit(0, 1, -5, None)

    with pytest.raises(HardwareError):
        sim.run(sim.process(proc()))


def test_tx_port_is_shared_across_flows():
    """Two QPs on one host share the host's single TX port (fan-out caps)."""
    sim = Simulator(seed=2)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 3)
    src, dst1, dst2 = hosts
    size = 1 << 20
    done = []

    def stream(dst, tag):
        ep = yield from make_endpoint(src, "bypass")
        peer = yield from make_endpoint(dst, "bypass")
        yield from connect(ep, peer)
        t0 = sim.now
        nmsgs = 16
        for i in range(nmsgs):
            yield from ep.post_send(SendWR(
                wr_id=i, opcode=Opcode.RDMA_WRITE, addr=ep.buf.addr, length=size,
                lkey=ep.mr.lkey, remote_addr=peer.buf.addr, rkey=peer.mr.rkey,
                signaled=(i == nmsgs - 1)))
        while True:
            cqes = yield from ep.wait_send()
            if cqes:
                break
        done.append((tag, to_gbit_per_s(nmsgs * size / (sim.now - t0))))

    sim.process(stream(dst1, "flow1"))
    sim.process(stream(dst2, "flow2"))
    sim.run()
    total = sum(rate for _tag, rate in done)
    # Two flows to different destinations still share ~100 Gbit/s egress.
    assert total < 110.0
    assert total > 60.0


def test_loopback_same_host_faster_than_wire_but_not_free():
    sim = Simulator(seed=2)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 1)
    host = hosts[0]

    def main():
        a = yield from make_endpoint(host, "bypass")
        b = yield from make_endpoint(host, "bypass")
        yield from connect(a, b)
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=b.buf.length, lkey=b.mr.lkey))
        t0 = sim.now
        yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=65536,
                                      lkey=a.mr.lkey))
        cqes = yield from b.wait_recv()
        assert cqes[0].ok
        return sim.now - t0

    elapsed = sim.run(sim.process(main()))
    assert 0 < elapsed < us(50)


def test_link_two_node_wrapper():
    sim = Simulator()
    link = Link(sim, bandwidth=gbit_per_s(100), propagation_ns=100.0,
                mtu=4096, per_packet_ns=25.0)
    got = []
    link.ports[1].deliver = got.append

    def proc():
        yield from link.transmit(link.ports[0], 4096, "payload")
        return sim.now

    left_wire = sim.run(sim.process(proc()))
    sim.run()
    assert got == ["payload"]
    assert left_wire == pytest.approx(link.serialization_ns(4096))
    assert link.peer(link.ports[0]) is link.ports[1]
    with pytest.raises(HardwareError):
        link.peer(object())


def test_nic_counters_track_traffic():
    sim = Simulator(seed=1)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        for i in range(3):
            yield from b.post_recv(RecvWR(wr_id=i, addr=b.buf.addr,
                                          length=b.buf.length, lkey=b.mr.lkey))
        for i in range(3):
            yield from a.post_send(SendWR(wr_id=i, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=1024,
                                          lkey=a.mr.lkey))
        got = 0
        while got < 3:
            got += len((yield from b.wait_recv()))

    sim.run(sim.process(main()))
    sim.run()
    assert host_a.nic.counters.tx_msgs == 3
    assert host_b.nic.counters.rx_msgs == 3
    assert host_b.nic.counters.acks_sent == 3
    assert host_b.nic.counters.rx_bytes >= 3 * 1024


def test_ud_drop_when_no_recv_posted():
    sim = Simulator(seed=1)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_ud_pair(host_a, host_b, "bypass", "bypass")
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, addr=a.buf.addr, length=256,
                    lkey=a.mr.lkey, ah=b.addr)
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()  # UD send still completes locally
        assert cqes[0].ok
        yield sim.timeout(us(50))
        return b.host.nic.counters.ud_drops

    assert sim.run(sim.process(main())) == 1


def test_memory_watch_fires_only_for_overlapping_range():
    sim = Simulator(seed=1)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        hit = b.host.nic.watch_memory(b.buf.addr, 64)
        miss = b.host.nic.watch_memory(b.buf.addr + 1 << 20, 64)
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                    length=64, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=b.mr.rkey)
        yield from a.post_send(wr)
        yield from a.wait_send()
        yield sim.timeout(us(10))
        return hit.triggered, miss.triggered

    assert sim.run(sim.process(main())) == (True, False)


def test_chunked_fabric_interleaves_flows():
    """With chunking, a small message is not stuck behind an 8 MiB one."""

    def small_latency(chunk):
        sim = Simulator(seed=4)
        _fabric, hosts = build_cluster(sim, SYSTEM_L, 2, chunk_bytes=chunk)
        src, dst = hosts
        out = {}

        def main():
            big = yield from make_endpoint(src, "bypass")
            big_peer = yield from make_endpoint(dst, "bypass")
            yield from connect(big, big_peer)
            small = yield from make_endpoint(src, "bypass")
            small_peer = yield from make_endpoint(dst, "bypass")
            yield from connect(small, small_peer)
            # Launch the elephant first.
            yield from big.post_send(SendWR(
                wr_id=1, opcode=Opcode.RDMA_WRITE, addr=big.buf.addr,
                length=8 << 20, lkey=big.mr.lkey,
                remote_addr=big_peer.buf.addr, rkey=big_peer.mr.rkey))
            yield sim.timeout(us(5))  # elephant is now on the wire
            t0 = sim.now
            yield from small.post_send(SendWR(
                wr_id=2, opcode=Opcode.RDMA_WRITE, addr=small.buf.addr,
                length=64, lkey=small.mr.lkey,
                remote_addr=small_peer.buf.addr, rkey=small_peer.mr.rkey))
            cqes = yield from small.wait_send()
            assert cqes[0].ok
            out["lat"] = sim.now - t0

        sim.run(sim.process(main()))
        return out["lat"]

    blocked = small_latency(chunk=None)
    interleaved = small_latency(chunk=64 * 1024)
    assert interleaved < blocked / 5  # chunking rescues the mouse flow
