"""Non-power-of-two collectives vs a brute-force pairwise oracle.

The alltoall/alltoallv/allgather algorithms take different code paths for
non-power-of-two worlds (ring shifts instead of XOR partners).  These
tests run them on >2-host clusters — where the receiver-side contention
model is on by default — at world sizes 3 and 6, and compare the data
every rank receives against a naive oracle that moves the same payloads
with one tagged point-to-point message per (src, dst) pair.
"""

import pytest

from repro.cluster import build_cluster
from repro.hw.profiles import SYSTEM_L
from repro.mpi import MpiWorld
from repro.sim import Simulator

TAG_ORACLE = 7777
SIZES = [3, 6]


def run_world(program, size, hosts_n=3, seed=5):
    sim = Simulator(seed=seed)
    fabric, hosts = build_cluster(sim, SYSTEM_L, hosts_n)
    assert fabric.rx_contention is not None  # >2 hosts -> contention on
    world = MpiWorld(sim, hosts, size)
    return world.run(program)


def _block(src, dst):
    return f"blk{src}->{dst}"


def _oracle_exchange(comm, payload_for):
    """Move payload_for(dst) to every dst with plain pairwise messages."""
    rreqs = []
    for peer in range(comm.size):
        if peer == comm.rank:
            continue
        rreqs.append((yield from comm.irecv(peer, TAG_ORACLE)))
    sreqs = []
    for peer in range(comm.size):
        if peer == comm.rank:
            continue
        data = payload_for(peer)
        sreqs.append((yield from comm.isend(peer, len(data), TAG_ORACLE,
                                            data)))
    yield from comm.waitall(sreqs + rreqs)
    out = [None] * comm.size
    out[comm.rank] = payload_for(comm.rank)
    for req in rreqs:
        out[req.source] = req.data
    return out


@pytest.mark.parametrize("size", SIZES)
def test_alltoall_matches_pairwise_oracle(size):
    def collective(comm):
        blocks = [_block(comm.rank, dst) for dst in range(comm.size)]
        out = yield from comm.alltoall(64, data_per_peer=blocks)
        return out

    def oracle(comm):
        out = yield from _oracle_exchange(
            comm, lambda dst: _block(comm.rank, dst))
        return out

    got = run_world(collective, size)
    want = run_world(oracle, size)
    assert got == want
    # Rank r must hold exactly the blocks addressed to it, by source.
    for r, blocks in enumerate(got):
        assert blocks == [_block(src, r) for src in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_alltoallv_matches_pairwise_oracle(size):
    """Variable-size blocks: dst gets (src+1)*(dst+1) bytes from src."""

    def payload(src, dst):
        return bytes([src * 16 + dst]) * ((src + 1) * (dst + 1))

    def collective(comm):
        counts = [(comm.rank + 1) * (dst + 1) for dst in range(comm.size)]
        data = [payload(comm.rank, dst) for dst in range(comm.size)]
        out = yield from comm.alltoallv(counts, data_per_peer=data)
        return out

    def oracle(comm):
        out = yield from _oracle_exchange(
            comm, lambda dst: payload(comm.rank, dst))
        return out

    got = run_world(collective, size)
    want = run_world(oracle, size)
    assert got == want
    for r, blocks in enumerate(got):
        assert blocks == [payload(src, r) for src in range(size)]
        assert [len(b) for b in blocks] == [
            (src + 1) * (r + 1) for src in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_allgather_matches_pairwise_oracle(size):
    def collective(comm):
        out = yield from comm.allgather(data=f"rank{comm.rank}")
        return out

    def oracle(comm):
        # Allgather == alltoall where every destination gets the same block.
        out = yield from _oracle_exchange(
            comm, lambda dst: f"rank{comm.rank}")
        return out

    got = run_world(collective, size)
    want = run_world(oracle, size)
    assert got == want
    assert all(blocks == [f"rank{s}" for s in range(size)] for blocks in got)


def test_six_ranks_on_three_hosts_uses_loopback_and_fabric():
    """Co-located ranks talk over the hairpin path, remote over the fabric."""

    def program(comm):
        out = yield from comm.alltoall(
            32, data_per_peer=[_block(comm.rank, d) for d in range(comm.size)])
        return out

    sim = Simulator(seed=5)
    fabric, hosts = build_cluster(sim, SYSTEM_L, 3)
    world = MpiWorld(sim, hosts, 6)
    results = world.run(program)
    for r, blocks in enumerate(results):
        assert blocks == [_block(src, r) for src in range(6)]
    assert fabric.messages_carried > 0
    assert fabric.messages_dropped == 0
