"""CoRD policy framework and the four shipped policies."""

import pytest

from repro.cluster import build_pair
from repro.core.endpoint import make_rc_pair
from repro.core.policies import (
    AclRule,
    FlowStats,
    IsolationQuota,
    SecurityAcl,
    TokenBucketQos,
)
from repro.core.policy import OpContext, Policy, PolicyChain
from repro.errors import ConfigError, PolicyViolation
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import ms, us
from repro.verbs.wr import Opcode, RecvWR, SendWR


def ctx_for(op="post_send", length=1024, tenant="t0", opcode=Opcode.SEND, now=0.0):
    wr = SendWR(wr_id=1, opcode=opcode, length=length) if op == "post_send" else None
    return OpContext(now=now, host=None, op=op, send_wr=wr, tenant=tenant)


# -- framework ------------------------------------------------------------------


def test_chain_sums_costs_and_counts():
    class Fixed(Policy):
        def _evaluate(self, ctx):
            return 10.0

    chain = PolicyChain([Fixed(), Fixed()])
    assert chain.evaluate(ctx_for()) == 20.0
    assert all(p.evaluations == 1 for p in chain)


def test_chain_denial_short_circuits():
    class Deny(Policy):
        name = "deny-all"

        def _evaluate(self, ctx):
            raise self.deny("nope")

    class Later(Policy):
        def _evaluate(self, ctx):
            return 1.0

    later = Later()
    chain = PolicyChain([Deny(), later])
    with pytest.raises(PolicyViolation, match="deny-all"):
        chain.evaluate(ctx_for())
    assert later.evaluations == 0


# -- QoS ----------------------------------------------------------------------------


def test_qos_admits_within_rate():
    qos = TokenBucketQos(rate_bytes_per_s=1e9, burst_bytes=10_000)
    assert qos.evaluate(ctx_for(length=5_000)) > 0
    assert qos.bytes_admitted == 5_000


def test_qos_denies_burst_overflow_then_refills():
    qos = TokenBucketQos(rate_bytes_per_s=1e9, burst_bytes=10_000)
    qos.evaluate(ctx_for(length=10_000, now=0.0))
    with pytest.raises(PolicyViolation):
        qos.evaluate(ctx_for(length=1_000, now=0.0))
    # 1 GB/s == 1 B/ns: after 2000 ns, 2000 bytes are back.
    assert qos.evaluate(ctx_for(length=1_500, now=2_000.0)) > 0
    assert qos.denials == 1


def test_qos_buckets_are_per_tenant():
    qos = TokenBucketQos(rate_bytes_per_s=1e9, burst_bytes=1_000)
    qos.evaluate(ctx_for(length=1_000, tenant="a"))
    with pytest.raises(PolicyViolation):
        qos.evaluate(ctx_for(length=1_000, tenant="a"))
    qos.evaluate(ctx_for(length=1_000, tenant="b"))  # unaffected


def test_qos_ignores_non_send_ops():
    qos = TokenBucketQos(rate_bytes_per_s=1.0, burst_bytes=1)
    assert qos.evaluate(ctx_for(op="poll_cq")) > 0  # costs, never denies


def test_qos_config_validation():
    with pytest.raises(ConfigError):
        TokenBucketQos(rate_bytes_per_s=0, burst_bytes=10)
    with pytest.raises(ConfigError):
        TokenBucketQos(rate_bytes_per_s=10, burst_bytes=0)


# -- ACL --------------------------------------------------------------------------


def test_acl_first_match_wins():
    acl = SecurityAcl([
        AclRule(action="allow", tenant="trusted"),
        AclRule(action="deny", opcode=Opcode.RDMA_READ),
    ])
    acl.evaluate(ctx_for(opcode=Opcode.RDMA_READ, tenant="trusted"))  # allowed
    with pytest.raises(PolicyViolation):
        acl.evaluate(ctx_for(opcode=Opcode.RDMA_READ, tenant="other"))


def test_acl_size_rule():
    acl = SecurityAcl([AclRule(action="deny", max_bytes=4096)])
    acl.evaluate(ctx_for(length=4096))
    with pytest.raises(PolicyViolation):
        acl.evaluate(ctx_for(length=4097))


def test_acl_default_deny():
    acl = SecurityAcl([], default_allow=False)
    with pytest.raises(PolicyViolation):
        acl.evaluate(ctx_for())


def test_acl_cost_scales_with_rules_walked():
    rules = [AclRule(action="allow", tenant=f"t{i}") for i in range(5)]
    acl = SecurityAcl(rules + [AclRule(action="allow")])
    cost = acl.evaluate(ctx_for(tenant="nomatch"))
    assert cost == pytest.approx(6 * 12.0)


# -- isolation --------------------------------------------------------------------


def test_quota_ops_budget_resets_per_epoch():
    quota = IsolationQuota(epoch_ns=us(10), max_ops=2)
    quota.evaluate(ctx_for(now=0.0))
    quota.evaluate(ctx_for(now=1.0))
    with pytest.raises(PolicyViolation):
        quota.evaluate(ctx_for(now=2.0))
    quota.evaluate(ctx_for(now=us(10) + 1))  # new epoch


def test_quota_bytes_budget():
    quota = IsolationQuota(epoch_ns=ms(1), max_bytes=10_000)
    quota.evaluate(ctx_for(length=9_000))
    with pytest.raises(PolicyViolation):
        quota.evaluate(ctx_for(length=2_000))
    assert quota.usage("t0") == (1, 9_000)


def test_quota_polls_uncounted_by_default():
    quota = IsolationQuota(epoch_ns=ms(1), max_ops=1)
    quota.evaluate(ctx_for())
    quota.evaluate(ctx_for(op="poll_cq"))  # free
    with pytest.raises(PolicyViolation):
        quota.evaluate(ctx_for())


def test_quota_requires_some_budget():
    with pytest.raises(ConfigError):
        IsolationQuota(epoch_ns=ms(1))


# -- observability -----------------------------------------------------------------


def test_flow_stats_accumulate():
    stats = FlowStats()
    for size in (64, 64, 4096):
        stats.evaluate(ctx_for(length=size))
    report = stats.report()
    assert len(report) == 1
    flow = report[0]
    assert flow["ops"]["post_send"] == 3
    assert flow["bytes_sent"] == 64 + 64 + 4096
    assert flow["size_hist"] == {6: 2, 12: 1}


def test_flow_stats_never_denies():
    stats = FlowStats()
    for _ in range(100):
        stats.evaluate(ctx_for(length=1 << 30))
    assert stats.denials == 0


# -- end-to-end: policies inside the CoRD dataplane -----------------------------------


def test_denied_op_still_pays_the_syscall():
    sim = Simulator(seed=6)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    qos = PolicyChain([TokenBucketQos(rate_bytes_per_s=1.0, burst_bytes=1)])

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "cord", "bypass",
                                       policies_a=qos)
        t0 = sim.now
        with pytest.raises(PolicyViolation):
            yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=4096,
                                          lkey=a.mr.lkey))
        elapsed = sim.now - t0
        return elapsed, a.dataplane.denied_ops

    elapsed, denied = sim.run(sim.process(main()))
    assert denied == 1
    assert elapsed >= SYSTEM_L.syscall_cost()  # the kernel round trip happened


def test_policies_rejected_on_bypass():
    from repro.core.endpoint import make_dataplane

    sim = Simulator(seed=6)
    _fabric, host_a, _b = build_pair(sim, SYSTEM_L)
    with pytest.raises(ConfigError):
        make_dataplane("bypass", host_a, host_a.cpus.pin(),
                       PolicyChain([FlowStats()]))


def test_flow_stats_see_all_dataplane_ops_end_to_end():
    sim = Simulator(seed=6)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    stats = FlowStats()

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "cord", "bypass",
                                       policies_a=PolicyChain([stats]))
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=b.buf.length, lkey=b.mr.lkey))
        yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=512, lkey=a.mr.lkey))
        yield from a.wait_send()
        yield from b.wait_recv()

    sim.run(sim.process(main()))
    ops = {}
    for flow in stats.flows.values():
        for op, n in flow.ops.items():
            ops[op] = ops.get(op, 0) + n
    assert ops.get("post_send") == 1
    assert ops.get("poll_cq", 0) >= 1  # the interposed polls were seen too
