"""Connection manager handshake + message timeline analysis."""

import pytest

from repro.analysis import format_timeline, message_timeline, stage_latencies
from repro.cluster import build_pair
from repro.core.endpoint import make_endpoint, make_rc_pair
from repro.errors import KernelError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.sim.trace import Trace
from repro.units import us
from repro.verbs import cm
from repro.verbs.qp import QPState
from repro.verbs.wr import Opcode, RecvWR, SendWR


@pytest.fixture(autouse=True)
def clean_cm_registry():
    cm.reset_registry()
    yield
    cm.reset_registry()


def test_cm_connect_establishes_working_connection():
    sim = Simulator(seed=9)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    out = {}

    def server():
        ep = yield from make_endpoint(host_b, "bypass")
        listener = cm.CmListener(host_b, service_id=4791)
        client_addr = yield from listener.accept(ep)
        out["client_addr"] = client_addr
        yield from ep.post_recv(RecvWR(wr_id=1, addr=ep.buf.addr,
                                       length=ep.buf.length, lkey=ep.mr.lkey))
        cqes = yield from ep.wait_recv()
        out["got"] = cqes[0].byte_len

    def client():
        ep = yield from make_endpoint(host_a, "bypass")
        yield sim.timeout(us(5))  # let the listener come up
        server_addr = yield from cm.cm_connect(ep, host_b.host_id, 4791)
        out["server_addr"] = server_addr
        assert ep.qp.state is QPState.RTS
        yield from ep.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                       addr=ep.buf.addr, length=2048,
                                       lkey=ep.mr.lkey))
        yield from ep.wait_send()
        out["client_qp"] = ep.qp

    sim.process(server())
    sim.process(client())
    sim.run()
    assert out["got"] == 2048
    assert out["server_addr"][0] == host_b.host_id
    assert out["client_addr"][0] == host_a.host_id
    # The client's QP really is connected to what the REP advertised.
    assert out["client_qp"].remote == out["server_addr"]


def test_cm_connect_refused_without_listener():
    sim = Simulator(seed=9)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def client():
        ep = yield from make_endpoint(host_a, "bypass")
        yield from cm.cm_connect(ep, host_b.host_id, 9999)

    with pytest.raises(KernelError, match="no listener"):
        sim.run(sim.process(client()))


def test_cm_double_listen_rejected():
    sim = Simulator(seed=9)
    _fabric, _a, host_b = build_pair(sim, SYSTEM_L)
    cm.CmListener(host_b, service_id=1)
    with pytest.raises(KernelError, match="already listening"):
        cm.CmListener(host_b, service_id=1)


def test_cm_handshake_takes_more_than_one_rtt():
    sim = Simulator(seed=9)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    out = {}

    def server():
        ep = yield from make_endpoint(host_b, "bypass")
        listener = cm.CmListener(host_b, service_id=7)
        yield from listener.accept(ep)

    def client():
        ep = yield from make_endpoint(host_a, "bypass")
        yield sim.timeout(us(50))
        t0 = sim.now
        yield from cm.cm_connect(ep, host_b.host_id, 7)
        out["dt"] = sim.now - t0

    sim.process(server())
    sim.process(client())
    sim.run()
    rtt = 2 * SYSTEM_L.propagation_ns
    assert out["dt"] > rtt + 2 * cm.CM_LEG_KERNEL_NS


# -- timeline analysis -----------------------------------------------------------


def _traced_send(size=4096):
    sim = Simulator(seed=9, trace=Trace(enabled=True))
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        sim.trace.clear()
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=b.buf.length, lkey=b.mr.lkey))
        yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=size,
                                      lkey=a.mr.lkey))
        yield from b.wait_recv()
        yield from a.wait_send()

    sim.run(sim.process(main()))
    sim.run()
    return sim


def test_timeline_contains_all_milestones_in_order():
    sim = _traced_send()
    records = message_timeline(sim.trace, psn=0)
    events = [r.event for r in records]
    for milestone in ("doorbell", "tx_start", "tx_done", "rx_arrive", "cqe"):
        assert milestone in events
    assert events.index("doorbell") < events.index("tx_start") \
        < events.index("tx_done") < events.index("rx_arrive")
    times = [r.time for r in records]
    assert times == sorted(times)


def test_stage_latencies_sum_to_span():
    sim = _traced_send()
    records = message_timeline(sim.trace, psn=0)
    stages = stage_latencies(records)
    assert sum(stages.values()) == pytest.approx(records[-1].time - records[0].time)
    # Wire serialization: 4 KiB + 48 B headers crosses the MTU -> 2 packets.
    assert stages["tx_start->tx_done"] == pytest.approx(
        2 * SYSTEM_L.nic.per_packet_ns + (4096 + 48) / SYSTEM_L.nic.link_bw)


def test_format_timeline_readable():
    sim = _traced_send()
    text = format_timeline(message_timeline(sim.trace, psn=0))
    assert "doorbell" in text and "us" in text
    assert text.splitlines()[0].startswith("t+")
    assert format_timeline([]).startswith("(no trace records")


def test_tracing_off_by_default_costs_nothing():
    sim = _traced_send()
    sim2 = Simulator(seed=9)  # default: disabled trace
    assert len(sim2.trace) == 0
    assert len(sim.trace) > 0
