"""N→1 incast regressions: receiver-side contention, drops, attribution.

The tentpole regression suite for the fan-in modeling fix: with
``rx_contention`` on, an 8→1 incast's aggregate receive rate must cap at
one link's bandwidth; with it off (the legacy source-port-only fabric)
the unphysical N-links aggregate is reproduced for comparison.  Also
covers the bounded switch buffer (tail drops recovered by RC
retransmission), the ``rx_port`` attribution stage, and the satellite
fabric fixes (delivered-only counters, chunk packet accounting, loopback
fault coverage).
"""

import pytest

from repro.cluster import Fabric, build_cluster
from repro.errors import HardwareError
from repro.faults import FaultInjector, FaultPlan
from repro.hw.profiles import SYSTEM_L, RxContentionProfile, get_profile
from repro.perftest.incast import IncastConfig, run_incast, run_incast_attributed
from repro.sim import Simulator
from repro.telemetry import attribute_spans, build_spans
from repro.units import to_gbit_per_s

LINK_GBIT = to_gbit_per_s(get_profile("L").nic.link_bw)


def _cfg(**kwargs):
    base = dict(senders=8, size=64 * 1024, msgs_per_sender=12, window=8)
    base.update(kwargs)
    return IncastConfig(**base)


# -- the tentpole: fan-in is bounded by the receiver's port -----------------------


def test_incast_rx_on_caps_aggregate_at_one_link():
    r = run_incast(_cfg(rx_contention=True))
    assert r.aggregate_gbit <= LINK_GBIT * 1.02
    assert r.messages_dropped == 0 and r.retransmits == 0
    # The queue really formed: at some instant ~7 messages sat waiting.
    assert r.rx_queue_peak_bytes >= 6 * 64 * 1024


def test_incast_rx_off_reproduces_the_fan_in_bug():
    """The legacy fabric hands the receiver N links' worth of bandwidth."""
    r = run_incast(_cfg(rx_contention=False))
    assert r.aggregate_gbit > LINK_GBIT * 2.0
    assert r.rx_queue_peak_bytes == 0


def test_per_flow_goodput_splits_the_link():
    r4 = run_incast(_cfg(senders=4))
    r8 = run_incast(_cfg(senders=8))
    assert r8.per_flow_mean_gbit < r4.per_flow_mean_gbit
    # Fair-ish share: no flow starves outright.
    assert min(r8.flow_goodputs_gbit) > 0.3 * max(r8.flow_goodputs_gbit)


def test_bounded_buffer_drops_and_rc_recovers():
    r = run_incast(_cfg(buffer_bytes=1024 * 1024))
    assert r.messages_dropped > 0
    assert r.retransmits >= r.messages_dropped
    assert r.ack_timeouts > 0
    # Every flow still finished (goodput is measured to its completion).
    assert all(g > 0 for g in r.flow_goodputs_gbit)
    assert r.rx_queue_peak_bytes <= 1024 * 1024


def test_unbounded_rx_never_arms_recovery():
    """rx on with an unbounded buffer is lossless: no timers, no retries."""
    r = run_incast(_cfg(senders=4))
    assert r.messages_dropped == 0
    assert r.retransmits == 0 and r.ack_timeouts == 0


def test_incast_same_seed_is_bit_identical():
    a = run_incast(_cfg(senders=4, seed=9))
    b = run_incast(_cfg(senders=4, seed=9))
    assert repr(a.duration_ns) == repr(b.duration_ns)
    assert a.flow_goodputs_gbit == b.flow_goodputs_gbit
    assert a.rx_queue_peak_bytes == b.rx_queue_peak_bytes


# -- attribution: the rx_port stage owns the added latency ------------------------


def test_rx_port_stage_explains_added_incast_latency():
    cfg = _cfg(senders=4, msgs_per_sender=8)
    on, sim = run_incast_attributed(cfg)
    off = run_incast(cfg.with_(rx_contention=False))
    assert sim.trace.dropped == 0
    blames = attribute_spans(build_spans(sim.trace, op="post_send"))
    rx_ns = sum(s.duration_ns for b in blames for s in b.stages
                if s.name.split("#")[0] == "rx_port")
    added_ns = on.duration_ns - off.duration_ns
    assert added_ns > 0
    assert rx_ns >= 0.95 * added_ns
    # And the stage rides the serial-server queue/service split.
    queued = [s for b in blames for s in b.stages
              if s.name.split("#")[0] == "rx_port" and s.queue_ns > 0]
    assert queued, "expected some rx_port stages to report queueing"


def test_rx_contention_off_has_no_rx_port_stage():
    cfg = _cfg(senders=2, msgs_per_sender=4, rx_contention=False)
    _r, sim = run_incast_attributed(cfg)
    blames = attribute_spans(build_spans(sim.trace, op="post_send"))
    assert blames
    assert not any(s.name.split("#")[0] == "rx_port"
                   for b in blames for s in b.stages)


# -- satellite fixes --------------------------------------------------------------


def test_rx_port_accessor_rejects_when_model_off():
    sim = Simulator(seed=1)
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 2)  # auto -> off
    with pytest.raises(HardwareError):
        fabric.rx_port(0)


def test_chunked_transmit_packet_count_matches_unchunked():
    """Chunk boundaries must not mint extra packets: a chunk size that is
    not a multiple of the MTU charges the same total serialization time
    as the unchunked path, bit for bit."""

    def elapsed(chunk_bytes):
        sim = Simulator(seed=1)
        fabric, _hosts = build_cluster(sim, SYSTEM_L, 2,
                                       chunk_bytes=chunk_bytes)
        fabric.nic(1).deliver = lambda payload: None

        def proc():
            t0 = sim.now
            # 5000 B chunks vs 4096 B MTU: every chunk straddles a packet.
            yield from fabric.transmit(0, 1, 123_456, None)
            return sim.now - t0

        out = sim.run(sim.process(proc()))
        sim.run()
        return out

    assert repr(elapsed(5000)) == repr(elapsed(None))


def test_fabric_counts_only_delivered_traffic():
    sim = Simulator(seed=1)
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 2)
    fabric.inject_faults(FaultPlan(flaps=((0.0, 1e9),)))

    def proc():
        yield from fabric.transmit(0, 1, 4096, "payload")

    sim.run(sim.process(proc()))
    sim.run()
    assert fabric.messages_dropped == 1 and fabric.bytes_dropped == 4096
    assert fabric.messages_carried == 0 and fabric.bytes_carried == 0


def test_link_counts_only_delivered_traffic():
    from repro.hw.link import Link

    sim = Simulator(seed=1)
    link = Link(sim, bandwidth=12.5, propagation_ns=250.0, mtu=4096,
                per_packet_ns=10.0)
    got = []
    link.ports[1].deliver = got.append
    link.faults = FaultInjector(sim, FaultPlan(flaps=((0.0, 1e9),)),
                                scope="link")

    def proc():
        yield from link.transmit(link.ports[0], 512, "payload")

    sim.run(sim.process(proc()))
    sim.run()
    assert got == []
    assert link.messages_dropped == 1 and link.bytes_dropped == 512
    assert link.messages_carried == 0 and link.bytes_carried == 0


def test_loopback_traffic_goes_through_fault_hook():
    """Regression: src==dst used to bypass the injector entirely."""
    sim = Simulator(seed=1)
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 1)
    inj = fabric.inject_faults(FaultPlan(flaps=((0.0, 1e9),)))
    got = []
    fabric.nic(0).deliver = got.append

    def proc():
        yield from fabric.transmit(0, 0, 256, "hairpin")

    sim.run(sim.process(proc()))
    sim.run()
    assert got == []
    assert inj.drops == 1
    assert inj.snapshot()["drops_by_link"] == {"0-0": 1}
    assert fabric.messages_dropped == 1 and fabric.messages_carried == 0


def test_loopback_uses_dedicated_rng_stream():
    sim = Simulator(seed=3)
    inj = FaultInjector(sim, FaultPlan(loss=0.5), scope="fabric")
    for _ in range(8):
        inj.on_transmit(0, 0, 0.0, "send", 100, 0.0)
    assert "faults.fabric.loopback0" in sim.rng._streams
    assert "faults.fabric.l0-0" not in sim.rng._streams


def test_rx_contention_spec_validation():
    sim = Simulator(seed=1)
    with pytest.raises(HardwareError):
        Fabric(sim, SYSTEM_L.nic, propagation_ns=100.0, rx_contention="yes")
    fabric = Fabric(sim, SYSTEM_L.nic, propagation_ns=100.0,
                    rx_contention=RxContentionProfile(buffer_bytes=4096))
    assert fabric.rx_contention.buffer_bytes == 4096
    assert fabric.lossy  # bounded buffer can drop even without faults
    off = Fabric(sim, SYSTEM_L.nic, propagation_ns=100.0, rx_contention=True)
    assert off.rx_contention.buffer_bytes is None
    assert not off.lossy  # unbounded: nothing can be lost
