"""The protocol verifier: monitors, choice points, explorer, mutants, CLI."""

import json
import os

import pytest

from repro.errors import ProtocolViolation
from repro.verbs.wr import WCStatus
from repro.verify import (
    MUTANTS,
    SCENARIOS,
    Chooser,
    Explorer,
    ProtocolMonitor,
    ScheduleDivergence,
    ScriptedChooser,
)


def _run_scenario(name, monitor=None, chooser=None):
    scen = SCENARIOS[name]()
    if monitor is not None:
        scen.sim.attach_monitor(monitor)
    scen.prepare()
    if chooser is not None:
        scen.sim.attach_chooser(chooser)
    scen.go()
    return scen


def _observable(scen):
    a, b = scen.endpoints
    return (
        scen.sim.now,
        tuple((e.wr_id, e.status.value) for e in a.send_cq.entries),
        tuple((e.wr_id, e.status.value) for e in a.recv_cq.entries),
        tuple((e.wr_id, e.status.value) for e in b.recv_cq.entries),
    )


# -- monitors ---------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_monitors_clean_on_unmutated_scenarios(name):
    scen = SCENARIOS[name]()
    monitor = ProtocolMonitor(scen.sim, strict=True)
    scen.sim.attach_monitor(monitor)
    scen.prepare()
    scen.go()
    monitor.finalize()
    assert monitor.findings == []


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_monitors_do_not_change_results(name):
    base = _observable(_run_scenario(name))
    scen = SCENARIOS[name]()
    scen.sim.attach_monitor(ProtocolMonitor(scen.sim, strict=True))
    scen.prepare()
    scen.go()
    assert _observable(scen) == base


def test_monitor_collect_mode_accumulates_instead_of_raising():
    with MUTANTS["expected_psn_rewind"].apply():
        scen = SCENARIOS["two_sends"]()
        monitor = ProtocolMonitor(scen.sim, strict=False)
        scen.sim.attach_monitor(monitor)
        scen.prepare()
        # The rewind only bites on a non-default schedule in this world;
        # force the first alternative like the explorer would.
        scen.sim.attach_chooser(ScriptedChooser((1,)))
        scen.go()
    assert monitor.findings
    assert all(f.rule == "PROTO102" for f in monitor.findings)
    assert all(f.source == "monitor" for f in monitor.findings)


def test_monitor_strict_mode_raises():
    with MUTANTS["flush_reverse"].apply():
        scen = SCENARIOS["flush_order"]()
        scen.sim.attach_monitor(ProtocolMonitor(scen.sim, strict=True))
        scen.prepare()
        with pytest.raises(ProtocolViolation, match="PROTO104"):
            scen.go()


# -- choice points ----------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_default_chooser_is_bit_identical(name):
    base = _observable(_run_scenario(name))
    assert _observable(_run_scenario(name, chooser=Chooser())) == base
    assert _observable(_run_scenario(name,
                                     chooser=ScriptedChooser(()))) == base


def test_scripted_chooser_records_a_replayable_trail():
    scen = SCENARIOS["retry_exhaustion"]()
    scen.prepare()
    chooser = ScriptedChooser(())
    scen.sim.attach_chooser(chooser)
    from repro.verify import ChoiceFaultInjector

    scen.fabric.inject_faults(ChoiceFaultInjector(chooser, budget=2))
    scen.go()
    trail = list(chooser.trail)
    assert trail, "a lossy RC scenario must hit choice points"
    assert all(0 <= c < n for n, c in trail)
    assert chooser.chosen() == tuple(c for _n, c in trail)


def test_scripted_chooser_rejects_out_of_range_prefix():
    chooser = ScriptedChooser((7,))
    with pytest.raises(ScheduleDivergence):
        chooser.choose(2, ("a", "b"))


# -- explorer ---------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_exploration_is_clean_on_the_real_tree(name):
    result = Explorer(SCENARIOS[name], max_schedules=5000).explore()
    assert result.ok, result.counterexample
    assert result.exhausted, "scenario tree must be fully explorable"
    assert result.schedules_run >= 1


def test_exploration_covers_drop_nondeterminism():
    result = Explorer(SCENARIOS["read_drop"], max_schedules=100).explore()
    # no-drop, drop the read_req, drop the read_resp.
    assert result.schedules_run == 3
    assert result.exhausted


def test_dedup_prunes_but_preserves_verdicts():
    spec = SCENARIOS["retry_exhaustion"]
    full = Explorer(spec, max_schedules=5000, dedup=False).explore()
    pruned = Explorer(spec, max_schedules=5000, dedup=True).explore()
    assert full.ok and pruned.ok and full.exhausted and pruned.exhausted
    assert pruned.pruned > 0
    assert pruned.schedules_run <= full.schedules_run


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_every_mutant_is_caught_with_a_counterexample(name):
    mutant = MUTANTS[name]
    with mutant.apply():
        for sname in mutant.scenarios:
            result = Explorer(SCENARIOS[sname],
                              max_schedules=5000).explore()
            if not result.ok:
                break
    assert not result.ok, f"mutant {name} escaped exploration"
    assert result.counterexample.rule == mutant.rule
    assert result.counterexample.schedule is not None


def test_counterexample_replay_writes_artifacts(tmp_path):
    mutant = MUTANTS["atomic_reexec"]
    with mutant.apply():
        result = Explorer(SCENARIOS["atomic_replay"], max_schedules=5000,
                          artifacts_dir=str(tmp_path)).explore()
    cex = result.counterexample
    assert cex is not None and cex.rule == "PROTO106"
    with open(cex.trace_path, encoding="utf-8") as fh:
        trace = json.load(fh)
    assert trace["traceEvents"], "replay must produce a non-empty trace"
    with open(cex.schedule_path, encoding="utf-8") as fh:
        sched = json.load(fh)
    assert sched["schedule"] == list(cex.schedule)
    assert sched["rule"] == "PROTO106"
    assert "PROTO106" in sched["replay_violation"]


def test_mutants_restore_the_original_methods():
    from repro.hw.nic import Nic
    from repro.verbs.qp import QueuePair

    before = (Nic._send_ack, Nic._replay_atomic, Nic._ack_timer_fired,
              QueuePair._flush_with_errors)
    for mutant in MUTANTS.values():
        with mutant.apply():
            pass
    after = (Nic._send_ack, Nic._replay_atomic, Nic._ack_timer_fired,
             QueuePair._flush_with_errors)
    assert before == after


# -- CLI --------------------------------------------------------------------------


def test_cli_verify_explore_clean_and_mutant(tmp_path, capsys):
    from repro.cli import main

    rc = main(["verify", "explore", "--scenario", "two_sends", "read_drop"])
    out = capsys.readouterr().out
    assert rc == 0 and "clean" in out

    art = str(tmp_path / "artifacts")
    rc = main(["verify", "explore", "--scenario", "flush_order",
               "--mutant", "flush_reverse", "--artifacts", art,
               "--format", "json"])
    out = capsys.readouterr().out
    assert rc == 1
    doc = json.loads(out)
    (entry,) = doc
    assert entry["counterexample"]["rule"] == "PROTO104"
    assert os.path.exists(entry["counterexample"]["trace"])


def test_cli_verify_monitors(capsys):
    from repro.cli import main

    rc = main(["verify", "monitors", "--scenario", "two_sends"])
    out = capsys.readouterr().out
    assert rc == 0 and "0 violation(s)" in out


def test_cli_verify_lint_fixture(tmp_path, capsys):
    from repro.cli import main

    fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                           "proto_violations.py")
    target = tmp_path / "src" / "repro" / "hw" / "_bad.py"
    target.parent.mkdir(parents=True)
    with open(fixture, encoding="utf-8") as fh:
        target.write_text(fh.read())
    rc = main(["verify", "lint", str(target), "--format", "json"])
    out = capsys.readouterr().out
    assert rc == 1
    doc = json.loads(out)
    assert {f["rule"] for f in doc["findings"]} == {
        "PROTO001", "PROTO002", "PROTO003", "PROTO004",
    }


def test_cli_verify_lint_tree_is_clean(capsys):
    from repro.cli import main

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    rc = main(["verify", "lint", "--root", root])
    capsys.readouterr()
    assert rc == 0


# -- environment attachment -------------------------------------------------------


def test_env_var_attaches_monitor(monkeypatch):
    from repro.sim.engine import Simulator

    monkeypatch.setenv("REPRO_VERIFY_MONITORS", "1")
    sim = Simulator(seed=1)
    assert isinstance(sim._monitor, ProtocolMonitor)
    monkeypatch.delenv("REPRO_VERIFY_MONITORS")
    assert Simulator(seed=1)._monitor is None
