"""Integration tests: endpoints, dataplanes and the NIC end to end."""

import pytest

from repro.cluster import build_pair
from repro.core.dataplane import WaitMode
from repro.core.endpoint import make_rc_pair, make_ud_pair
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import us
from repro.verbs.wr import Opcode, RecvWR, SendWR, WCStatus


def run_pair(scenario, kind_a="bypass", kind_b="bypass", transport="rc", system=SYSTEM_L):
    """Build a two-host testbed, create a pair, run the scenario process."""
    sim = Simulator(seed=1)
    _fabric, host_a, host_b = build_pair(sim, system)

    def main():
        if transport == "rc":
            a, b = yield from make_rc_pair(host_a, host_b, kind_a, kind_b)
        else:
            a, b = yield from make_ud_pair(host_a, host_b, kind_a, kind_b)
        result = yield from scenario(sim, a, b)
        return result

    return sim.run(sim.process(main()))


def _send_one(sim, a, b, nbytes=4096, payload=None):
    """b posts a recv; a sends; both reap completions."""
    yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr, length=b.buf.length, lkey=b.mr.lkey))
    wr = SendWR(wr_id=2, opcode=Opcode.SEND, addr=a.buf.addr, length=nbytes,
                lkey=a.mr.lkey, data=payload)
    if a.qp.transport.value == "UD":
        wr.ah = b.addr
    yield from a.post_send(wr)
    recv_cqes = yield from b.wait_recv()
    send_cqes = yield from a.wait_send()
    return recv_cqes, send_cqes, sim.now


@pytest.mark.parametrize("kind_a,kind_b", [
    ("bypass", "bypass"), ("cord", "bypass"), ("bypass", "cord"), ("cord", "cord"),
])
def test_rc_send_completes_both_sides(kind_a, kind_b):
    recv_cqes, send_cqes, _ = run_pair(_send_one, kind_a, kind_b)
    assert len(recv_cqes) == 1 and recv_cqes[0].ok
    assert recv_cqes[0].byte_len == 4096
    assert len(send_cqes) == 1 and send_cqes[0].ok


def test_rc_send_delivers_payload():
    payload = bytes(range(256)) * 16  # 4096 bytes

    def scenario(sim, a, b):
        a.buf.write(0, payload)
        return (yield from _send_one(sim, a, b, nbytes=4096))

    recv_cqes, _, _ = run_pair(scenario)
    assert recv_cqes[0].data == payload
    # And it actually landed in the receiver's registered buffer.


def test_ud_send_completes():
    recv_cqes, send_cqes, _ = run_pair(_send_one, transport="ud")
    assert recv_cqes[0].ok and send_cqes[0].ok


def test_ud_oversized_message_rejected():
    from repro.errors import VerbsError

    def scenario(sim, a, b):
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, addr=a.buf.addr,
                    length=8192, lkey=a.mr.lkey, ah=b.addr)
        with pytest.raises(VerbsError, match="MTU"):
            yield from a.post_send(wr)
        return "ok"
        yield  # pragma: no cover

    assert run_pair(scenario, transport="ud") == "ok"


def test_cord_latency_exceeds_bypass():
    """CoRD adds a constant per-side overhead (the paper's core trade-off)."""
    _, _, t_bp = run_pair(_send_one, "bypass", "bypass")
    _, _, t_cd = run_pair(_send_one, "cord", "cord")
    assert t_cd > t_bp
    # Overhead should be well under 5 us for a single message on system L.
    assert t_cd - t_bp < us(5)


def test_rdma_write_places_data_without_receiver_cpu():
    payload = b"\xab" * 2048

    def scenario(sim, a, b):
        a.buf.write(0, payload)
        wr = SendWR(wr_id=3, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                    length=2048, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=b.mr.rkey, data=payload)
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes, b.buf.read(0, 2048), b.dataplane.polls

    cqes, landed, b_polls = run_pair(scenario)
    assert cqes[0].ok and cqes[0].opcode is Opcode.RDMA_WRITE
    assert landed == payload
    assert b_polls == 0  # one-sided: receiver CPU never participated


def test_rdma_read_fetches_remote_data():
    payload = b"\x5a" * 1024

    def scenario(sim, a, b):
        b.buf.write(0, payload)
        wr = SendWR(wr_id=4, opcode=Opcode.RDMA_READ, addr=a.buf.addr,
                    length=1024, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=b.mr.rkey)
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes, a.buf.read(0, 1024)

    cqes, fetched = run_pair(scenario)
    assert cqes[0].ok and cqes[0].opcode is Opcode.RDMA_READ
    assert fetched == payload


def test_rdma_write_bad_rkey_error_completion():
    def scenario(sim, a, b):
        wr = SendWR(wr_id=5, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                    length=64, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=0xDEAD)
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes

    cqes = run_pair(scenario)
    assert cqes[0].status is WCStatus.REM_ACCESS_ERR


def test_rnr_retry_recovers_when_recv_posted_late():
    def scenario(sim, a, b):
        wr = SendWR(wr_id=6, opcode=Opcode.SEND, addr=a.buf.addr,
                    length=256, lkey=a.mr.lkey)
        yield from a.post_send(wr)
        # Receiver posts its recv WQE only after a delay: the first delivery
        # RNR-NAKs, the NIC retries, and everything completes.
        yield sim.timeout(us(30))
        yield from b.post_recv(RecvWR(wr_id=7, addr=b.buf.addr, length=4096, lkey=b.mr.lkey))
        recv_cqes = yield from b.wait_recv()
        send_cqes = yield from a.wait_send()
        return recv_cqes, send_cqes, b.host.nic.counters.rnr_naks_sent

    recv_cqes, send_cqes, naks = run_pair(scenario)
    assert recv_cqes[0].ok and send_cqes[0].ok
    assert naks >= 1


def test_event_driven_wait_completes_and_costs_more():
    """The interrupt path works and adds the constant no-polling tax."""

    def scenario_mode(mode):
        def scenario(sim, a, b):
            yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr, length=4096, lkey=b.mr.lkey))
            start = sim.now
            wr = SendWR(wr_id=2, opcode=Opcode.SEND, addr=a.buf.addr, length=64, lkey=a.mr.lkey)
            yield from a.post_send(wr)
            cqes = yield from b.dataplane.wait_cq(b.recv_cq, mode=mode)
            assert cqes and cqes[0].ok
            return sim.now - start
        return scenario

    t_poll = run_pair(scenario_mode(WaitMode.POLL))
    t_event = run_pair(scenario_mode(WaitMode.EVENT))
    assert t_event > t_poll + us(1)  # IRQ + wakeup constant


def test_message_ordering_preserved_per_qp():
    """Mixed inline/non-inline sizes must still arrive in post order."""

    def scenario(sim, a, b):
        for i in range(8):
            yield from b.post_recv(RecvWR(wr_id=100 + i, addr=b.buf.addr, length=1 << 20, lkey=b.mr.lkey))
        sizes = [64, 65536, 64, 16384, 64, 128, 262144, 64]
        for i, size in enumerate(sizes):
            yield from a.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, addr=a.buf.addr,
                                          length=size, lkey=a.mr.lkey))
        got = []
        while len(got) < len(sizes):
            cqes = yield from b.wait_recv()
            got.extend(c.byte_len for c in cqes)
        return sizes, got

    sizes, got = run_pair(scenario)
    assert got == sizes
