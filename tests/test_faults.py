"""Fault injection and RC loss recovery, end to end.

Covers the repro.faults subsystem (loss, flaps, stalls, receiver pauses),
the NIC's ACK-timeout retransmission with exponential back-off and
RETRY_EXC_ERR exhaustion, the escalating RNR back-off, atomic replay
exactly-once semantics, error-ACK QP teardown, and flush ordering /
event-driven flush observation.
"""

import pytest

from repro.cluster import build_pair
from repro.core.dataplane import WaitMode
from repro.core.endpoint import make_rc_pair
from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, parse_fault_spec
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.sim.trace import Trace
from repro.units import us
from repro.verbs.cq import CompletionQueue
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import Opcode, RecvWR, SendWR, WCStatus


def run_faulty(scenario, plan=None, seed=1, trace=False,
               kind_a="bypass", kind_b="bypass", plan_at=None):
    """Two-host testbed with an optional fault plan on the fabric.

    ``plan`` attaches before setup (absolute windows).  ``plan_at`` is a
    callable ``t0 -> FaultPlan`` invoked right after connection setup, so
    scheduled windows can be phrased relative to when traffic can start.
    """
    sim = (Simulator(seed=seed, trace=Trace(enabled=True))
           if trace else Simulator(seed=seed))
    fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    holder = {"inj": fabric.inject_faults(plan) if plan is not None else None}

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kind_a, kind_b)
        if plan_at is not None:
            holder["inj"] = fabric.inject_faults(plan_at(sim.now))
        result = yield from scenario(sim, a, b)
        return result

    result = sim.run(sim.process(main()))
    return result, sim, holder["inj"]


def _recv_wr(b, wr_id):
    return RecvWR(wr_id=wr_id, addr=b.buf.addr, length=b.buf.length,
                  lkey=b.mr.lkey)


def _send_wr(a, wr_id, nbytes=1024):
    return SendWR(wr_id=wr_id, opcode=Opcode.SEND, addr=a.buf.addr,
                  length=nbytes, lkey=a.mr.lkey)


# -- plan parsing and validation -------------------------------------------------


def test_parse_fault_spec_full_grammar():
    plan = parse_fault_spec(
        "loss=0.01,link=0-1:0.5,flap=1e6:2e6,degrade=3e6:4e6:2.5,"
        "stall=1:5e6:6e6,pause=0:7e6:8e6,nodropctl"
    )
    assert plan.loss == 0.01
    assert plan.link_loss == ((0, 1, 0.5),)
    assert plan.flaps == ((1e6, 2e6),)
    assert plan.degrade == ((3e6, 4e6, 2.5),)
    assert plan.stalls == ((1, 5e6, 6e6),)
    assert plan.pauses == ((0, 7e6, 8e6),)
    assert plan.drop_control is False
    assert plan.lossy


@pytest.mark.parametrize("spec", [
    "loss=abc", "bogus=1", "flap=1e6", "loss", "link=0:0.5", "pause=0:2:x",
])
def test_parse_fault_spec_rejects_malformed(spec):
    with pytest.raises(ConfigError):
        parse_fault_spec(spec)


@pytest.mark.parametrize("kwargs", [
    dict(loss=1.5), dict(loss=-0.1),
    dict(flaps=((10.0, 5.0),)),
    dict(degrade=((0.0, 1.0, 0.5),)),
    dict(link_loss=((0, 1, 2.0),)),
])
def test_fault_plan_validates(kwargs):
    with pytest.raises(ConfigError):
        FaultPlan(**kwargs)


def test_fault_plan_is_hashable_value_type():
    assert FaultPlan(loss=0.1) == FaultPlan(loss=0.1)
    assert hash(FaultPlan(loss=0.1)) == hash(FaultPlan(loss=0.1))
    assert not FaultPlan().lossy


# -- loss recovery ---------------------------------------------------------------


def _lossy_burst(n=40, nbytes=1024):
    def scenario(sim, a, b):
        for i in range(n):
            yield from b.post_recv(_recv_wr(b, 100 + i))
        statuses = []
        for i in range(n):
            yield from a.post_send(_send_wr(a, i, nbytes))
            cqes = yield from a.wait_send()
            statuses.extend(c.status for c in cqes)
        nic = a.host.nic.counters
        return statuses, nic.ack_timeouts, nic.retransmits, sim.now
    return scenario


def test_lossy_sends_all_recover():
    """20% loss: every WR still completes SUCCESS via retransmission."""
    (statuses, timeouts, retx, _), _sim, inj = run_faulty(
        _lossy_burst(), plan=FaultPlan(loss=0.2))
    assert statuses == [WCStatus.SUCCESS] * 40
    assert inj.drops >= 1
    assert timeouts >= 1 and retx >= 1


def test_same_seed_is_bit_identical():
    runs = [run_faulty(_lossy_burst(), plan=FaultPlan(loss=0.2), seed=3)
            for _ in range(2)]
    (s1, t1, r1, now1), _, i1 = runs[0][0], runs[0][1], runs[0][2]
    (s2, t2, r2, now2), _, i2 = runs[1][0], runs[1][1], runs[1][2]
    assert repr(now1) == repr(now2)
    assert (s1, t1, r1) == (s2, t2, r2)
    assert i1.snapshot() == i2.snapshot()


def test_zero_loss_plan_is_invisible():
    """An attached do-nothing plan must not move a single bit."""
    (res_a, _, inj) = run_faulty(_lossy_burst(), plan=FaultPlan())
    (res_b, _, _none) = run_faulty(_lossy_burst(), plan=None)
    assert repr(res_a[3]) == repr(res_b[3])
    assert res_a[0] == res_b[0]
    assert inj.drops == 0 and inj.delays == 0


def test_total_loss_exhausts_retries_and_errors_qp():
    """loss=1.0: retry_cnt exhausts, the WR fails RETRY_EXC_ERR, the QP
    goes to ERROR and the remaining in-flight send flushes."""

    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 100))
        yield from a.post_send(_send_wr(a, 1))
        yield from a.post_send(_send_wr(a, 2))
        cqes = []
        while len(cqes) < 2:
            cqes.extend((yield from a.wait_send()))
        return cqes, a.qp.state, a.host.nic.counters

    (cqes, state, nic), _sim, inj = run_faulty(
        scenario, plan=FaultPlan(loss=1.0))
    assert [c.status for c in cqes] == [
        WCStatus.RETRY_EXC_ERR, WCStatus.WR_FLUSH_ERR]
    assert cqes[0].wr_id == 1
    assert state is QPState.ERROR
    assert nic.retry_exc_errs == 1
    # retry_cnt=7 retransmissions per WR were attempted before giving up
    # (the second WR was flushed by the first one's QP teardown).
    assert nic.retransmits >= 7
    assert inj.drops >= 8


def test_fig4_style_bw_loop_with_loss_completes_and_reproduces():
    """Acceptance criterion: the fig4 bandwidth loop at loss=0.01 never
    hangs, retransmit counters are nonzero, and reruns are bit-identical."""
    from repro.perftest.runner import PerftestConfig, run_bw

    cfg = PerftestConfig(system="L", transport="RC", op="send",
                         iters=200, warmup=50, window=64,
                         faults=FaultPlan(loss=0.01))
    r1 = run_bw(cfg, 4096)
    r2 = run_bw(cfg, 4096)
    assert r1.retransmits > 0 and r1.ack_timeouts > 0
    assert repr(r1.duration_ns) == repr(r2.duration_ns)
    assert r1.retransmits == r2.retransmits
    # And the same config without faults matches the lossless goldens'
    # invariant: no recovery machinery runs at all.
    clean = run_bw(cfg.with_(faults=None), 4096)
    assert clean.retransmits == 0 and clean.ack_timeouts == 0


# -- scheduled faults: flaps, stalls, pauses --------------------------------------


def test_link_flap_drops_then_timeout_recovers():
    plan_at = lambda t0: FaultPlan(flaps=((t0 + us(150), t0 + us(300)),))
    deadline = {}

    def scenario(sim, a, b):
        deadline["flap_end"] = sim.now + us(300)
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(200))
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes, sim.now

    (cqes, now), _sim, inj = run_faulty(scenario, plan_at=plan_at)
    assert cqes[0].ok
    assert inj.drops >= 1
    # Recovery could not complete before the flap window closed.
    assert now >= deadline["flap_end"]


def test_stall_window_defers_arrival_without_loss():
    plan_at = lambda t0: FaultPlan(stalls=((1, t0 + us(150), t0 + us(400)),))
    deadline = {}

    def scenario(sim, a, b):
        deadline["stall_end"] = sim.now + us(400)
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(200))
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes, sim.now

    (cqes, now), _sim, inj = run_faulty(scenario, plan_at=plan_at)
    assert cqes[0].ok
    assert inj.drops == 0 and inj.delays >= 1
    assert now >= deadline["stall_end"]


def test_degrade_window_slows_delivery():
    plan_at = lambda t0: FaultPlan(
        degrade=((t0 + us(150), t0 + us(400), 100.0),))

    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(200))
        start = sim.now
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes, sim.now - start

    (cqes, elapsed), _sim, inj = run_faulty(scenario, plan_at=plan_at)
    (clean_cqes, clean_elapsed), _sim2, _ = run_faulty(scenario, plan=None)
    assert cqes[0].ok and clean_cqes[0].ok
    assert inj.delays >= 1
    assert elapsed > clean_elapsed


def test_receiver_pause_forces_rnr_and_recovers():
    plan_at = lambda t0: FaultPlan(pauses=((1, t0 + us(150), t0 + us(200)),))
    deadline = {}

    def scenario(sim, a, b):
        deadline["pause_end"] = sim.now + us(200)
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(150))
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes, b.host.nic.counters.rnr_naks_sent, sim.now

    (cqes, naks, now), _sim, _inj = run_faulty(
        scenario, plan_at=plan_at, trace=True)
    assert cqes[0].ok
    assert naks >= 2  # paused long enough for more than one RNR NAK
    assert now >= deadline["pause_end"]  # landed after the pause lifted


def test_rnr_backoff_escalates():
    """Retransmit gaps must grow with the retry index (delay x index)."""
    plan_at = lambda t0: FaultPlan(pauses=((1, t0 + us(150), t0 + us(210)),))

    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(150))
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes

    (cqes), sim, _inj = run_faulty(scenario, plan_at=plan_at, trace=True)
    assert cqes[0].ok
    times = [rec.time for rec in sim.trace.records
             if rec.category == "nic" and rec.event == "retransmit"]
    assert len(times) >= 2
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g2 > g1 for g1, g2 in zip(gaps, gaps[1:])), gaps
    # Back-off really escalated: every later gap exceeds the base delay.
    from repro.hw.nic import RNR_DELAY_NS
    assert all(g > RNR_DELAY_NS for g in gaps)


# -- exactly-once semantics under retransmission ---------------------------------


def test_atomics_exactly_once_under_loss():
    """Retransmitted FETCH_ADDs must not re-execute: the responder replay
    cache answers duplicates, so N adds land exactly N times."""
    n = 10

    def scenario(sim, a, b):
        b.buf.write(0, (0).to_bytes(8, "little"))
        results = []
        for i in range(n):
            wr = SendWR(wr_id=i, opcode=Opcode.ATOMIC_FETCH_ADD,
                        addr=a.buf.addr, length=8, lkey=a.mr.lkey,
                        remote_addr=b.buf.addr, rkey=b.mr.rkey,
                        compare_add=1)
            yield from a.post_send(wr)
            cqes = yield from a.wait_send()
            results.extend(cqes)
        final = int.from_bytes(b.buf.read(0, 8), "little")
        return results, final, a.host.nic.counters.retransmits

    (cqes, final, retx), _sim, inj = run_faulty(
        scenario, plan=FaultPlan(loss=0.2), seed=5)
    assert all(c.ok for c in cqes)
    assert inj.drops >= 1 and retx >= 1
    assert final == n  # not n + (number of duplicate executions)


def test_read_retransmit_under_loss_returns_data():
    payload = b"\x5a" * 1024

    def scenario(sim, a, b):
        b.buf.write(0, payload)
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_READ, addr=a.buf.addr,
                    length=1024, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=b.mr.rkey)
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes, a.buf.read(0, 1024), a.host.nic.counters.retransmits

    (cqes, got, retx), _sim, inj = run_faulty(
        scenario, plan=FaultPlan(loss=0.4), seed=1)
    assert cqes[0].ok and got == payload
    assert inj.drops >= 1 and retx >= 1


# -- error-path bugfix regressions -----------------------------------------------


def test_remote_error_ack_transitions_qp_to_error():
    """Regression: a positive ACK carrying a remote-error status used to
    post REM_ACCESS_ERR but leave the QP in RTS."""
    from repro.errors import QPStateError

    def scenario(sim, a, b):
        wr = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                    length=64, lkey=a.mr.lkey,
                    remote_addr=b.buf.addr, rkey=0xdead)  # bad rkey
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        state_after = a.qp.state
        with pytest.raises(QPStateError):
            yield from a.post_send(_send_wr(a, 2))
        return cqes, state_after

    (cqes, state), _sim, _ = run_faulty(scenario)
    assert cqes[0].status is WCStatus.REM_ACCESS_ERR
    assert state is QPState.ERROR


def test_remote_error_ack_flushes_other_inflight_sends():
    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 100))
        bad = SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                     length=64, lkey=a.mr.lkey,
                     remote_addr=b.buf.addr, rkey=0xdead)
        yield from a.post_send(bad)
        yield from a.post_send(_send_wr(a, 2))
        cqes = []
        while len(cqes) < 2:
            cqes.extend((yield from a.wait_send()))
        return cqes, a.qp.state

    (cqes, state), _sim, _ = run_faulty(scenario)
    statuses = {c.wr_id: c.status for c in cqes}
    assert statuses[1] is WCStatus.REM_ACCESS_ERR
    # The trailing send either flushed (QP already in ERROR when its turn
    # came) or completed first; both leave the QP in ERROR at the end.
    assert state is QPState.ERROR


def test_retries_go_through_tx_pipeline():
    """Regression: retransmissions used to bypass the TX engine.  With the
    fix, a retried message appears twice in the TX trace (tx_start)."""
    plan_at = lambda t0: FaultPlan(pauses=((1, t0 + us(150), t0 + us(170)),))

    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 100))
        yield sim.timeout(us(150))
        yield from a.post_send(_send_wr(a, 1))
        cqes = yield from a.wait_send()
        return cqes

    cqes, sim, _inj = run_faulty(scenario, plan_at=plan_at, trace=True)
    assert cqes[0].ok
    starts = [rec for rec in sim.trace.records
              if rec.category == "nic" and rec.event == "tx_start"
              and rec.get("host") == 0 and rec.get("wr_id") == 1]
    assert len(starts) >= 2  # original + at least one retry, both traced


# -- flush semantics (QueuePair error path) --------------------------------------


def test_flush_with_errors_orders_recv_before_send_and_sends_by_psn():
    sim = Simulator(seed=1)
    cq = CompletionQueue(sim, name="shared")
    qp = QueuePair(pd=None, transport=Transport.RC, send_cq=cq, recv_cq=cq,
                   qpn=9, sq_depth=16, rq_depth=16, max_inline=0)
    # state is a read-only property now: walk the legal handshake path.
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 9))
    qp.modify(QPState.RTS)
    qp.rq.append(RecvWR(wr_id=101))
    qp.rq.append(RecvWR(wr_id=102))
    # Out-of-order insertion: flush must sort sends by PSN.
    qp.outstanding[3] = SendWR(wr_id=13, opcode=Opcode.SEND)
    qp.outstanding[1] = SendWR(wr_id=11, opcode=Opcode.SEND)
    qp.outstanding[2] = SendWR(wr_id=12, opcode=Opcode.SEND)
    qp.retx_retries[1] = 4
    qp.modify(QPState.ERROR)

    entries = list(cq.entries)
    assert [c.wr_id for c in entries] == [101, 102, 11, 12, 13]
    assert all(c.status is WCStatus.WR_FLUSH_ERR for c in entries)
    assert qp.sq_outstanding == 0
    assert not qp.outstanding and not qp.retx_retries and not qp.retx_epoch


def test_event_driven_waiter_observes_flush_cqes():
    """A waiter blocked in EVENT mode (req_notify + completion channel)
    must wake when the QP errors and its recvs flush."""

    def scenario(sim, a, b):
        yield from b.post_recv(_recv_wr(b, 55))

        def killer():
            yield sim.timeout(us(50))
            b.qp.modify(QPState.ERROR)

        sim.process(killer())
        cqes = yield from b.wait_recv(mode=WaitMode.EVENT)
        return cqes, sim.now

    (cqes, now), _sim, _ = run_faulty(scenario)
    assert len(cqes) == 1
    assert cqes[0].wr_id == 55
    assert cqes[0].status is WCStatus.WR_FLUSH_ERR
    assert now >= us(50)


# -- injector details ------------------------------------------------------------


def test_per_link_loss_overrides_only_named_direction():
    """link_loss on 0->1 drops forward data; the reverse direction is
    clean, so recovery needs only the initiator's timers."""
    plan = FaultPlan(link_loss=((0, 1, 0.5),))
    (statuses, timeouts, retx, _), _sim, inj = run_faulty(
        _lossy_burst(n=20), plan=plan, seed=4)
    assert statuses == [WCStatus.SUCCESS] * 20
    assert inj.drops >= 1


def test_injector_uses_named_rng_streams():
    sim = Simulator(seed=7)
    inj = FaultInjector(sim, FaultPlan(loss=0.5), scope="fabric")
    for _ in range(8):
        inj.on_transmit(0, 1, 0.0, "send", 100, 250.0)
    # The per-link stream exists and nothing else was touched.
    assert "faults.fabric.l0-1" in sim.rng._streams
    assert inj.drops + inj.delays >= 0
    assert "faults.fabric.l1-0" not in sim.rng._streams


def test_link_level_fault_hook():
    """A bare Link honours an attached injector (drops by port index)."""
    from repro.hw.link import Link

    sim = Simulator(seed=1)
    link = Link(sim, bandwidth=12.5, propagation_ns=250.0, mtu=4096,
                per_packet_ns=10.0)
    got = []
    link.ports[1].deliver = got.append
    link.faults = FaultInjector(sim, FaultPlan(flaps=((0.0, 1e9),)),
                                scope="link")

    def sender():
        yield from link.transmit(link.ports[0], 512, "payload")

    sim.run(sim.process(sender()))
    sim.run()
    assert got == []  # flap window swallowed it
    assert link.faults.drops == 1
