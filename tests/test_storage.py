"""Storage extension: NVMe device model + the three storage dataplanes."""

import pytest

from repro.errors import HardwareError, PolicyViolation
from repro.hw.cpu import Core
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.storage import (
    CordStorageDataplane,
    IoRateLimit,
    IoStats,
    KernelBlockDataplane,
    NvmeDevice,
    NvmeProfile,
    SpdkDataplane,
)
from repro.storage.dataplane import make_command
from repro.storage.policies import StoragePolicyChain
from repro.units import us


def build(kind="spdk", policies=None, profile=None):
    sim = Simulator(seed=3)
    device = NvmeDevice(sim, profile=profile)
    core = Core(sim, SYSTEM_L)
    if kind == "spdk":
        dp = SpdkDataplane(device, core, SYSTEM_L)
    elif kind == "cord":
        dp = CordStorageDataplane(device, core, SYSTEM_L, policies=policies)
    else:
        dp = KernelBlockDataplane(device, core, SYSTEM_L)
    return sim, device, dp


def test_read_completes_with_media_latency():
    sim, device, dp = build()

    def main():
        cmd = yield from dp.run_io(make_command("read", 0, 4096))
        return cmd.latency_ns

    latency = sim.run(sim.process(main()))
    assert latency > device.profile.read_latency_ns
    assert latency < device.profile.read_latency_ns + us(5)


def test_write_slower_than_read():
    def one(op):
        sim, _dev, dp = build()

        def main():
            cmd = yield from dp.run_io(make_command(op, 0, 4096))
            return cmd.latency_ns

        return sim.run(sim.process(main()))

    assert one("write") > one("read")


def test_invalid_commands_rejected():
    sim, device, dp = build()
    qp = dp.qp
    with pytest.raises(HardwareError):
        device.hw_submit(qp, make_command("erase", 0, 4096))
    with pytest.raises(HardwareError):
        device.hw_submit(qp, make_command("read", 0, 100))  # not block-aligned
    with pytest.raises(HardwareError):
        device.hw_submit(qp, make_command("read", 0, 0))


def test_queue_depth_enforced():
    profile = NvmeProfile(sq_depth=2)
    sim, device, dp = build(profile=profile)

    def main():
        yield from dp.submit(make_command("read", 0, 4096))
        yield from dp.submit(make_command("read", 8, 4096))
        with pytest.raises(HardwareError, match="full"):
            yield from dp.submit(make_command("read", 16, 4096))
        return "ok"

    assert sim.run(sim.process(main())) == "ok"


def test_channel_parallelism_bounds_iops():
    """Throughput at QD>>1 is capped by channels/media-latency and bus."""
    sim, device, dp = build()

    def main():
        total = 400
        submitted = 0
        done = 0
        while done < total:
            while submitted < total and dp.qp.outstanding < 64:
                yield from dp.submit(make_command("read", submitted, 4096))
                submitted += 1
            cmds = yield from dp.wait()
            done += len(cmds)
        return sim.now

    elapsed = sim.run(sim.process(main()))
    iops = 400 / elapsed * 1e9
    prof = device.profile
    ceiling = min(prof.channels / prof.read_latency_ns, 1 / (4096 / prof.bandwidth)) * 1e9
    assert iops < ceiling * 1.05
    assert iops > ceiling * 0.4  # and the pipeline actually fills


def test_cord_storage_adds_constant_overhead():
    def qd1_latency(kind):
        sim, _dev, dp = build(kind)

        def main():
            t0 = sim.now
            yield from dp.run_io(make_command("read", 0, 4096))
            return sim.now - t0  # app-observed, includes dataplane CPU

        return sim.run(sim.process(main()))

    spdk = qd1_latency("spdk")
    cord = qd1_latency("cord")
    blk = qd1_latency("blk")
    assert spdk < cord < blk
    assert cord - spdk < us(2)     # a syscall's worth
    assert blk - spdk > us(2)      # block layer + interrupt path


def test_io_rate_limit_denies_over_budget():
    chain = StoragePolicyChain([IoRateLimit(rate_bytes_per_s=1e6, burst_bytes=8192)])
    sim, _dev, dp = build("cord", policies=chain)

    def main():
        yield from dp.submit(make_command("read", 0, 8192))
        with pytest.raises(PolicyViolation):
            yield from dp.submit(make_command("read", 16, 8192))
        return dp.denied

    assert sim.run(sim.process(main())) == 1


def test_io_stats_account_per_tenant():
    stats = IoStats()
    chain = StoragePolicyChain([stats])
    sim, _dev, dp = build("cord", policies=chain)
    dp.tenant = "db"

    def main():
        yield from dp.run_io(make_command("read", 0, 4096))
        yield from dp.run_io(make_command("write", 8, 8192))

    sim.run(sim.process(main()))
    rec = stats.per_tenant["db"]
    assert rec["submits"] == 2
    assert rec["bytes"] == 4096 + 8192
    assert rec["reads"] == 1 and rec["writes"] == 1
    assert rec["polls"] >= 2


def test_large_block_hides_cord_overhead():
    """Same crossover story as fig. 4, in the storage domain."""

    def bw(kind, nbytes):
        sim, _dev, dp = build(kind)

        def main():
            total = 64
            submitted = 0
            done = 0
            t0 = sim.now
            while done < total:
                while submitted < total and dp.qp.outstanding < 32:
                    yield from dp.submit(make_command("read", submitted, nbytes))
                    submitted += 1
                cmds = yield from dp.wait()
                done += len(cmds)
            return total * nbytes / (sim.now - t0)

        return sim.run(sim.process(main()))

    small_ratio = bw("cord", 4096) / bw("spdk", 4096)
    large_ratio = bw("cord", 1 << 20) / bw("spdk", 1 << 20)
    assert large_ratio > 0.95
    assert small_ratio < large_ratio + 0.01
