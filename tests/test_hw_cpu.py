"""CPU core model: execution, syscalls, DVFS governor, pinning."""

import pytest

from repro.errors import HardwareError
from repro.hw.cpu import Core, CpuSet
from repro.hw.profiles import SYSTEM_A, SYSTEM_L
from repro.sim import Simulator
from repro.units import us


def make_core(system=SYSTEM_L, seed=0):
    sim = Simulator(seed=seed)
    return sim, Core(sim, system, index=0)


def run(sim, gen):
    return sim.run(sim.process(gen))


def test_run_advances_time_by_work():
    sim, core = make_core()

    def proc():
        yield from core.run(1234.0)
        return sim.now

    assert run(sim, proc()) == pytest.approx(1234.0)
    assert core.busy_ns == pytest.approx(1234.0)


def test_negative_work_rejected():
    sim, core = make_core()

    def proc():
        yield from core.run(-1.0)

    with pytest.raises(HardwareError):
        run(sim, proc())


def test_core_serializes_two_threads():
    sim, core = make_core()
    ends = []

    def proc(tag):
        yield from core.run(100.0)
        ends.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert ends == [("a", 100.0), ("b", 200.0)]


def test_syscall_cost_deterministic_without_jitter():
    sim, core = make_core(SYSTEM_L)

    def proc():
        yield from core.syscall(0.0)
        return sim.now

    # KPTI off on L: the null syscall costs exactly syscall_ns.
    assert run(sim, proc()) == pytest.approx(SYSTEM_L.cpu.syscall_ns)
    assert core.syscalls == 1


def test_kpti_adds_to_syscall():
    system = SYSTEM_L.with_overrides(kpti=True)
    sim = Simulator()
    core = Core(sim, system)

    def proc():
        yield from core.syscall(0.0)
        return sim.now

    expected = SYSTEM_L.cpu.syscall_ns + SYSTEM_L.cpu.kpti_extra_ns
    assert run(sim, proc()) == pytest.approx(expected)


def test_syscall_jitter_on_virtualized_system():
    sim, core = make_core(SYSTEM_A, seed=3)
    costs = []

    def proc():
        for _ in range(50):
            t0 = sim.now
            yield from core.syscall(0.0)
            costs.append(sim.now - t0)

    run(sim, proc())
    assert len(set(round(c, 3) for c in costs)) > 10  # actually noisy
    import numpy as np

    # Mean within 25% of the profile's syscall cost.
    assert abs(np.mean(costs) / SYSTEM_A.cpu.syscall_ns - 1) < 0.25


def test_turbo_disabled_frequency_is_nominal():
    sim, core = make_core(SYSTEM_L)
    assert core.frequency_factor == 1.0
    core.grant_idle_credit(us(100))
    assert core.frequency_factor == 1.0


def test_turbo_idle_core_runs_faster():
    sim, core = make_core(SYSTEM_A)
    # Fresh core: duty 0 -> full turbo headroom.
    assert core.frequency_factor == pytest.approx(SYSTEM_A.cpu.turbo_headroom)

    def proc():
        yield from core.run(1000.0)
        return sim.now

    elapsed = run(sim, proc())
    assert elapsed < 1000.0  # ran faster than nominal


def test_turbo_decays_under_sustained_load():
    sim, core = make_core(SYSTEM_A)

    def proc():
        yield from core.run(SYSTEM_A.cpu.dvfs_window_ns * 20)

    run(sim, proc())
    # After sustained work the duty cycle saturates and turbo is gone.
    assert core.duty_cycle > 0.95
    assert core.frequency_factor < 1.01


def test_idle_credit_restores_turbo():
    sim, core = make_core(SYSTEM_A)

    def proc():
        yield from core.run(SYSTEM_A.cpu.dvfs_window_ns * 20)

    run(sim, proc())
    saturated = core.frequency_factor
    core.grant_idle_credit(SYSTEM_A.cpu.dvfs_window_ns * 10)
    assert core.frequency_factor > saturated


def test_busy_poll_counts_wait_as_duty():
    sim = Simulator()
    core = Core(sim, SYSTEM_A)
    ev = sim.event()

    def firer():
        yield sim.timeout(SYSTEM_A.cpu.dvfs_window_ns * 5)
        ev.succeed(None)

    def proc():
        yield from core.busy_poll(ev, 50.0)
        return core.duty_cycle

    sim.process(firer())
    duty = sim.run(sim.process(proc()))
    assert duty > 0.9  # spinning saturated the core


def test_cpuset_pin_round_robin_and_explicit():
    sim = Simulator()
    cpus = CpuSet(sim, SYSTEM_L)
    assert len(cpus) == SYSTEM_L.cpu.cores
    picked = [cpus.pin().index for _ in range(SYSTEM_L.cpu.cores + 1)]
    assert picked[0] == picked[-1]  # wrapped around
    assert cpus.pin(2).index == 2
    with pytest.raises(HardwareError):
        cpus.pin(99)
