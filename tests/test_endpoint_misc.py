"""Endpoint helpers, driver cost model, bench support utilities."""

import pytest

from repro.bench_support import scaled
from repro.cluster import build_pair
from repro.core import driver
from repro.core.endpoint import make_dataplane, make_endpoint, make_rc_pair
from repro.core.policy import PolicyChain
from repro.core.policies import FlowStats
from repro.errors import ConfigError
from repro.hw.profiles import SYSTEM_A, SYSTEM_L
from repro.sim import Simulator
from repro.verbs.qp import QPState, Transport
from repro.verbs.wr import Opcode, SendWR


def build():
    sim = Simulator(seed=1)
    _f, host_a, host_b = build_pair(sim, SYSTEM_L)
    return sim, host_a, host_b


# -- factory ----------------------------------------------------------------------


def test_make_dataplane_kinds_and_aliases():
    sim, host_a, _ = build()
    core = host_a.cpus.pin()
    assert make_dataplane("bp", host_a, core).tag == "BP"
    assert make_dataplane("CORD", host_a, core).tag == "CD"
    with pytest.raises(ConfigError, match="unknown dataplane"):
        make_dataplane("xdp", host_a, core)


def test_bypass_with_policies_rejected():
    sim, host_a, _ = build()
    with pytest.raises(ConfigError):
        make_dataplane("bypass", host_a, host_a.cpus.pin(),
                       PolicyChain([FlowStats()]))


def test_make_endpoint_shared_cq_option():
    sim, host_a, _ = build()

    def main():
        ep = yield from make_endpoint(host_a, "bypass", separate_cqs=False)
        return ep.send_cq is ep.recv_cq

    assert sim.run(sim.process(main())) is True


def test_endpoint_addr_and_state():
    sim, host_a, host_b = build()

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        return a.addr, a.qp.state, b.qp.remote

    addr, state, remote = sim.run(sim.process(main()))
    assert addr[0] == host_a.host_id
    assert state is QPState.RTS
    assert remote == addr


def test_endpoint_custom_buffer_size():
    sim, host_a, _ = build()

    def main():
        ep = yield from make_endpoint(host_a, "bypass", buf_bytes=1 << 16)
        return ep.buf.length, ep.mr.length

    assert sim.run(sim.process(main())) == (1 << 16, 1 << 16)


# -- driver cost model ----------------------------------------------------------------


def test_should_inline_rules():
    sim = Simulator()
    # Build a QP directly for the pure-function checks.
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.pd import ProtectionDomain
    from repro.verbs.qp import QueuePair

    qp = QueuePair(ProtectionDomain(None), Transport.RC,
                   CompletionQueue(sim, 16), CompletionQueue(sim, 16),
                   qpn=1, sq_depth=8, rq_depth=8, max_inline=220)
    small = SendWR(wr_id=1, opcode=Opcode.SEND, length=64)
    big = SendWR(wr_id=2, opcode=Opcode.SEND, length=4096)
    read = SendWR(wr_id=3, opcode=Opcode.RDMA_READ, length=64)
    assert driver.should_inline(SYSTEM_L, qp, small, cord=False)
    assert driver.should_inline(SYSTEM_L, qp, small, cord=True)  # L supports it
    assert not driver.should_inline(SYSTEM_L, qp, big, cord=False)
    assert not driver.should_inline(SYSTEM_L, qp, read, cord=False)
    # System A: CoRD cannot inline (fig. 5a), bypass can.
    assert not driver.should_inline(SYSTEM_A, qp, small, cord=True)
    assert driver.should_inline(SYSTEM_A, qp, small, cord=False)


def test_inline_post_costs_more_cpu_but_less_nic_latency():
    inline_cost = driver.post_send_cpu_ns(
        SYSTEM_L, SendWR(wr_id=1, opcode=Opcode.SEND, length=128), inline=True)
    plain_cost = driver.post_send_cpu_ns(
        SYSTEM_L, SendWR(wr_id=1, opcode=Opcode.SEND, length=128), inline=False)
    assert inline_cost > plain_cost  # CPU stores the payload into the WQE


def test_cord_op_cost_composition():
    assert SYSTEM_L.cord_op_cost() == pytest.approx(
        SYSTEM_L.cpu.syscall_ns + SYSTEM_L.cord_serialize_ns
        + SYSTEM_L.cord_kernel_driver_ns)
    kpti = SYSTEM_L.with_overrides(kpti=True)
    assert kpti.cord_op_cost() == pytest.approx(
        SYSTEM_L.cord_op_cost() + SYSTEM_L.cpu.kpti_extra_ns)


# -- bench support -----------------------------------------------------------------------


def test_scaled_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
    assert scaled(100) == 10
    assert scaled(3, minimum=2) == 2
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
    assert scaled(100) == 100


def test_profiles_registry():
    from repro.hw.profiles import get_profile

    assert get_profile("L").name == "L"
    with pytest.raises(KeyError, match="unknown system profile"):
        get_profile("Z")
