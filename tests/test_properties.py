"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FilterStore, PriorityResource, Resource, Simulator, Store
from repro.sim.rng import lognormal_jitter
from repro.core.policies import TokenBucketQos
from repro.core.policy import OpContext
from repro.errors import PolicyViolation
from repro.verbs.wr import Opcode, SendWR

# -- simulator ordering ----------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        ev = sim.timeout(d, value=d)
        ev.callbacks.append(lambda e: fired.append(e.value))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**32 - 1))
def test_simulation_deterministic_replay(n, seed):
    def run_once():
        sim = Simulator(seed=seed)
        log = []

        def worker(tag):
            rng = sim.rng.stream(f"w{tag}")
            for _ in range(3):
                yield sim.timeout(float(rng.integers(1, 100)))
                log.append((tag, sim.now))

        for tag in range(n):
            sim.process(worker(tag))
        sim.run()
        return log

    assert run_once() == run_once()


# -- stores --------------------------------------------------------------------------


@given(st.lists(st.integers(), min_size=1, max_size=60))
def test_store_preserves_fifo(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            got.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40),
       st.integers(min_value=0, max_value=9))
def test_filter_store_returns_only_matching(items, wanted):
    sim = Simulator()
    store = FilterStore(sim)
    for item in items:
        store.put(item)
    sim.run()
    got = []
    while True:
        item = store.try_get(lambda x: x == wanted)
        if item is None:
            break
        got.append(item)
    assert got == [i for i in items if i == wanted]
    assert list(store.items) == [i for i in items if i != wanted]


# -- resources --------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=8),
       st.lists(st.floats(min_value=1, max_value=100, allow_nan=False),
                min_size=1, max_size=30))
def test_resource_never_exceeds_capacity(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = [0]

    def user(hold):
        req = res.request()
        yield req
        max_seen[0] = max(max_seen[0], res.count)
        yield sim.timeout(hold)
        res.release(req)

    for hold in holds:
        sim.process(user(hold))
    sim.run()
    assert max_seen[0] <= capacity
    assert res.count == 0


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=20))
def test_priority_resource_serves_in_priority_order(priorities):
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    served = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def user(prio, idx):
        yield sim.timeout(1.0)
        req = res.request(priority=prio)
        yield req
        served.append((prio, idx))
        res.release(req)

    sim.process(holder())
    for idx, prio in enumerate(priorities):
        sim.process(user(prio, idx))
    sim.run()
    assert served == sorted(served)  # by (priority, arrival index)


# -- rng ------------------------------------------------------------------------------


@given(st.floats(min_value=1.0, max_value=1e6), st.floats(min_value=0.0, max_value=1.0))
def test_lognormal_jitter_positive_and_exact_when_cv_zero(mean, cv):
    import numpy as np

    # sim: allow-random(seeded local generator feeding a pure-function property test)
    rng = np.random.default_rng(0)
    value = lognormal_jitter(rng, mean, cv)
    assert value > 0
    if cv == 0:
        assert value == mean


def test_lognormal_jitter_mean_converges():
    import numpy as np

    # sim: allow-random(seeded local generator feeding a pure-function property test)
    rng = np.random.default_rng(1)
    draws = [lognormal_jitter(rng, 500.0, 0.35) for _ in range(4000)]
    assert abs(np.mean(draws) / 500.0 - 1.0) < 0.05


# -- token bucket ------------------------------------------------------------------------


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.integers(min_value=1, max_value=10_000)),
                min_size=1, max_size=50))
def test_token_bucket_never_admits_above_rate_plus_burst(ops):
    rate = 1e9  # 1 B/ns
    burst = 8_000
    qos = TokenBucketQos(rate_bytes_per_s=rate, burst_bytes=burst)
    now = 0.0
    admitted = 0
    for dt, size in sorted(ops):
        now = dt
        wr = SendWR(wr_id=1, opcode=Opcode.SEND, length=size)
        ctx = OpContext(now=now, host=None, op="post_send", send_wr=wr)
        try:
            qos.evaluate(ctx)
            admitted += size
        except PolicyViolation:
            pass
        # Invariant: admitted bytes never exceed elapsed*rate + burst.
        assert admitted <= now * 1.0 + burst + 1e-6
    assert qos.bytes_admitted == admitted


# -- fabric timing ------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=1 << 24))
def test_serialization_monotonic_in_size(nbytes):
    from repro.cluster import build_cluster
    from repro.hw.profiles import SYSTEM_L

    sim = Simulator()
    fabric, _ = build_cluster(sim, SYSTEM_L, 2)
    t1 = fabric.serialization_ns(nbytes)
    t2 = fabric.serialization_ns(nbytes + 4096)
    assert t2 > t1
    assert t1 >= SYSTEM_L.nic.per_packet_ns


# -- MPI collectives over random configurations -------------------------------------------


@settings(deadline=None, max_examples=10)
@given(size=st.integers(min_value=2, max_value=7),
       nbytes=st.integers(min_value=1, max_value=1 << 16))
def test_allreduce_correct_for_any_world_and_size(size, nbytes):
    import numpy as np

    from repro.cluster import build_cluster
    from repro.hw.profiles import SYSTEM_L
    from repro.mpi import MpiWorld

    sim = Simulator(seed=1)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size)

    def program(comm):
        data = np.full(4, float(comm.rank + 1))
        out = yield from comm.allreduce(nbytes=nbytes, data=data)
        return float(out[0])

    results = world.run(program)
    expected = size * (size + 1) / 2
    assert results == [expected] * size


@settings(deadline=None, max_examples=10)
@given(size=st.integers(min_value=2, max_value=6),
       root=st.integers(min_value=0, max_value=5))
def test_bcast_reaches_everyone_any_root(size, root):
    from repro.cluster import build_cluster
    from repro.hw.profiles import SYSTEM_L
    from repro.mpi import MpiWorld

    root = root % size
    sim = Simulator(seed=1)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size)

    def program(comm):
        data = b"payload" if comm.rank == root else None
        out = yield from comm.bcast(root, nbytes=7, data=data)
        return out

    assert world.run(program) == [b"payload"] * size


# -- NIC conservation -------------------------------------------------------------------


@settings(deadline=None, max_examples=8)
@given(st.lists(st.sampled_from([64, 1024, 4096, 65536]), min_size=1, max_size=24),
       st.integers(min_value=0, max_value=2**16))
def test_every_posted_send_is_received_exactly_once(sizes, seed):
    """Conservation under random sizes/seeds: sends in == recv CQEs out,
    no duplicates, no losses, order preserved (RC)."""
    from repro.cluster import build_pair
    from repro.core.endpoint import make_rc_pair
    from repro.hw.profiles import SYSTEM_L
    from repro.verbs.wr import Opcode, RecvWR, SendWR

    sim = Simulator(seed=seed)
    _f, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        wrs = [RecvWR(wr_id=1000 + i, addr=b.buf.addr, length=b.buf.length,
                      lkey=b.mr.lkey) for i in range(len(sizes))]
        yield from b.dataplane.post_recv_many(b.qp, wrs)
        for i, size in enumerate(sizes):
            yield from a.post_send(SendWR(wr_id=i, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=size,
                                          lkey=a.mr.lkey))
        got = []
        while len(got) < len(sizes):
            got.extend((yield from b.wait_recv()))
        return got

    got = sim.run(sim.process(main()))
    sim.run()  # drain trailing acks
    assert [c.byte_len for c in got] == sizes
    assert all(c.ok for c in got)
    # Hardware counters agree: every message crossed exactly once.
    assert host_a.nic.counters.tx_msgs == len(sizes)
    assert host_b.nic.counters.rx_msgs == len(sizes)
    assert host_b.nic.counters.rnr_naks_sent == 0
