"""Telemetry subsystem: spans, metrics, exporters, trace retention."""

import json

import pytest

from repro.cluster import build_pair
from repro.core.policies.observability import FlowStats
from repro.core.policy import OpContext
from repro.core.endpoint import make_rc_pair
from repro.hw.profiles import get_profile
from repro.sim import Simulator
from repro.sim.trace import Trace
from repro.telemetry import (
    Gauge,
    Log2Histogram,
    MetricCounter,
    Telemetry,
    build_spans,
    chrome_trace,
    jsonl_lines,
    metrics_snapshot,
    records_from_jsonl,
)
from repro.verbs.wr import Opcode, RecvWR, SendWR

SIZE = 4096


def run_traced(iters=1, client="bypass", server="bypass", system="L",
               telemetry=True, max_records=None):
    """Run ``iters`` fully-traced RC sends; returns (sim, host_a, host_b)."""
    sim = Simulator(seed=7, trace=Trace(enabled=True, max_records=max_records))
    sim.telemetry.enabled = telemetry
    _fabric, host_a, host_b = build_pair(sim, get_profile(system))

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, client, server)
        sim.trace.clear()
        for i in range(iters):
            yield from b.post_recv(RecvWR(wr_id=i + 1, addr=b.buf.addr,
                                          length=b.buf.length, lkey=b.mr.lkey))
            yield from a.post_send(SendWR(wr_id=i + 1, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=SIZE,
                                          lkey=a.mr.lkey))
            yield from b.wait_recv()
            yield from a.wait_send()

    sim.run(sim.process(main()))
    sim.run()
    return sim, host_a, host_b


# -- op spans -----------------------------------------------------------------


def test_span_chain_is_causally_ordered():
    sim, _a, _b = run_traced()
    spans = build_spans(sim.trace, op="post_send")
    assert len(spans) == 1
    span = spans[0]
    assert span.complete
    assert span.size == SIZE and span.dataplane == "BP"
    names = [s.name for s in span.stages()]
    # The op's life, in causal order: post -> doorbell -> WQE pipeline ->
    # wire -> responder rx/DMA -> CQE; then the ACK leg back.
    assert names[:8] == ["post", "doorbell", "wqe_fetch", "tx_wire",
                         "tx_done", "rx_arrive", "rx_exec", "cqe"]
    assert "ack" in names and "rx_arrive#2" in names and "cqe#2" in names
    times = [m.time for m in span.marks]
    assert times == sorted(times)


def test_stage_durations_sum_to_op_latency():
    sim, _a, _b = run_traced(iters=3)
    spans = build_spans(sim.trace, op="post_send")
    assert len(spans) == 3
    for span in spans:
        assert span.duration_ns > 0
        total = sum(s.duration_ns for s in span.stages())
        assert abs(total - span.duration_ns) < 1e-6


def test_span_crosses_both_hosts():
    sim, _a, _b = run_traced()
    (span,) = build_spans(sim.trace, op="post_send")
    hosts = {m.host for m in span.marks}
    assert {0, 1} <= hosts


def test_post_recv_span_is_cpu_side_and_complete():
    sim, _a, _b = run_traced()
    spans = build_spans(sim.trace, op="post_recv")
    assert len(spans) == 1
    span = spans[0]
    assert span.complete
    # Ends when the WQE reaches the device: no NIC/wire marks.
    assert {m.comp for m in span.marks} == {"app"}


def test_cord_span_includes_syscall_entry():
    """CoRD's post->doorbell stage carries the kernel crossing, so it is
    strictly longer than bypass's user-space driver stage."""
    def post_stage(client):
        sim, _a, _b = run_traced(client=client, server=client)
        (span,) = build_spans(sim.trace, op="post_send")
        return span.stage_durations()["post"]

    assert post_stage("cord") > post_stage("bypass")


def test_spans_without_end_are_incomplete():
    trace = Trace(enabled=True)
    span = trace.new_span()
    trace.emit(0.0, "span", "op_begin", span=span, host=0, op="post_send",
               dataplane="BP", qpn=1, wr_id=1, size=64)
    trace.emit(5.0, "span", "mark", span=span, stage="doorbell", host=0,
               comp="nic.tx")
    (built,) = build_spans(trace)
    assert not built.complete
    assert built.end_ns == 5.0


# -- exporters ----------------------------------------------------------------


def test_chrome_trace_is_valid_and_balanced():
    sim, _a, _b = run_traced()
    doc = chrome_trace(sim.trace)
    doc = json.loads(json.dumps(doc))  # must be pure-JSON serializable
    events = doc["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    # Complete ("X") events need no B/E balancing; nothing else emits B/E.
    assert phases <= {"X", "i", "M"}
    for e in events:
        if e["ph"] == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert "span" in e["args"]
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {"host0", "host1"} <= names


def test_chrome_trace_span_durations_match():
    sim, _a, _b = run_traced()
    (span,) = build_spans(sim.trace, op="post_send")
    doc = chrome_trace(sim.trace, spans=[span], include_instants=False)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    total_us = sum(e["dur"] for e in xs)
    assert abs(total_us - span.duration_ns / 1e3) < 1e-6


def test_jsonl_roundtrip():
    sim, _a, _b = run_traced()
    lines = list(jsonl_lines(sim.trace))
    assert all(json.loads(line) for line in lines)
    back = records_from_jsonl(lines)
    assert back == list(sim.trace)


def test_metrics_snapshot_shape():
    sim, host_a, host_b = run_traced(iters=4, client="cord", server="cord")
    snap = metrics_snapshot(sim, hosts=[host_a, host_b])
    snap = json.loads(json.dumps(snap, default=str))
    assert snap["telemetry_enabled"] is True
    host0 = snap["scopes"]["host0"]
    ops = host0["counters"]["dataplane.ops"]
    assert ops["by_key"]["CD.post_send"] == 4
    assert host0["counters"]["cpu.syscalls"]["count"] > 0
    assert host0["histograms"]["nic.txq.occupancy"]["count"] > 0
    assert host0["histograms"]["cq.depth"]["count"] > 0
    # Pulled device state rides along even for push-disabled runs.
    assert snap["hosts"]["host0"]["nic"]["tx_msgs"] > 0
    assert snap["hosts"]["host1"]["nic"]["rx_msgs"] > 0


def test_metrics_snapshot_includes_flow_report():
    stats = FlowStats()
    ctx = OpContext(now=100.0, host=None, op="post_send", tenant="t0")
    stats.evaluate(ctx)
    sim = Simulator(seed=1)
    snap = metrics_snapshot(sim, flows=stats.report())
    assert snap["flows"][0]["tenant"] == "t0"
    assert snap["flows"][0]["duration_ns"] == 0.0


# -- metric primitives --------------------------------------------------------


def test_metric_counter_counts_and_keys():
    c = MetricCounter("x")
    c.inc(10.0, key="a")
    c.inc(5.0, key="a")
    c.inc()
    assert c.count == 3 and c.total == 15.0
    assert c.by_key == {"a": 2}
    assert c.snapshot()["by_key"] == {"a": 2}


def test_gauge_watermarks():
    g = Gauge("depth")
    assert g.snapshot()["value"] is None
    for v in (3.0, 9.0, 1.0):
        g.set(v)
    assert g.value == 1.0 and g.min == 1.0 and g.max == 9.0 and g.samples == 3


@pytest.mark.parametrize("value,bucket", [
    (0, 0), (0.5, 0), (1, 0), (2, 1), (3, 1), (4, 2),
    (1023, 9), (1024, 10),
])
def test_log2_histogram_buckets(value, bucket):
    h = Log2Histogram("sizes")
    h.observe(value)
    assert h.buckets == {bucket: 1}


def test_log2_histogram_percentile_single_bucket_interpolates():
    h = Log2Histogram("lat")
    for _ in range(4):
        h.observe(100)  # bucket 6: [64, 128)
    # Uniform-in-bucket assumption: quartiles interpolate across [64, 128).
    assert h.percentile(0) == pytest.approx(64.0)
    assert h.percentile(50) == pytest.approx(96.0)
    assert h.percentile(100) == pytest.approx(128.0)


def test_log2_histogram_percentile_across_buckets():
    h = Log2Histogram("lat")
    for v in (1, 2, 4, 8):  # buckets 0..3, one each
        h.observe(v)
    # p25 lands at the top of bucket 0 ([0, 2)); p99 inside bucket 3.
    assert h.percentile(25) == pytest.approx(2.0)
    assert h.percentile(75) == pytest.approx(8.0)
    assert 8.0 < h.percentile(99) <= 16.0
    assert h.percentile(50) <= h.percentile(90) <= h.percentile(99)


def test_log2_histogram_percentile_edges():
    h = Log2Histogram("lat")
    assert h.percentile(50) == 0.0  # empty histogram
    h.observe(0)
    assert 0.0 <= h.percentile(99) <= 2.0  # bucket 0 spans [0, 2)
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_log2_histogram_snapshot_carries_percentiles():
    h = Log2Histogram("lat")
    for v in (10, 20, 500):
        h.observe(v)
    snap = h.snapshot()
    assert snap["p50"] == pytest.approx(h.percentile(50))
    assert snap["p99"] == pytest.approx(h.percentile(99))
    assert snap["p50"] <= snap["p99"]


def test_metrics_snapshot_surfaces_trace_retention():
    sim, host_a, host_b = run_traced(iters=6, max_records=40)
    assert sim.trace.dropped > 0  # the ring evicted setup-era records
    snap = metrics_snapshot(sim, hosts=[host_a, host_b])
    trace_info = snap["trace"]
    assert trace_info["enabled"] is True
    assert trace_info["records"] == 40
    assert trace_info["max_records"] == 40
    assert trace_info["dropped"] == sim.trace.dropped


def test_metrics_snapshot_trace_unbounded_reports_no_drops():
    sim, _a, _b = run_traced(iters=2)
    snap = metrics_snapshot(sim)
    assert snap["trace"]["dropped"] == 0
    assert snap["trace"]["max_records"] is None


def test_telemetry_scopes_lazy_and_stable():
    tele = Telemetry(enabled=True)
    reg = tele.scope("host0")
    assert tele.scope("host0") is reg
    assert reg.counter("c") is reg.counter("c")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    assert tele.scopes() == ["host0"]


def test_telemetry_disabled_records_nothing():
    sim, _a, _b = run_traced(telemetry=False)
    assert sim.telemetry.snapshot() == {}


# -- trace retention (ring buffer) --------------------------------------------


def test_trace_ring_buffer_keeps_newest():
    trace = Trace(enabled=True, max_records=5)
    for i in range(10):
        trace.emit(float(i), "t", "e", i=i)
    assert len(trace) == 5
    assert trace.dropped == 5
    assert [r.get("i") for r in trace] == [5, 6, 7, 8, 9]


def test_trace_stream_only_still_notifies():
    trace = Trace(enabled=True, max_records=0)
    seen = []
    trace.subscribe(seen.append)
    for i in range(3):
        trace.emit(float(i), "t", "e", i=i)
    assert len(trace) == 0
    assert trace.dropped == 3
    assert [r.get("i") for r in seen] == [0, 1, 2]


def test_trace_clear_resets_dropped():
    trace = Trace(enabled=True, max_records=1)
    trace.emit(0.0, "t", "e")
    trace.emit(1.0, "t", "e")
    assert trace.dropped == 1
    trace.clear()
    assert trace.dropped == 0 and len(trace) == 0


def test_build_spans_skips_evicted_begins():
    """A span whose op_begin fell off the ring buffer is dropped whole."""
    trace = Trace(enabled=True, max_records=2)
    s1, s2 = trace.new_span(), trace.new_span()
    trace.emit(0.0, "span", "op_begin", span=s1, host=0, op="post_send")
    trace.emit(1.0, "span", "op_begin", span=s2, host=0, op="post_send")
    trace.emit(2.0, "span", "op_end", span=s2, host=0)  # evicts s1's begin
    spans = build_spans(trace)
    assert [s.span_id for s in spans] == [s2]


# -- flow stats ---------------------------------------------------------------


def test_flow_report_rates_guarded_for_single_op():
    stats = FlowStats()
    stats.evaluate(OpContext(now=50.0, host=None, op="post_send"))
    (flow,) = stats.report()
    assert flow["duration_ns"] == 0.0
    assert flow["msg_rate_per_s"] == 0.0
    assert flow["byte_rate_per_s"] == 0.0


def test_flow_report_rates_for_real_flows():
    stats = FlowStats()
    ctx = OpContext(now=0.0, host=None, op="post_send")
    stats.evaluate(ctx)
    stats.evaluate(OpContext(now=1000.0, host=None, op="post_send"))
    (flow,) = stats.report()
    assert flow["duration_ns"] == 1000.0
    assert flow["msg_rate_per_s"] == pytest.approx(1e6)
