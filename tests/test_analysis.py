"""Analysis helpers: series math, table rendering, shape checks."""

import pytest

from repro.analysis import (
    CheckResult,
    Series,
    SweepTable,
    check_between,
    check_ratio,
    format_table,
)


def test_series_add_and_lookup():
    s = Series("a")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert s.y_at(2) == 20.0
    assert len(s) == 2
    with pytest.raises(ValueError):
        s.y_at(99)


def test_series_ratio():
    a = Series("a")
    b = Series("b")
    for x in (1, 2, 4):
        a.add(x, float(x * 10))
        b.add(x, float(x * 5))
    r = a.ratio_to(b)
    assert r.ys == [2.0, 2.0, 2.0]
    assert r.name == "a/b"


def test_sweep_table_rows_align_mixed_xs():
    t = SweepTable("title", "size")
    s1 = t.new_series("one")
    s2 = t.new_series("two")
    s1.add("64", 1.0)
    s1.add("128", 2.0)
    s2.add("128", 3.0)
    header, rows = t.rows()
    assert header == ["size", "one", "two"]
    assert rows == [["64", "1.000", "-"], ["128", "2.000", "3.000"]]
    with pytest.raises(KeyError):
        t.get("three")


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "333" in lines[4]  # title, header, separator, row1, row2
    # All rows align to the same width.
    assert len(lines[3]) == len(lines[4]) == len(lines[2])


def test_check_between():
    assert check_between("x", 5.0, 1, 10).passed
    assert not check_between("x", 0.5, 1, 10).passed
    assert "[PASS]" in check_between("x", 5.0, 1, 10).line()
    assert "[FAIL]" in check_between("x", 50, 1, 10).line()


def test_check_ratio_tolerance():
    assert check_ratio("x", 1.4, 1.0, tol=0.5).passed
    assert not check_ratio("x", 1.6, 1.0, tol=0.5).passed
