"""MPI world wiring details and NPB suite runner."""

import pytest

from repro.cluster import build_cluster
from repro.core.policy import PolicyChain
from repro.core.policies import FlowStats
from repro.errors import ConfigError
from repro.hw.profiles import SYSTEM_A, SYSTEM_L
from repro.mpi import MpiWorld
from repro.npb import run_suite
from repro.sim import Simulator


def test_world_validates_config():
    sim = Simulator()
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    with pytest.raises(ConfigError):
        MpiWorld(sim, hosts, 4, transport="teleport")
    with pytest.raises(ConfigError):
        MpiWorld(sim, hosts, 0)


def test_block_placement_across_hosts():
    sim = Simulator()
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, 6)
    placed = [e.host.host_id for e in world.engines]
    assert placed == [0, 0, 0, 1, 1, 1]


def test_policies_factory_gives_each_rank_its_chain():
    sim = Simulator()
    _f, hosts = build_cluster(sim, SYSTEM_A, 2)
    chains = {}

    def factory(rank):
        chains[rank] = PolicyChain([FlowStats()])
        return chains[rank]

    world = MpiWorld(sim, hosts, 4, transport="cord", policies_factory=factory)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=64)
        elif comm.rank == 1:
            yield from comm.recv(0)
        return None

    world.run(program)
    # Rank 0's chain saw its send; rank 2's (idle) chain saw nothing sent.
    sent_by = {
        r: sum(f.ops.get("post_send", 0) for f in chains[r].policies[0].flows.values())
        for r in range(4)
    }
    assert sent_by[0] == 1
    assert sent_by[2] == 0


def test_bypass_world_rejects_policies():
    sim = Simulator()
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    with pytest.raises(ConfigError):
        MpiWorld(sim, hosts, 2, transport="bypass",
                 policies_factory=lambda r: PolicyChain([FlowStats()]))


def test_ensure_ipoib_idempotent():
    sim = Simulator()
    _f, hosts = build_cluster(sim, SYSTEM_L, 1)
    dev1 = hosts[0].kernel.ensure_ipoib()
    dev2 = hosts[0].kernel.ensure_ipoib()
    assert dev1 is dev2


def test_run_suite_grid_shape():
    grid = run_suite(names=("EP", "CG"), transports=("bypass", "cord"),
                     klass="S", ranks=4, iterations=1)
    assert set(grid) == {"EP", "CG"}
    for name in grid:
        assert set(grid[name]) == {"bypass", "cord"}
        for res in grid[name].values():
            assert res.elapsed_ns > 0
            assert res.name == name
