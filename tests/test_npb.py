"""NPB skeleton tests: registry, execution, scaling, transport sensitivity."""

import pytest

from repro.errors import ConfigError
from repro.npb import BENCHMARKS, NpbConfig, get_benchmark, run_npb
from repro.npb.base import CLASS_SCALE, grid_2d, pow2_below
from repro.npb.runner import DEFAULT_SUITE


def test_all_eight_benchmarks_registered():
    assert set(DEFAULT_SUITE) <= set(BENCHMARKS)
    assert len(DEFAULT_SUITE) == 8


def test_unknown_benchmark_rejected():
    with pytest.raises(ConfigError, match="unknown NPB benchmark"):
        get_benchmark("ZZ")


def test_config_validation():
    with pytest.raises(ConfigError):
        NpbConfig(name="IS", klass="Z")
    with pytest.raises(ConfigError):
        NpbConfig(name="IS", ranks=1)


def test_class_scaling_is_monotone():
    assert CLASS_SCALE["A"] < CLASS_SCALE["B"] < CLASS_SCALE["C"] < CLASS_SCALE["D"]


def test_grid_2d_factorization():
    assert grid_2d(16) == (4, 4)
    assert grid_2d(8) == (2, 4)
    assert grid_2d(6) == (2, 3)
    rows, cols = grid_2d(7)
    assert rows * cols == 7


def test_pow2_below():
    assert pow2_below(1) == 1
    assert pow2_below(9) == 8
    assert pow2_below(64) == 64


@pytest.mark.parametrize("name", DEFAULT_SUITE)
def test_every_benchmark_runs_tiny(name):
    cfg = NpbConfig(name=name, klass="S", ranks=4, iterations=2)
    r = run_npb(cfg, transport="bypass", system="L")
    assert r.elapsed_ns > 0
    assert r.iterations == 2
    assert r.per_iter_ns == pytest.approx(r.elapsed_ns / 2)
    if name != "EP":
        assert r.msgs_sent_total > 0


def test_iter_scale_reduces_simulated_work():
    full = NpbConfig(name="CG", klass="S", ranks=4, iter_scale=1.0)
    tiny = NpbConfig(name="CG", klass="S", ranks=4, iter_scale=0.2)
    _prog, it_full = get_benchmark("CG")(full)
    _prog, it_tiny = get_benchmark("CG")(tiny)
    assert it_tiny < it_full


def test_explicit_iterations_override():
    cfg = NpbConfig(name="IS", klass="S", ranks=4, iterations=3, iter_scale=0.01)
    _prog, iters = get_benchmark("IS")(cfg)
    assert iters == 3


def test_is_more_network_sensitive_than_ep():
    """Under a much slower network path, IS suffers and EP does not."""
    ep = NpbConfig(name="EP", klass="S", ranks=4, iterations=1)
    is_ = NpbConfig(name="IS", klass="A", ranks=4, iterations=2)
    ep_ratio = (run_npb(ep, transport="ipoib", system="A").elapsed_ns /
                run_npb(ep, transport="bypass", system="A").elapsed_ns)
    is_ratio = (run_npb(is_, transport="ipoib", system="A").elapsed_ns /
                run_npb(is_, transport="bypass", system="A").elapsed_ns)
    assert is_ratio > ep_ratio
    assert ep_ratio < 1.1


def test_cord_close_to_bypass_everywhere_small():
    for name in ("CG", "LU"):
        cfg = NpbConfig(name=name, klass="S", ranks=4, iterations=3)
        bp = run_npb(cfg, transport="bypass", system="A")
        cd = run_npb(cfg, transport="cord", system="A")
        assert cd.elapsed_ns / bp.elapsed_ns < 1.35


def test_results_deterministic_for_same_seed():
    cfg = NpbConfig(name="MG", klass="S", ranks=4, iterations=2)
    a = run_npb(cfg, transport="bypass", seed=5)
    b = run_npb(cfg, transport="bypass", seed=5)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.bytes_sent_total == b.bytes_sent_total


def test_bigger_class_means_more_bytes():
    small = run_npb(NpbConfig(name="FT", klass="S", ranks=4, iterations=1),
                    system="L")
    big = run_npb(NpbConfig(name="FT", klass="A", ranks=4, iterations=1),
                  system="L")
    assert big.bytes_sent_total > small.bytes_sent_total
