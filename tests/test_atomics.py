"""RDMA atomics: fetch-add and compare-swap semantics and atomicity."""

import pytest

from repro.cluster import build_cluster, build_pair
from repro.core.endpoint import connect, make_endpoint, make_rc_pair
from repro.errors import VerbsError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.verbs.wr import Opcode, SendWR


def run_pair(scenario, kind="bypass"):
    sim = Simulator(seed=2)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kind, kind)
        return (yield from scenario(sim, a, b))

    return sim.run(sim.process(main()))


def _atomic_wr(a, b, opcode, wr_id=1, compare_add=0, swap=0, local_off=0):
    return SendWR(wr_id=wr_id, opcode=opcode, addr=a.buf.addr + local_off,
                  length=8, lkey=a.mr.lkey, remote_addr=b.buf.addr,
                  rkey=b.mr.rkey, compare_add=compare_add, swap=swap)


def test_fetch_add_returns_original_and_updates():
    def scenario(sim, a, b):
        b.buf.write(0, (41).to_bytes(8, "little"))
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                          compare_add=1))
        cqes = yield from a.wait_send()
        original = int.from_bytes(cqes[0].data, "little")
        fetched_local = int.from_bytes(a.buf.read(0, 8), "little")
        remote = int.from_bytes(b.buf.read(0, 8), "little")
        return original, fetched_local, remote, cqes[0].opcode

    original, local, remote, opcode = run_pair(scenario)
    assert original == 41
    assert local == 41  # pre-op value DMA'd into the local buffer
    assert remote == 42
    assert opcode is Opcode.ATOMIC_FETCH_ADD


def test_cmp_swap_success_and_failure():
    def scenario(sim, a, b):
        b.buf.write(0, (7).to_bytes(8, "little"))
        # Matching compare: swap in 99.
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_CMP_SWAP,
                                          wr_id=1, compare_add=7, swap=99))
        cqes = yield from a.wait_send()
        first = int.from_bytes(cqes[0].data, "little")
        # Non-matching compare: no change.
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_CMP_SWAP,
                                          wr_id=2, compare_add=7, swap=1))
        cqes = yield from a.wait_send()
        second = int.from_bytes(cqes[0].data, "little")
        remote = int.from_bytes(b.buf.read(0, 8), "little")
        return first, second, remote

    first, second, remote = run_pair(scenario)
    assert first == 7     # original before successful swap
    assert second == 99   # swap failed, returns current value
    assert remote == 99   # still the first swap's value


def test_atomic_must_be_8_bytes():
    wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_FETCH_ADD, length=4)
    with pytest.raises(VerbsError, match="8 bytes"):
        wr.validate()


def test_fetch_add_is_atomic_across_concurrent_initiators():
    """N clients on different hosts increment one counter; no lost updates."""
    sim = Simulator(seed=3)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 3)
    target_host = hosts[0]
    out = {}

    def main():
        # One shared counter MR on the target host; each client gets its
        # own RC connection to a per-client endpoint there (an RC QP has
        # exactly one peer), all addressing the same registered memory.
        target = yield from make_endpoint(target_host, "bypass")
        clients = []
        for host in hosts[1:]:
            for _ in range(2):
                c = yield from make_endpoint(host, "bypass")
                server_side = yield from make_endpoint(target_host, "bypass")
                yield from connect(c, server_side)
                clients.append(c)

        def adder(client, n):
            for i in range(n):
                yield from client.post_send(SendWR(
                    wr_id=i, opcode=Opcode.ATOMIC_FETCH_ADD,
                    addr=client.buf.addr, length=8, lkey=client.mr.lkey,
                    remote_addr=target.buf.addr, rkey=target.mr.rkey,
                    compare_add=1))
                yield from client.wait_send()

        procs = [sim.process(adder(c, 25)) for c in clients]
        yield sim.all_of(procs)
        out["value"] = int.from_bytes(target.buf.read(0, 8), "little")

    sim.run(sim.process(main()))
    assert out["value"] == 4 * 25  # every increment survived


def test_atomics_work_under_cord():
    def scenario(sim, a, b):
        b.buf.write(0, (5).to_bytes(8, "little"))
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                          compare_add=10))
        cqes = yield from a.wait_send()
        return int.from_bytes(b.buf.read(0, 8), "little"), cqes[0].ok

    remote, ok = run_pair(scenario, kind="cord")
    assert remote == 15 and ok


def test_atomic_bad_rkey_error():
    from repro.verbs.wr import WCStatus

    def scenario(sim, a, b):
        wr = _atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD, compare_add=1)
        wr.rkey = 0xBAD
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes[0].status

    assert run_pair(scenario) is WCStatus.REM_ACCESS_ERR
