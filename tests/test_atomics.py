"""RDMA atomics: fetch-add and compare-swap semantics and atomicity."""

import pytest

from repro.cluster import build_cluster, build_pair
from repro.core.endpoint import connect, make_endpoint, make_rc_pair
from repro.errors import VerbsError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.verbs.wr import Opcode, Psn, SendWR, WireMessage


def run_pair(scenario, kind="bypass"):
    sim = Simulator(seed=2)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kind, kind)
        return (yield from scenario(sim, a, b))

    return sim.run(sim.process(main()))


def _atomic_wr(a, b, opcode, wr_id=1, compare_add=0, swap=0, local_off=0):
    return SendWR(wr_id=wr_id, opcode=opcode, addr=a.buf.addr + local_off,
                  length=8, lkey=a.mr.lkey, remote_addr=b.buf.addr,
                  rkey=b.mr.rkey, compare_add=compare_add, swap=swap)


def test_fetch_add_returns_original_and_updates():
    def scenario(sim, a, b):
        b.buf.write(0, (41).to_bytes(8, "little"))
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                          compare_add=1))
        cqes = yield from a.wait_send()
        original = int.from_bytes(cqes[0].data, "little")
        fetched_local = int.from_bytes(a.buf.read(0, 8), "little")
        remote = int.from_bytes(b.buf.read(0, 8), "little")
        return original, fetched_local, remote, cqes[0].opcode

    original, local, remote, opcode = run_pair(scenario)
    assert original == 41
    assert local == 41  # pre-op value DMA'd into the local buffer
    assert remote == 42
    assert opcode is Opcode.ATOMIC_FETCH_ADD


def test_cmp_swap_success_and_failure():
    def scenario(sim, a, b):
        b.buf.write(0, (7).to_bytes(8, "little"))
        # Matching compare: swap in 99.
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_CMP_SWAP,
                                          wr_id=1, compare_add=7, swap=99))
        cqes = yield from a.wait_send()
        first = int.from_bytes(cqes[0].data, "little")
        # Non-matching compare: no change.
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_CMP_SWAP,
                                          wr_id=2, compare_add=7, swap=1))
        cqes = yield from a.wait_send()
        second = int.from_bytes(cqes[0].data, "little")
        remote = int.from_bytes(b.buf.read(0, 8), "little")
        return first, second, remote

    first, second, remote = run_pair(scenario)
    assert first == 7     # original before successful swap
    assert second == 99   # swap failed, returns current value
    assert remote == 99   # still the first swap's value


def test_atomic_must_be_8_bytes():
    wr = SendWR(wr_id=1, opcode=Opcode.ATOMIC_FETCH_ADD, length=4)
    with pytest.raises(VerbsError, match="8 bytes"):
        wr.validate()


def test_fetch_add_is_atomic_across_concurrent_initiators():
    """N clients on different hosts increment one counter; no lost updates."""
    sim = Simulator(seed=3)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 3)
    target_host = hosts[0]
    out = {}

    def main():
        # One shared counter MR on the target host; each client gets its
        # own RC connection to a per-client endpoint there (an RC QP has
        # exactly one peer), all addressing the same registered memory.
        target = yield from make_endpoint(target_host, "bypass")
        clients = []
        for host in hosts[1:]:
            for _ in range(2):
                c = yield from make_endpoint(host, "bypass")
                server_side = yield from make_endpoint(target_host, "bypass")
                yield from connect(c, server_side)
                clients.append(c)

        def adder(client, n):
            for i in range(n):
                yield from client.post_send(SendWR(
                    wr_id=i, opcode=Opcode.ATOMIC_FETCH_ADD,
                    addr=client.buf.addr, length=8, lkey=client.mr.lkey,
                    remote_addr=target.buf.addr, rkey=target.mr.rkey,
                    compare_add=1))
                yield from client.wait_send()

        procs = [sim.process(adder(c, 25)) for c in clients]
        yield sim.all_of(procs)
        out["value"] = int.from_bytes(target.buf.read(0, 8), "little")

    sim.run(sim.process(main()))
    assert out["value"] == 4 * 25  # every increment survived


def test_atomics_work_under_cord():
    def scenario(sim, a, b):
        b.buf.write(0, (5).to_bytes(8, "little"))
        yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                          compare_add=10))
        cqes = yield from a.wait_send()
        return int.from_bytes(b.buf.read(0, 8), "little"), cqes[0].ok

    remote, ok = run_pair(scenario, kind="cord")
    assert remote == 15 and ok


def test_atomic_bad_rkey_error():
    from repro.verbs.wr import WCStatus

    def scenario(sim, a, b):
        wr = _atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD, compare_add=1)
        wr.rkey = 0xBAD
        yield from a.post_send(wr)
        cqes = yield from a.wait_send()
        return cqes[0].status

    assert run_pair(scenario) is WCStatus.REM_ACCESS_ERR


# -- replay cache bounds (eviction semantics) -------------------------------------


def test_replay_cache_keeps_the_last_64_psns():
    """The responder's atomic replay cache is bounded at 64 entries,
    evicting oldest-first (insertion order == PSN acceptance order)."""
    def scenario(sim, a, b):
        b.buf.write(0, (0).to_bytes(8, "little"))
        first_psn = a.qp.sq_psn
        for i in range(70):
            yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                              wr_id=i + 1, compare_add=1))
            yield from a.wait_send()
        return first_psn, b.qp

    first_psn, bqp = run_pair(scenario)
    assert len(bqp.atomic_cache) == 64
    # The first six PSNs were evicted; the last 64 are replayable.
    assert first_psn not in bqp.atomic_cache
    assert Psn.add(first_psn, 5) not in bqp.atomic_cache
    assert Psn.add(first_psn, 6) in bqp.atomic_cache
    assert bqp.atomic_cache[Psn.add(first_psn, 6)] == 6  # pre-op value


def test_duplicate_of_evicted_atomic_psn_gets_no_reply():
    """A duplicate atomic whose PSN aged out of the replay cache is
    *silenced*, never re-executed: the initiator would retry into
    RETRY_EXC_ERR, but the remote value stays exactly-once correct
    (IBTA C9-150: the responder only replays what its resources hold).
    A duplicate still in the cache gets the original value back."""
    sim = Simulator(seed=4)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    out = {}

    def dup_atomic(a, b, psn):
        return WireMessage(
            kind="atomic", src_host=host_a.nic.host_id,
            dst_host=host_b.nic.host_id, src_qpn=a.qp.qpn,
            dst_qpn=b.qp.qpn, transport="RC", psn=psn, length=8,
            remote_addr=b.buf.addr, rkey=b.mr.rkey, token=(a.qp.qpn, psn),
            atomic=(Opcode.ATOMIC_FETCH_ADD, 1, 0), header_bytes=30,
        )

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        b.buf.write(0, (0).to_bytes(8, "little"))
        first_psn = a.qp.sq_psn
        for i in range(70):
            yield from a.post_send(_atomic_wr(a, b, Opcode.ATOMIC_FETCH_ADD,
                                              wr_id=i + 1, compare_add=1))
            yield from a.wait_send()
        send_cqes = a.send_cq.total_cqes

        # Duplicate of an *evicted* PSN: dead silence, no re-execution.
        host_b.nic.deliver(dup_atomic(a, b, first_psn))
        yield sim.timeout(200_000)
        out["evicted_cqes"] = a.send_cq.total_cqes - send_cqes
        out["value_after_evicted_dup"] = int.from_bytes(b.buf.read(0, 8),
                                                        "little")

        # Duplicate of a *cached* PSN: replied from the cache with the
        # original pre-op value, again without re-executing.
        cached_psn = Psn.add(first_psn, 69)
        host_b.nic.deliver(dup_atomic(a, b, cached_psn))
        yield sim.timeout(200_000)
        out["value_after_cached_dup"] = int.from_bytes(b.buf.read(0, 8),
                                                       "little")
        out["cached_value"] = b.qp.atomic_cache[cached_psn]

    sim.run(sim.process(main()))
    assert out["evicted_cqes"] == 0          # nothing came back
    assert out["value_after_evicted_dup"] == 70   # not re-executed
    assert out["value_after_cached_dup"] == 70    # replay, not re-execution
    assert out["cached_value"] == 69              # original pre-op value
