"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import Simulator
from repro.units import us


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)
        return sim.now

    p = sim.process(proc())
    assert sim.run(p) == 100.0
    assert sim.now == 100.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_time_stops_between_events():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(10):
            yield sim.timeout(10.0)
            seen.append(sim.now)

    sim.process(proc())
    sim.run(until=35.0)
    assert seen == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.process(iter_timeout(sim, 50.0))
    sim.run(until=50.0)
    with pytest.raises(SimulationError):
        sim.run(until=10.0)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "payload"

    def parent():
        value = yield sim.process(child())
        return value

    assert sim.run(sim.process(parent())) == "payload"


def test_events_same_time_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(10.0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield ev
        return value

    def firer():
        yield sim.timeout(3.0)
        ev.succeed(42)

    p = sim.process(waiter())
    sim.process(firer())
    assert sim.run(p) == 42


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught:{exc}"

    def firer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    p = sim.process(waiter())
    sim.process(firer())
    assert sim.run(p) == "caught:boom"


def test_unhandled_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_joined_process_exception_delivered_to_parent():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    def parent():
        try:
            yield sim.process(bad())
        except RuntimeError:
            return "handled"

    assert sim.run(sim.process(parent())) == "handled"


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


@pytest.mark.parametrize("fastpath", [True, False])
def test_scalar_yield_is_a_delay(fastpath):
    sim = Simulator(fastpath=fastpath)

    def proc():
        yield 100.0
        yield 50  # ints work too
        return sim.now

    assert sim.run(sim.process(proc())) == 150.0


@pytest.mark.parametrize("fastpath", [True, False])
def test_scalar_yield_zero_delay(fastpath):
    sim = Simulator(fastpath=fastpath)
    order = []

    def a():
        yield 0.0
        order.append("a")

    def b():
        yield 0.0
        order.append("b")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["a", "b"]


@pytest.mark.parametrize("fastpath", [True, False])
def test_negative_scalar_yield_is_an_error(fastpath):
    sim = Simulator(fastpath=fastpath)

    def bad():
        yield -1.0

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_bool_yield_is_not_a_delay():
    # bool is an int subclass; yielding one is almost certainly a bug, so it
    # takes the non-event error path rather than sleeping 0/1 ns.
    sim = Simulator()

    def bad():
        yield True

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


@pytest.mark.parametrize("fastpath", [True, False])
def test_scalar_and_timeout_interleave_identically(fastpath):
    sim = Simulator(fastpath=fastpath)
    order = []

    def scalar():
        yield 10.0
        order.append(("scalar", sim.now))

    def timeout():
        yield sim.timeout(10.0)
        order.append(("timeout", sim.now))

    sim.process(scalar())
    sim.process(timeout())
    sim.run()
    # Same timestamp: FIFO by spawn order regardless of yield style.
    assert order == [("scalar", 10.0), ("timeout", 10.0)]


@pytest.mark.parametrize("fastpath", [True, False])
def test_interrupt_during_scalar_sleep(fastpath):
    sim = Simulator(fastpath=fastpath)

    def sleeper():
        try:
            yield us(100)
            return "slept"
        except ProcessInterrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def poker(victim):
        yield us(1)
        victim.interrupt("wake up")

    victim = sim.process(sleeper())
    sim.process(poker(victim))
    assert sim.run(victim) == ("interrupted", "wake up", us(1))
    # The cancelled sleep record stays queued (like a detached Timeout) but
    # drains without resuming the terminated process.
    sim.run()
    assert sim.now == us(100)


def test_call_later_runs_callback():
    sim = Simulator()
    seen = []
    sim.call_later(25.0, seen.append, "hello")
    sim.run()
    assert sim.now == 25.0
    assert seen == ["hello"]


def test_call_later_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda _: None)


def test_wait_any_returns_first_event():
    sim = Simulator()
    slow = sim.timeout(100.0, value="slow")
    fast = sim.timeout(10.0, value="fast")
    first = sim.run(sim.wait_any([slow, fast]))
    assert first is fast
    assert first.value == "fast"


def test_wait_any_with_already_processed_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()  # process `done`
    first = sim.run(sim.wait_any([done, sim.timeout(50.0)]))
    assert first is done
    assert sim.now == 0.0


def test_wait_any_empty_succeeds_immediately():
    sim = Simulator()
    assert sim.run(sim.wait_any([])) is None


def test_interrupt_wakes_process_early():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(us(100))
            return "slept"
        except ProcessInterrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def interrupter(victim):
        yield sim.timeout(10.0)
        victim.interrupt("wakeup")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    assert sim.run(victim) == ("interrupted", "wakeup", 10.0)


def test_interrupt_self_rejected():
    sim = Simulator()

    def proc():
        me = sim.active_process
        me.interrupt("nope")
        yield sim.timeout(1.0)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_any_of_returns_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(10.0, value="fast")
        t2 = sim.timeout(20.0, value="slow")
        result = yield t1 | t2
        assert t1 in result
        assert t2 not in result
        return result[t1], sim.now

    assert sim.run(sim.process(proc())) == ("fast", 10.0)


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(10.0, value="a")
        t2 = sim.timeout(20.0, value="b")
        result = yield t1 & t2
        return sorted(result.todict().values()), sim.now

    assert sim.run(sim.process(proc())) == (["a", "b"], 20.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        result = yield sim.all_of([])
        return len(result)

    assert sim.run(sim.process(proc())) == 0


def test_condition_fails_if_member_fails():
    sim = Simulator()
    ev = sim.event()

    def firer():
        yield sim.timeout(1.0)
        ev.fail(KeyError("bad"))

    def proc():
        try:
            yield sim.all_of([ev, sim.timeout(50.0)])
        except KeyError:
            return "failed"

    sim.process(firer())
    assert sim.run(sim.process(proc())) == "failed"


def test_rng_streams_independent_and_deterministic():
    sim1 = Simulator(seed=7)
    sim2 = Simulator(seed=7)
    a1 = sim1.rng.stream("a").random(5).tolist()
    # Interleave another stream in sim2 before drawing from "a".
    sim2.rng.stream("b").random(100)
    a2 = sim2.rng.stream("a").random(5).tolist()
    assert a1 == a2


def test_rng_different_seed_differs():
    assert (
        Simulator(seed=1).rng.stream("x").random(3).tolist()
        != Simulator(seed=2).rng.stream("x").random(3).tolist()
    )


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(30.0)
    sim.timeout(10.0)
    assert sim.peek() == 10.0
    sim.run()
    assert sim.peek() == float("inf")
