"""Deliberate determinism violations — one per SIM lint rule.

This module is *never imported*: it exists so ``tests/test_sanitize_lint.py``
can assert that each rule of :mod:`repro.sanitize.lint` reports exactly the
violation seeded here (and nothing else).  The ``fixtures`` directory is
excluded from the repo-wide lint (see DEFAULT_EXCLUDES) and from ruff.

The tests lint this file under a virtual ``src/repro/sim/...`` path so the
path-scoped rules (SIM002/SIM004/SIM005/SIM006) apply.
"""

import random  # SIM001: global RNG module


def read_wallclock():
    import time

    return time.perf_counter()  # SIM002: wall-clock read in simulated code


def drain_in_set_order(events, schedule):
    chosen = set(events)
    for ev in chosen:  # SIM003: hash-order iteration feeds scheduling
        schedule(ev)


def completed_exactly_at(sim, deadline_ns):
    return sim.now == deadline_ns  # SIM004: float == on simulated time


def count_op(tele):
    tele.counter("dataplane.ops").inc()  # SIM005: no enabled-guard branch


class HotPathRecord:  # SIM006: per-event class without __slots__
    def __init__(self, payload):
        self.payload = payload
