"""Deliberate protocol-discipline violations — one per PROTO00x lint rule.

Never imported; ``tests/test_sanitize_lint.py`` lints this file under a
virtual ``src/repro/hw/...`` path (inside the rules' scope, outside the
exempt ``repro/verbs/wr.py`` and ``repro/verify/`` locations) and asserts
each PROTO001–PROTO004 rule reports exactly the violation seeded here.
"""


def error_out(qp, QPState):
    qp._state = QPState.ERROR  # PROTO001: state write outside modify()


def next_wire_psn(qp):
    return qp.sq_psn + 1  # PROTO002: raw arithmetic, not Psn.next/add


def retire(self, qp, psn):
    # PROTO003: takes a WQE out of the outstanding window but never
    # posts (or delegates) a completion for it.
    wr = qp.outstanding.pop(psn)
    qp.sq_outstanding -= 1
    return wr


def notify_completion(self, cq, cqe):
    self.sim._monitor.on_cqe(cq, cqe)  # PROTO004: no `is not None` guard
