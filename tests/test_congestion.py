"""End-to-end congestion control: ECN marking, CNPs, DCQCN rate limiting.

The tentpole regression suite for the bounded-buffer congestion-collapse
fix: with ``--congestion dcqcn`` a 16→1 incast into a bounded switch
buffer must recover ≥80% of the unbounded aggregate goodput and cut tail
drops ≥10× versus CC-off.  Also covers the satellite fixes that ride
along: the clamped ACK-timeout backoff, duplicate-retransmit
cancellation, and the loss-site drop accounting split.
"""

import pytest

from repro.cluster import build_cluster
from repro.errors import ConfigError, HardwareError
from repro.faults import FaultPlan
from repro.hw.congestion import DcqcnLimiter
from repro.hw.profiles import SYSTEM_L, CcProfile, get_profile
from repro.perftest.incast import (
    IncastConfig,
    build_incast,
    run_incast,
    run_incast_attributed,
    _drive,
)
from repro.sim import Simulator
from repro.telemetry import attribute_spans, build_spans
from repro.verbs.qp import QueuePair, Transport
from repro.verbs.wr import WireMessage

LINE_BW = get_profile("L").nic.link_bw


def _cfg(**kwargs):
    base = dict(senders=16, size=64 * 1024, msgs_per_sender=16, window=16,
                buffer_bytes=1024 * 1024)
    base.update(kwargs)
    return IncastConfig(**base)


# -- the tentpole: DCQCN recovers the bounded-buffer incast -----------------------


def test_dcqcn_recovers_bounded_incast_goodput_and_drops():
    """The acceptance gate: ≥80% of unbounded goodput, ≥10× fewer drops."""
    ref = run_incast(_cfg(buffer_bytes=None))
    off = run_incast(_cfg(congestion="off"))
    cc = run_incast(_cfg(congestion="dcqcn"))
    assert ref.messages_dropped == 0
    assert off.messages_dropped > 0
    assert cc.aggregate_gbit >= 0.8 * ref.aggregate_gbit
    assert off.messages_dropped >= 10 * cc.messages_dropped
    # Every flow completed: collapse no longer defeats the retry budget.
    assert cc.failed_msgs == 0
    # The loop actually ran: marks at the switch, CNPs from the receiver,
    # and at least one sender cut below line rate.
    assert cc.ecn_marked > 0
    assert cc.cnps > 0
    assert 0.0 < cc.min_rate < LINE_BW


def test_cc_off_runs_no_congestion_machinery():
    r = run_incast(_cfg(congestion="off"))
    assert r.ecn_marked == 0
    assert r.cnps == 0
    assert r.min_rate == 0.0


def test_dcqcn_on_lossless_fabric_stays_out_of_the_way():
    """Unbounded buffer: the queue still marks once past kmin, but no
    drops, no timeouts, and every flow finishes."""
    r = run_incast(_cfg(buffer_bytes=None, congestion="dcqcn",
                        msgs_per_sender=6))
    assert r.messages_dropped == 0
    assert r.ack_timeouts == 0
    assert r.failed_msgs == 0
    assert all(g > 0 for g in r.flow_goodputs_gbit)


# -- DCQCN limiter state machine --------------------------------------------------


def _limiter(sim, **overrides) -> DcqcnLimiter:
    base = dict(initial_rate_fraction=1.0)
    base.update(overrides)
    return DcqcnLimiter(sim, CcProfile(**base), LINE_BW)


def test_first_cnp_halves_the_rate():
    """alpha initializes to 1 (DCQCN paper): the first cut is rate/2."""
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    assert lim.rate == LINE_BW
    lim.on_cnp(100.0)
    assert lim.rate == pytest.approx(0.5 * LINE_BW)
    assert lim.rate_cuts == 1 and lim.cnps == 1
    assert lim.target == LINE_BW


def test_cnp_burst_is_one_rate_cut():
    """Cuts are throttled to one per cut_interval; alpha still rises."""
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    lim.on_cnp(100.0)
    rate = lim.rate
    lim.on_cnp(100.0 + lim.cc.cut_interval_ns / 2)
    assert lim.rate == rate and lim.rate_cuts == 1
    # alpha stays pinned at the EWMA fixed point (1.0) with no decay
    # timer having fired between the notifications.
    assert lim.cnps == 2 and lim.alpha == 1.0
    lim.on_cnp(100.0 + lim.cc.cut_interval_ns)
    assert lim.rate < rate and lim.rate_cuts == 2


def test_timeout_cut_floors_the_rate():
    """Loss (ACK-timeout retransmission) is an RTO-style floor cut."""
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    lim.on_timeout(100.0)
    assert lim.rate == lim.min_rate == lim.target
    assert lim.alpha == 1.0
    assert lim.timeout_cuts == 1
    # Throttled together with CNP cuts: the synchronized timers of one
    # loss burst count as a single congestion event.
    lim.on_cnp(110.0)
    assert lim.rate == lim.min_rate and lim.rate_cuts == 1


def test_rate_recovers_to_line_and_goes_quiescent():
    """After a cut the increase timers rebuild to line rate exactly, then
    disarm — an idle recovered limiter must let the simulator drain."""
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    lim.on_cnp(0.0)
    assert lim.rate < LINE_BW
    sim.run()  # drain the alpha + rate-increase timers
    assert lim.rate == LINE_BW and lim.target == LINE_BW
    assert not lim._inc_armed and not lim._alpha_armed
    assert lim.lowest_rate == pytest.approx(0.5 * LINE_BW)


def test_conservative_start_ramps_to_line_rate():
    """The default profile starts below line rate; an uncongested flow
    must still climb to line rate on the increase timers alone."""
    sim = Simulator(seed=1)
    lim = DcqcnLimiter(sim, CcProfile(), LINE_BW)
    assert lim.rate == pytest.approx(
        CcProfile().initial_rate_fraction * LINE_BW)
    sim.run()
    assert lim.rate == LINE_BW and not lim._inc_armed


def test_pace_token_bucket_math():
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    # Recovered limiter short-circuits: line rate, timer off, no delay.
    assert lim.pace(0.0, 10 * lim.cc.burst_bytes) == 0.0
    lim.on_cnp(0.0)
    # Bucket holds burst_bytes; the excess is paid at the cut rate.
    nbytes = lim.cc.burst_bytes + 1000
    delay = lim.pace(0.0, nbytes)
    assert delay == pytest.approx(1000 / lim.rate)
    # The caller waits out the delay; the bucket is then empty, so the
    # next message pays its full serialization time at the cut rate.
    assert lim.pace(delay, 500) == pytest.approx(500 / lim.rate)
    assert lim.paced_ns > 0


def test_state_clamps_ages_for_cycle_detection():
    """Fingerprint ages must saturate at their behavioral horizon, or
    fast-forward could never see a repeating cycle."""
    sim = Simulator(seed=1)
    lim = _limiter(sim)
    lim.on_cnp(0.0)

    def advance():
        yield 10 * lim.cc.cut_interval_ns

    sim.run(sim.process(advance()))
    cut_age = lim.state()[4]
    assert cut_age == lim.cc.cut_interval_ns


# -- ECN marking at the switch output queue ---------------------------------------


def _marking_fabric():
    sim = Simulator(seed=3)
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 2, rx_contention=True,
                                   congestion="dcqcn")
    return sim, fabric


def _wire_msg(kind="write"):
    return WireMessage(kind=kind, src_host=1, dst_host=0, src_qpn=1,
                       dst_qpn=2, transport="RC", psn=0, length=4096)


def test_no_marking_below_kmin():
    _sim, fabric = _marking_fabric()
    port = fabric.rx_port(0)
    port.queued_bytes = fabric.cc.kmin_bytes - 1
    for _ in range(50):
        msg = _wire_msg()
        fabric._maybe_mark_ecn(port, msg.wire_bytes, msg)
        assert not msg.ecn
    assert port.messages_marked == 0


def test_always_marks_at_kmax():
    _sim, fabric = _marking_fabric()
    port = fabric.rx_port(0)
    port.queued_bytes = fabric.cc.kmax_bytes
    for _ in range(20):
        msg = _wire_msg()
        fabric._maybe_mark_ecn(port, msg.wire_bytes, msg)
        assert msg.ecn
    assert port.messages_marked == 20


def test_wred_marks_probabilistically_between_thresholds():
    _sim, fabric = _marking_fabric()
    port = fabric.rx_port(0)
    cc = fabric.cc
    port.queued_bytes = (cc.kmin_bytes + cc.kmax_bytes) // 2
    marked = 0
    for _ in range(400):
        msg = _wire_msg()
        fabric._maybe_mark_ecn(port, msg.wire_bytes, msg)
        marked += msg.ecn
    # Expected rate pmax/2; just require "some but not all".
    assert 0 < marked < 400


def test_only_request_kinds_are_marked():
    """ACKs/CNPs/read responses never carry a mark (no responder to CNP)."""
    _sim, fabric = _marking_fabric()
    port = fabric.rx_port(0)
    port.queued_bytes = fabric.cc.kmax_bytes
    for kind in ("ack", "nak_rnr", "cnp", "read_resp"):
        msg = _wire_msg(kind=kind)
        fabric._maybe_mark_ecn(port, msg.wire_bytes, msg)
        assert not msg.ecn, kind
    msg = _wire_msg(kind="read_req")
    fabric._maybe_mark_ecn(port, msg.wire_bytes, msg)
    assert msg.ecn


# -- opt-in wiring + validation ---------------------------------------------------


def test_congestion_requires_rx_contention():
    sim = Simulator(seed=1)
    with pytest.raises(HardwareError):
        build_cluster(sim, SYSTEM_L, 4, rx_contention=False,
                      congestion="dcqcn")


def test_builder_rejects_unknown_congestion_spec():
    sim = Simulator(seed=1)
    with pytest.raises(ConfigError):
        build_cluster(sim, SYSTEM_L, 4, congestion="bogus")


def test_incast_config_validates_congestion():
    with pytest.raises(ConfigError):
        IncastConfig(congestion="bogus")
    with pytest.raises(ConfigError):
        IncastConfig(congestion="dcqcn", rx_contention=False)


def test_auto_congestion_is_off_on_shipped_profiles():
    """CC is strictly opt-in: ``"auto"`` follows ``system.cc`` which is
    ``None`` on every shipped profile, so goldens stay bit-identical."""
    sim = Simulator(seed=1)
    fabric, hosts = build_cluster(sim, SYSTEM_L, 4)
    assert fabric.cc is None
    assert all(h.nic.cc is None for h in hosts)


# -- telemetry + attribution ------------------------------------------------------


def test_cc_telemetry_and_cc_pace_attribution():
    cfg = _cfg(senders=8, msgs_per_sender=8, congestion="dcqcn")
    r, sim = run_incast_attributed(cfg)
    assert r.ecn_marked > 0 and r.cnps > 0
    snap = sim.telemetry.snapshot()
    # Marks land at the receiver's switch port scope; CNPs at its NIC.
    assert snap["host0"]["counters"]["fabric.ecn.marked"]["count"] > 0
    assert snap["host0"]["counters"]["nic.cc.cnps"]["by_key"]["sent"] > 0
    # At least one sender NIC saw a rate change and received CNPs.
    sender_scopes = [f"host{i}" for i in range(1, cfg.senders + 1)]
    assert any(
        "nic.cc.rate" in snap.get(s, {}).get("gauges", {})
        for s in sender_scopes
    )
    # Pacing shows up as its own attribution stage on post_send spans.
    blames = attribute_spans(build_spans(sim.trace, op="post_send"))
    pace_ns = sum(s.duration_ns for b in blames for s in b.stages
                  if s.name.split("#")[0] == "cc_pace")
    assert pace_ns > 0


def test_cc_off_has_no_cc_pace_stage():
    cfg = _cfg(senders=4, msgs_per_sender=6, congestion="off")
    _r, sim = run_incast_attributed(cfg)
    blames = attribute_spans(build_spans(sim.trace, op="post_send"))
    assert blames
    assert not any(s.name.split("#")[0] == "cc_pace"
                   for b in blames for s in b.stages)


# -- satellite: clamped ACK-timeout backoff ---------------------------------------


def test_ack_timeout_backoff_is_clamped_integer_ns(monkeypatch):
    """Retry 7 must wait the cap, not ~128× the base timeout."""
    sim = Simulator(seed=1)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 2)
    nic = hosts[0].nic
    base = int(nic.profile.ack_timeout_ns)
    cap = int(nic.profile.max_ack_timeout_ns)
    qp = QueuePair(None, Transport.RC, None, None, qpn=1, sq_depth=16,
                   rq_depth=16, max_inline=0)
    qp.outstanding[5] = object()

    delays = []
    monkeypatch.setattr(
        Simulator, "call_later",
        lambda self, d, fn, arg=None: delays.append(d))
    for retries in range(8):
        nic._arm_ack_timer(qp, 5, retries)

    assert delays == [min(base << r, cap) for r in range(8)]
    assert all(isinstance(d, int) for d in delays)
    assert delays[7] == cap < base << 7


# -- satellite: duplicate-retransmit cancellation ---------------------------------


def test_retransmits_match_actual_losses():
    """An ACK covering a PSN cancels its pending retransmit: in a clean
    bounded-buffer run every retransmission maps to one real drop."""
    r = run_incast(_cfg(senders=2, msgs_per_sender=8,
                        buffer_bytes=128 * 1024))
    assert r.messages_dropped > 0
    assert r.retransmits == r.messages_dropped
    assert r.failed_msgs == 0


# -- satellite: loss-site drop accounting -----------------------------------------


def test_drop_split_partitions_total_under_faults_and_contention():
    """Wire losses and switch tail drops in one run: every dropped message
    lands in exactly one site counter, and transmit attempts conserve
    (sent == carried + dropped)."""
    cfg = IncastConfig(senders=4, msgs_per_sender=6,
                       buffer_bytes=256 * 1024)
    sim = Simulator(seed=cfg.seed)
    fabric, hosts, pairs = build_incast(sim, cfg)
    fabric.inject_faults(FaultPlan(loss=0.05, drop_control=False))

    sent = [0]
    orig = fabric.transmit

    def counting(src, dst, nbytes, payload):
        sent[0] += 1
        return orig(src, dst, nbytes, payload)

    fabric.transmit = counting
    r = _drive(sim, cfg, fabric, hosts, pairs)
    assert fabric.drops_wire > 0 and fabric.drops_rxq > 0
    assert (fabric.drops_hairpin + fabric.drops_wire + fabric.drops_rxq
            == fabric.messages_dropped == r.messages_dropped)
    assert sent[0] == fabric.messages_carried + fabric.messages_dropped
    assert r.failed_msgs == 0


def test_pure_contention_drops_are_all_rxq():
    cfg = IncastConfig(senders=4, msgs_per_sender=8,
                       buffer_bytes=192 * 1024)
    sim = Simulator(seed=cfg.seed)
    fabric, hosts, pairs = build_incast(sim, cfg)
    _drive(sim, cfg, fabric, hosts, pairs)
    assert fabric.messages_dropped > 0
    assert fabric.drops_rxq == fabric.messages_dropped
    assert fabric.drops_hairpin == 0 and fabric.drops_wire == 0


def test_hairpin_drops_have_their_own_counter():
    sim = Simulator(seed=1)
    fabric, _hosts = build_cluster(sim, SYSTEM_L, 1)
    fabric.inject_faults(FaultPlan(flaps=((0.0, 1e9),)))

    def proc():
        yield from fabric.transmit(0, 0, 256, "hairpin-payload")

    sim.run(sim.process(proc()))
    sim.run()
    assert fabric.drops_hairpin == fabric.messages_dropped == 1
    assert fabric.drops_wire == 0 and fabric.drops_rxq == 0


# -- satellite: golden determinism with CC on -------------------------------------


@pytest.mark.parametrize("seed", [7, 21])
def test_cc_on_same_seed_is_bit_identical(seed):
    cfg = _cfg(senders=4, msgs_per_sender=8, congestion="dcqcn", seed=seed)
    a = run_incast(cfg)
    b = run_incast(cfg)
    assert repr(a.duration_ns) == repr(b.duration_ns)
    assert tuple(map(repr, a.flow_goodputs_gbit)) == \
           tuple(map(repr, b.flow_goodputs_gbit))
    assert a.rx_queue_peak_bytes == b.rx_queue_peak_bytes
    assert (a.ecn_marked, a.cnps, a.messages_dropped, repr(a.min_rate)) == \
           (b.ecn_marked, b.cnps, b.messages_dropped, repr(b.min_rate))


def _cc_point(seed: int) -> str:
    r = run_incast(IncastConfig(senders=4, size=64 * 1024, msgs_per_sender=6,
                                window=8, buffer_bytes=512 * 1024,
                                congestion="dcqcn", seed=seed))
    return repr((r.duration_ns, r.flow_goodputs_gbit, r.ecn_marked, r.cnps))


def test_cc_on_parallel_sweep_worker_invariance():
    from repro.bench_support import parallel_sweep

    seeds = [7, 21]
    serial = parallel_sweep(_cc_point, seeds, workers=1)
    fanned = parallel_sweep(_cc_point, seeds, workers=2)
    assert serial == fanned
