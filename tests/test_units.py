"""Unit tests for the units module (conversion sanity)."""

import pytest

from repro import units


def test_time_helpers_compose():
    assert units.us(1) == 1000 * units.ns(1)
    assert units.ms(1) == 1000 * units.us(1)
    assert units.seconds(1) == 1000 * units.ms(1)


def test_round_trips():
    assert units.to_us(units.us(3.5)) == pytest.approx(3.5)
    assert units.to_ms(units.ms(2)) == pytest.approx(2)
    assert units.to_seconds(units.seconds(0.25)) == pytest.approx(0.25)


def test_gbit_per_s_known_point():
    # 100 Gbit/s is 12.5 bytes/ns.
    assert units.gbit_per_s(100) == pytest.approx(12.5)
    assert units.to_gbit_per_s(12.5) == pytest.approx(100)


def test_gib_per_s():
    assert units.gib_per_s(1.0) == pytest.approx(1.073741824)


def test_transfer_time():
    # 1 MiB at 100 Gbit/s.
    t = units.transfer_time(units.mib(1), units.gbit_per_s(100))
    assert t == pytest.approx(1048576 / 12.5)
    assert units.transfer_time(0, 1.0) == 0.0
    with pytest.raises(ValueError):
        units.transfer_time(10, 0)


def test_msgs_per_sec():
    assert units.msgs_per_sec(1000.0) == pytest.approx(1e6)
    with pytest.raises(ValueError):
        units.msgs_per_sec(0)


def test_pretty_size():
    assert units.pretty_size(2) == "2 B"
    assert units.pretty_size(4096) == "4 KiB"
    assert units.pretty_size(1 << 20) == "1 MiB"
    assert units.pretty_size(3 << 30) == "3 GiB"
    assert units.pretty_size(1500) == "1500 B"  # not a clean KiB multiple


def test_pretty_time():
    assert units.pretty_time(50.0) == "50.0 ns"
    assert units.pretty_time(units.us(3)) == "3.000 us"
    assert units.pretty_time(units.ms(2.5)) == "2.500 ms"
    assert units.pretty_time(units.seconds(1.5)) == "1.500 s"


def test_size_constants():
    assert units.kib(2) == 2048
    assert units.mib(1) == 1 << 20
