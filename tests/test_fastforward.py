"""Steady-state fast-forward (repro.sim.fastforward).

The contract under test: with the probe armed, every perftest loop's
result is **bit-identical** to the fully simulated run — including the
sample vectors — while large stretches of the steady state are skipped;
and the probe refuses to arm (skipping nothing) whenever exactness cannot
be proven: fault plans, trace export, RNG draws in the loop (system A's
syscall jitter), or no exact period at all.
"""

import math

import pytest

from repro.faults import FaultPlan
from repro.perftest.lat import send_lat
from repro.perftest.techniques import Techniques
from repro.perftest.runner import (
    PerftestConfig,
    reset_run_stats,
    run_bw,
    run_lat,
    run_stats_snapshot,
    _build,
)
from repro.sim import FastForward, Simulator
from repro.sim.trace import Trace


def _result_fields(result) -> tuple:
    return tuple(sorted(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in vars(result).items()
    ))


def _pair(cfg, size, kind):
    """Run one config with fast-forward off and on; return both results
    and the on-run's stats."""
    run = run_lat if kind == "lat" else run_bw
    base = run(cfg.with_(fastforward=False), size)
    reset_run_stats()
    ff = run(cfg.with_(fastforward=True), size)
    return base, ff, run_stats_snapshot()


LAT_CFG = dict(iters=150, warmup=20)
BW_CFG = dict(iters=900, warmup=200, window=64)


@pytest.mark.parametrize("op,kind", [
    ("send", "lat"), ("read", "lat"), ("write", "lat"),
    ("send", "bw"), ("read", "bw"), ("write", "bw"),
])
@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_bit_identical_and_skipping_system_l(op, kind, dataplane):
    """System L (no jitter, no turbo): every loop arms, skips a large part
    of the steady state, and reproduces the full run bit-for-bit."""
    extra = LAT_CFG if kind == "lat" else BW_CFG
    cfg = PerftestConfig(system="L", op=op, client=dataplane,
                         server=dataplane, **extra)
    base, ff, stats = _pair(cfg, 4096, kind)
    assert _result_fields(base) == _result_fields(ff)
    assert stats["ff_jumps"] >= 1
    assert stats["ff_cycles_skipped"] > 0
    # The skip must be substantial, not symbolic.  send_bw's super-period
    # (the tx burst spacing) is ~30 boundaries, so detection costs more of
    # the run than the short-period loops — and a binade crossing right
    # after the first proof costs ~2 periods to re-arm, which at these
    # short iteration counts is one whole extra cycle of the remaining
    # headroom (full-scale runs skip ~75%).
    floor = 0.12 if (op, kind) == ("send", "bw") else 0.3
    assert stats["ff_units_skipped"] >= cfg.iters * floor
    assert stats["ff_events_skipped"] > 0
    assert stats["ff_time_skipped_ns"] > 0


@pytest.mark.parametrize("op,kind", [("send", "lat"), ("write", "bw")])
def test_system_a_disarms_bit_identical(op, kind):
    """System A draws syscall jitter inside the loop: the probe must not
    arm (zero cycles skipped) and results must still match exactly."""
    extra = LAT_CFG if kind == "lat" else BW_CFG
    cfg = PerftestConfig(system="A", op=op, client="cord", server="cord",
                         **extra)
    base, ff, stats = _pair(cfg, 4096, kind)
    assert _result_fields(base) == _result_fields(ff)
    assert stats["ff_jumps"] == 0
    assert stats["ff_cycles_skipped"] == 0


@pytest.mark.parametrize("size", [64, 256])
@pytest.mark.parametrize("zero_copy", [True, False])
def test_send_bw_small_messages_bit_identical(size, zero_copy):
    """Regression: small-message ``send_bw`` must stay bit-identical.

    At small sizes the tx and rx loops run in CPU-paced lockstep and
    every queue level is constant between tx reap points, so the only
    per-boundary state distinguishing positions inside the tx burst
    super-period is the sender's signaling phase.  Without the
    boundaries-since-aux counter (and per-post tx aux reports) in the
    signature the probe proves a period-1 schedule inside the quiet
    stretch and jumps over signaled cycles that are longer (the ack's
    CQE DMA), shaving a fixed deficit per skipped burst off the measured
    duration.  ``zero_copy=False`` covers the send-side-bottleneck
    regime where the tx window never fills during the ramp, so reap
    points — the only aux reports before per-post reporting existed —
    never happen at all.  Size 4096 (covered above) never tripped
    either: the wire paces that run and the queue levels differ
    boundary to boundary.
    """
    cfg = PerftestConfig(system="L", op="send", client="bypass",
                         server="bypass", iters=1200, warmup=200, window=64,
                         techniques=Techniques(zero_copy=zero_copy))
    base, ff, stats = _pair(cfg, size, "bw")
    assert _result_fields(base) == _result_fields(ff)
    assert stats["ff_jumps"] >= 1
    assert stats["ff_units_skipped"] >= cfg.iters * 0.3


def test_lat_samples_replicated_exactly():
    """The skipped iterations' samples are replicated, so the sample
    vector — not just the aggregates — matches the full run."""
    cfg = PerftestConfig(system="L", op="send", client="cord",
                         server="cord", **LAT_CFG)
    base, ff, stats = _pair(cfg, 64, "lat")
    assert stats["ff_cycles_skipped"] > 0
    assert ff.samples == base.samples


def test_fault_plan_refuses_to_arm():
    """Satellite: an attached FaultPlan must hard-disable the probe at
    construction (absolute-time windows + per-message loss draws make
    extrapolation unsafe), before any boundary is observed."""
    sim = Simulator(seed=7)
    probe = FastForward(sim, faults=FaultPlan(loss=0.01))
    assert not probe.enabled
    assert probe.reason == "faults"
    # Even a "quiet" plan (no loss, no windows) is refused: windows
    # trigger on absolute time, so any plan disables skipping.
    probe2 = FastForward(Simulator(seed=7), faults=FaultPlan())
    assert not probe2.enabled and probe2.reason == "faults"


def test_fault_plan_end_to_end_identical_with_zero_skips():
    plan = FaultPlan(loss=0.02)
    cfg = PerftestConfig(system="L", op="send", client="bypass",
                         server="bypass", faults=plan, **BW_CFG)
    base, ff, stats = _pair(cfg, 4096, "bw")
    assert _result_fields(base) == _result_fields(ff)
    assert stats["ff_jumps"] == 0 and stats["ff_cycles_skipped"] == 0


def test_trace_export_refuses_to_arm():
    """A trace-recording run must keep every event: skipping cycles would
    silently truncate the exported timeline."""
    sim = Simulator(seed=7, trace=Trace(enabled=True))
    probe = FastForward(sim)
    assert not probe.enabled
    assert probe.reason == "trace"


def test_probe_observe_after_disarm_is_cheap_noop():
    sim = Simulator(seed=7)
    probe = FastForward(sim, faults=FaultPlan(loss=0.5))
    probe.begin("i", (10, 100))
    assert probe.observe({"i": 1}) is None
    assert probe.stats.jumps == 0


def test_telemetry_counts_skipped_cycles():
    """fastforward.cycles_skipped lands in the sim scope when metrics are
    on (metrics alone — full trace export would disarm the probe)."""
    cfg = PerftestConfig(system="L", op="send", client="bypass",
                         server="bypass", **LAT_CFG)
    sim, client, server = _build(cfg)
    sim.telemetry.enabled = True
    probe = FastForward(sim, label="lat:test")
    assert probe.enabled

    def main():
        result = yield from send_lat(
            sim, client, server, 64, iters=cfg.iters, warmup=cfg.warmup,
            techniques=cfg.techniques, fastforward=probe,
        )
        return result

    sim.run(sim.process(main()))
    assert probe.stats.cycles_skipped > 0
    counter = sim.telemetry.scope("sim").counter("fastforward.cycles_skipped")
    assert counter.total == probe.stats.cycles_skipped
    skipped_ns = sim.telemetry.scope("sim").counter("fastforward.time_skipped_ns")
    assert skipped_ns.total == probe.stats.time_skipped_ns > 0


# -- advance_clock (the engine primitive) -------------------------------------


def test_advance_clock_translates_pending_events():
    sim = Simulator(seed=1)
    log = []

    def waiter(delay, tag):
        yield delay
        log.append((tag, sim.now))

    sim.process(waiter(100.0, "a"))
    sim.process(waiter(250.0, "b"))
    sim.step()  # initial resumes
    sim.step()
    moved = sim.advance_clock(40.0)
    assert moved == 2
    assert sim.now == 40.0
    sim.run()
    assert log == [("a", 140.0), ("b", 290.0)]


def test_advance_clock_rejects_backward_jump():
    from repro.errors import SimulationError

    sim = Simulator(seed=1)

    def waiter():
        yield 10.0

    sim.run(sim.process(waiter()))
    with pytest.raises(SimulationError, match="in the past"):
        sim.advance_clock(sim.now - 1.0)


def test_advance_clock_zero_shift_is_noop():
    sim = Simulator(seed=1)
    assert sim.advance_clock(sim.now) == 0


def test_advance_clock_runs_time_shift_hooks():
    sim = Simulator(seed=1)
    shifts = []
    sim.on_time_shift(shifts.append)
    sim.advance_clock(32.0)
    assert shifts == [32.0]
    sim.advance_clock(32.0)  # zero shift: hooks must not fire
    assert shifts == [32.0]


def test_jump_lands_before_milestones():
    """A jump may never cross the next milestone: the crossing itself (and
    everything after the last one) must simulate."""
    cfg = PerftestConfig(system="L", op="write", client="bypass",
                         server="bypass", **BW_CFG)
    base, ff, stats = _pair(cfg, 4096, "bw")
    assert _result_fields(base) == _result_fields(ff)
    # The drain tail is never skippable, so strictly fewer units than the
    # whole measured range were skipped.
    assert 0 < stats["ff_units_skipped"] < cfg.warmup + cfg.iters


def test_binade_cap_is_a_float_boundary():
    # Sanity-pin the binade arithmetic the extrapolator relies on.
    now = 3.5e6
    binade_end = math.ldexp(1.0, math.frexp(now)[1])
    assert binade_end / 2 <= now < binade_end
    assert math.ulp(now) == math.ulp(binade_end / 2)
