"""Discrete-event engine edge cases and device query verbs."""

import pytest

from repro.cluster import build_pair
from repro.core.endpoint import make_endpoint
from repro.errors import SimulationError, VerbsError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator


def test_run_until_already_processed_event_returns_value():
    sim = Simulator()
    t = sim.timeout(5.0, value="v")
    sim.run()
    assert sim.run(t) == "v"


def test_run_until_failed_event_raises():
    sim = Simulator()
    ev = sim.event()

    def failer():
        yield sim.timeout(1.0)
        ev.fail(KeyError("x"))

    sim.process(failer())
    with pytest.raises(KeyError):
        sim.run(ev)


def test_run_until_unreachable_event_raises():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError, match="never be triggered"):
        sim.run(never)


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError, match="terminated"):
        p.interrupt()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_trigger_copies_other_events_outcome():
    sim = Simulator()
    src = sim.timeout(1.0, value=42)
    dst = sim.event()

    def proc():
        yield src
        dst.trigger(src)
        value = yield dst
        return value

    assert sim.run(sim.process(proc())) == 42


def test_try_get_with_parked_getters_rejected():
    from repro.sim import Store

    sim = Simulator()
    store = Store(sim)

    def getter():
        yield store.get()

    sim.process(getter())
    sim.run()
    with pytest.raises(SimulationError, match="parked getters"):
        store.try_get()


def test_condition_value_mapping_interface():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        result = yield t1 & t2
        assert result[t1] == "a"
        assert len(result) == 2
        assert list(result) == [t1, t2]
        with pytest.raises(KeyError):
            _ = result[sim.event()]
        return result.todict()[t2]

    assert sim.run(sim.process(proc())) == "b"


def test_yielding_foreign_simulator_event_fails():
    sim1 = Simulator()
    sim2 = Simulator()

    def proc():
        yield sim2.timeout(1.0)

    sim1.process(proc())
    with pytest.raises(SimulationError, match="another simulator"):
        sim1.run()


# -- query verbs -----------------------------------------------------------------


def test_query_device_and_port():
    sim = Simulator(seed=1)
    _f, host_a, _b = build_pair(sim, SYSTEM_L)

    def main():
        ep = yield from make_endpoint(host_a, "bypass")
        dev = yield from ep.ctx.query_device()
        port = yield from ep.ctx.query_port()
        with pytest.raises(VerbsError):
            yield from ep.ctx.query_port(2)
        return dev, port

    dev, port = sim.run(sim.process(main()))
    assert dev.max_inline_data == SYSTEM_L.nic.inline_threshold
    assert dev.atomic_cap
    assert port.state == "ACTIVE"
    assert port.active_mtu == 4096
    assert port.link_speed_gbps == pytest.approx(100.0)
