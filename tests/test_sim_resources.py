"""Unit tests for resources and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import FilterStore, PriorityResource, Resource, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def user(tag, hold):
        req = res.request()
        yield req
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    for tag in range(4):
        sim.process(user(tag, 10.0))
    sim.run()
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0), (3, 10.0)]


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    times = []

    def user():
        with res.request() as req:
            yield req
            times.append(sim.now)
            yield sim.timeout(5.0)

    sim.process(user())
    sim.process(user())
    sim.run()
    assert times == [0.0, 5.0]
    assert res.count == 0


def test_release_of_queued_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(100.0)
        res.release(req)

    def impatient():
        req = res.request()
        yield sim.timeout(10.0)
        res.release(req)  # give up before the grant
        return "gave-up"

    sim.process(holder())
    p = sim.process(impatient())
    assert sim.run(p) == "gave-up"


def test_release_unknown_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_priority_resource_serves_low_value_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def user(tag, prio):
        yield sim.timeout(1.0)  # arrive after the holder
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(user("low-prio", 5))
    sim.process(user("high-prio", 1))
    sim.process(user("mid-prio", 3))
    sim.run()
    assert order == ["high-prio", "mid-prio", "low-prio"]


def test_priority_ties_are_fifo():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def user(tag):
        yield sim.timeout(1.0)
        req = res.request(priority=1)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    for tag in range(4):
        sim.process(user(tag))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_resource_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        req = res.request()
        yield req
        yield sim.timeout(50.0)
        res.release(req)
        yield sim.timeout(50.0)

    sim.process(user())
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(25.0)
        yield store.put("x")

    p = sim.process(consumer())
    sim.process(producer())
    assert sim.run(p) == ("x", 25.0)


def test_bounded_store_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    done = []

    def producer():
        yield store.put("a")
        done.append(("a", sim.now))
        yield store.put("b")
        done.append(("b", sim.now))

    def consumer():
        yield sim.timeout(10.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert done == [("a", 0.0), ("b", 10.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("a")
    sim.run()
    assert store.try_get() == "a"
    assert store.try_get() is None


def test_filter_store_matches_predicate():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer():
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer():
        for i in (1, 3, 4, 5):
            yield store.put(i)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [4]
    assert list(store.items) == [1, 3, 5]


def test_filter_store_try_get_with_filter():
    sim = Simulator()
    store = FilterStore(sim)
    for i in range(5):
        store.put(i)
    sim.run()
    assert store.try_get(lambda x: x > 2) == 3
    assert store.try_get(lambda x: x > 10) is None


def test_store_high_water_mark():
    sim = Simulator()
    store = Store(sim)
    for i in range(7):
        store.put(i)
    sim.run()
    assert store.max_occupancy == 7
