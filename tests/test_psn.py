"""24-bit PSN serial arithmetic and end-to-end wraparound behaviour."""

import pytest

from repro.cluster import build_pair
from repro.core.endpoint import make_rc_pair
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.verbs.cq import CompletionQueue
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import Opcode, Psn, RecvWR, SendWR, WCStatus


# -- helper algebra ---------------------------------------------------------------


def test_wrap_projects_into_24_bits():
    assert Psn.MASK == 2**24 - 1
    assert Psn.wrap(2**24) == 0
    assert Psn.wrap(2**24 + 5) == 5
    assert Psn.wrap(-1) == Psn.MASK


def test_next_wraps_at_top():
    assert Psn.next(0) == 1
    assert Psn.next(Psn.MASK) == 0


def test_add_signed_and_wrapped():
    assert Psn.add(10, 5) == 15
    assert Psn.add(0, -1) == Psn.MASK
    assert Psn.add(Psn.MASK, 2) == 1


def test_delta_is_circular_forward_distance():
    assert Psn.delta(5, 3) == 2
    assert Psn.delta(3, 5) == Psn.MASK + 1 - 2
    # Across the wrap: 2 is 5 ahead of MASK-2.
    assert Psn.delta(2, Psn.MASK - 2) == 5


@pytest.mark.parametrize("a,b,expect", [
    (5, 5, 0),
    (6, 5, 1),          # a just ahead
    (5, 6, -1),         # a just behind
    (0, Psn.MASK, 1),   # ahead across the wrap
    (Psn.MASK, 0, -1),  # behind across the wrap
    (Psn.HALF, 0, -1),  # exactly half the space away reads as "behind"
])
def test_cmp_serial_order(a, b, expect):
    got = Psn.cmp(a, b)
    assert (got > 0) == (expect > 0)
    assert (got < 0) == (expect < 0)
    assert (got == 0) == (expect == 0)


# -- end-to-end wraparound regression ---------------------------------------------


def _recv(ep, wr_id):
    return RecvWR(wr_id=wr_id, addr=ep.buf.addr, length=ep.buf.length,
                  lkey=ep.mr.lkey)


def _send(ep, wr_id, n=1024):
    return SendWR(wr_id=wr_id, opcode=Opcode.SEND, addr=ep.buf.addr,
                  length=n, lkey=ep.mr.lkey)


def test_rc_sends_cross_the_psn_wrap():
    """Four sends assigned PSNs MASK-1, MASK, 0, 1 all complete in order.

    Before the Psn helper, the responder compared raw integers: the
    post-wrap PSN 0 looked like a stale duplicate of MASK-1 and the QP
    wedged.  This is the regression test for that whole bug class.
    """
    sim = Simulator(seed=5)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
        # Long-lived QP about to cross the wrap: both ends agree the next
        # PSN is MASK-1 (2**24 - 2).
        a.qp.sq_psn = Psn.MASK - 1
        b.qp.expected_psn = Psn.MASK - 1
        for i in (101, 102, 103, 104):
            yield from b.post_recv(_recv(b, i))
        for i in (1, 2, 3, 4):
            yield from a.post_send(_send(a, i))
        cqes = []
        while len(cqes) < 4:
            cqes.extend((yield from a.wait_send()))
        rqes = []
        while len(rqes) < 4:
            rqes.extend((yield from b.wait_recv()))
        return a, b, cqes, rqes

    a, b, cqes, rqes = sim.run(sim.process(main()))
    assert [c.wr_id for c in cqes] == [1, 2, 3, 4]
    assert all(c.status is WCStatus.SUCCESS for c in cqes)
    assert [r.wr_id for r in rqes] == [101, 102, 103, 104]
    # Both PSN spaces wrapped and stayed in sync.
    assert a.qp.sq_psn == 2
    assert b.qp.expected_psn == 2
    assert a.qp.outstanding == {}


def test_error_flush_order_across_the_wrap():
    """Flush emits oldest-first even when the window straddles the wrap."""
    sim = Simulator(seed=1)
    cq = CompletionQueue(sim, name="sq")
    qp = QueuePair(pd=None, transport=Transport.RC, send_cq=cq, recv_cq=cq,
                   qpn=7, sq_depth=16, rq_depth=16, max_inline=0)
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 9))
    qp.modify(QPState.RTS)
    qp.sq_psn = Psn.MASK  # next assignment wraps
    wrs = {}
    for wr_id in (1, 2, 3):
        psn = qp.assign_psn()
        wr = _send_like(wr_id)
        qp.outstanding[psn] = wr
        wrs[wr_id] = psn
    assert sorted(qp.outstanding) == [0, 1, Psn.MASK]
    qp.modify(QPState.ERROR)
    flushed = [e.wr_id for e in qp.send_cq.entries
               if e.status is WCStatus.WR_FLUSH_ERR]
    # Post order 1 (PSN MASK), 2 (PSN 0), 3 (PSN 1) — not ascending-PSN.
    assert flushed == [1, 2, 3]


def _send_like(wr_id):
    return SendWR(wr_id=wr_id, opcode=Opcode.SEND, addr=0, length=8, lkey=0)
