"""Trace and counter utilities."""

from repro.sim import Counter, Simulator, Trace
from repro.sim.trace import TraceRecord


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.emit(1.0, "nic", "tx", size=64)
    assert len(trace) == 0


def test_emit_and_select():
    trace = Trace()
    trace.emit(1.0, "nic", "tx", size=64)
    trace.emit(2.0, "nic", "rx", size=64)
    trace.emit(3.0, "cpu", "syscall")
    assert len(trace.select(category="nic")) == 2
    assert len(trace.select(category="nic", event="tx")) == 1
    assert trace.select(event="syscall")[0].time == 3.0


def test_category_filter():
    trace = Trace(categories={"nic"})
    trace.emit(1.0, "nic", "tx")
    trace.emit(2.0, "cpu", "run")
    assert [r.category for r in trace] == ["nic"]


def test_record_field_access():
    rec = TraceRecord(1.0, "nic", "tx", (("size", 64), ("qp", 7)))
    assert rec.get("size") == 64
    assert rec.get("missing", "dflt") == "dflt"
    d = rec.asdict()
    assert d["qp"] == 7 and d["event"] == "tx"


def test_subscribers_see_live_records():
    trace = Trace()
    seen = []
    trace.subscribe(seen.append)
    trace.emit(5.0, "x", "y")
    assert len(seen) == 1 and seen[0].time == 5.0


def test_trace_clear():
    trace = Trace()
    trace.emit(1.0, "a", "b")
    trace.clear()
    assert len(trace) == 0


def test_counter_accounting():
    c = Counter("rx")
    c.add(100, key="send")
    c.add(200, key="send")
    c.add(50, key="write")
    assert c.ops == 3
    assert c.bytes == 350
    assert c.by_key("send") == 2
    assert c.by_key("nope") == 0
    snap = c.snapshot()
    assert snap["by_key"] == {"send": 2, "write": 1}


def test_simulator_owns_a_disabled_trace_by_default():
    sim = Simulator()
    assert sim.trace.enabled is False
