"""PCIe DMA model and cluster builder plumbing."""

import pytest

from repro.cluster import build_cluster, build_pair
from repro.errors import HardwareError
from repro.hw.pcie import PcieBus
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator


def test_dma_read_latency_plus_bandwidth():
    sim = Simulator()
    bus = PcieBus(sim, SYSTEM_L.nic)

    def proc():
        yield from bus.dma_read(1 << 20)
        return sim.now

    elapsed = sim.run(sim.process(proc()))
    expected = SYSTEM_L.nic.dma_read_lat_ns + (1 << 20) / SYSTEM_L.nic.pcie_bw
    assert elapsed == pytest.approx(expected)
    assert bus.bytes_read == 1 << 20


def test_dma_write_accounting_and_validation():
    sim = Simulator()
    bus = PcieBus(sim, SYSTEM_L.nic)

    def proc():
        yield from bus.dma_write(4096)
        return bus.bytes_written

    assert sim.run(sim.process(proc())) == 4096

    def bad():
        yield from bus.dma_read(-1)

    with pytest.raises(HardwareError):
        sim.run(sim.process(bad()))


def test_concurrent_dmas_serialize_on_the_bus():
    sim = Simulator()
    bus = PcieBus(sim, SYSTEM_L.nic)
    ends = []

    def proc(tag):
        yield from bus.dma_read(1 << 20)
        ends.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    one = SYSTEM_L.nic.dma_read_lat_ns + (1 << 20) / SYSTEM_L.nic.pcie_bw
    assert ends[0][1] == pytest.approx(one)
    assert ends[1][1] == pytest.approx(2 * one)


# -- cluster builder ---------------------------------------------------------------


def test_build_cluster_validates_host_count():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_cluster(sim, SYSTEM_L, 0)


def test_build_cluster_hosts_are_wired():
    sim = Simulator()
    fabric, hosts = build_cluster(sim, SYSTEM_L, 3)
    assert len(hosts) == 3
    for h in hosts:
        assert h.fabric is fabric
        assert fabric.nic(h.host_id) is h.nic
        assert h.nic.mr_table is h.mr_table


def test_double_attach_rejected():
    sim = Simulator()
    fabric, hosts = build_cluster(sim, SYSTEM_L, 1)
    with pytest.raises(HardwareError, match="already attached"):
        fabric.attach_nic(hosts[0].nic)


def test_address_spaces_are_independent():
    sim = Simulator()
    _f, host_a, _b = build_pair(sim, SYSTEM_L)
    s1 = host_a.new_address_space("p1")
    s2 = host_a.new_address_space("p2")
    b1 = s1.alloc(4096)
    with pytest.raises(Exception):
        s2.find(b1.addr, 10)  # other process's mapping is invisible
