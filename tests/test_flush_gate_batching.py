"""QP flush semantics, the suspend gate, and chained (batched) posting."""

import pytest

from repro.cluster import build_pair
from repro.core.endpoint import make_rc_pair
from repro.core.policies import SuspendGate
from repro.core.policy import PolicyChain
from repro.errors import PolicyViolation, QPStateError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import us
from repro.verbs.qp import QPState
from repro.verbs.wr import Opcode, RecvWR, SendWR, WCStatus


def run_scenario(scenario, kind_a="bypass", kind_b="bypass", policies_a=None):
    sim = Simulator(seed=4)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kind_a, kind_b,
                                       policies_a=policies_a)
        return (yield from scenario(sim, a, b))

    return sim.run(sim.process(main()))


# -- flush semantics --------------------------------------------------------------


def test_error_state_flushes_posted_recvs():
    def scenario(sim, a, b):
        for i in range(3):
            yield from b.post_recv(RecvWR(wr_id=100 + i, addr=b.buf.addr,
                                          length=4096, lkey=b.mr.lkey))
        b.qp.modify(QPState.ERROR)
        cqes = yield from b.poll_recv(16)
        return [(c.wr_id, c.status) for c in cqes]

    flushed = run_scenario(scenario)
    assert flushed == [(100 + i, WCStatus.WR_FLUSH_ERR) for i in range(3)]


def test_error_state_flushes_outstanding_sends():
    def scenario(sim, a, b):
        # Post a send but kill the QP before the ack can return.
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=4096, lkey=b.mr.lkey))
        yield from a.post_send(SendWR(wr_id=7, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=1024,
                                      lkey=a.mr.lkey))
        # Let the NIC take the WQE in flight, then kill the QP before the
        # ack can return (ack RTT ~1.6 us on system L).
        yield sim.timeout(us(1))
        a.qp.modify(QPState.ERROR)
        cqes = yield from a.poll_send(16)
        return [(c.wr_id, c.status) for c in cqes]

    flushed = run_scenario(scenario)
    assert (7, WCStatus.WR_FLUSH_ERR) in flushed


def test_post_on_error_qp_rejected():
    def scenario(sim, a, b):
        a.qp.modify(QPState.ERROR)
        with pytest.raises(QPStateError):
            yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=64,
                                          lkey=a.mr.lkey))
        return "ok"
        yield

    assert run_scenario(scenario) == "ok"


def test_error_then_reset_then_reconnect():
    def scenario(sim, a, b):
        a.qp.modify(QPState.ERROR)
        a.qp.modify(QPState.RESET)
        yield from a.ctx.connect_qp(a.qp, b.addr)
        assert a.qp.state is QPState.RTS
        # And the connection works again.
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=4096, lkey=b.mr.lkey))
        yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=64, lkey=a.mr.lkey))
        cqes = yield from b.wait_recv()
        return cqes[0].ok

    assert run_scenario(scenario) is True


# -- suspend gate -------------------------------------------------------------------


def test_suspend_denies_until_resume():
    gate = SuspendGate()

    def scenario(sim, a, b):
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=4096, lkey=b.mr.lkey))
        gate.suspend("default")
        with pytest.raises(PolicyViolation, match="suspended"):
            yield from a.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=64,
                                          lkey=a.mr.lkey))
        gate.resume("default")
        yield from a.post_send(SendWR(wr_id=2, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=64, lkey=a.mr.lkey))
        cqes = yield from b.wait_recv()
        return cqes[0].ok

    assert run_scenario(scenario, kind_a="cord",
                        policies_a=PolicyChain([gate])) is True


def test_suspended_tenant_can_still_poll_and_drain():
    gate = SuspendGate()

    def scenario(sim, a, b):
        yield from b.post_recv(RecvWR(wr_id=1, addr=b.buf.addr,
                                      length=4096, lkey=b.mr.lkey))
        yield from a.post_send(SendWR(wr_id=5, opcode=Opcode.SEND,
                                      addr=a.buf.addr, length=64, lkey=a.mr.lkey))
        gate.suspend("default")
        # In-flight work completes and is reapable while suspended.
        cqes = yield from a.wait_send()
        return cqes[0].ok and gate.is_suspended("default")

    assert run_scenario(scenario, kind_a="cord",
                        policies_a=PolicyChain([gate])) is True


def test_gate_is_per_tenant():
    gate = SuspendGate()
    gate.suspend("noisy")
    from repro.core.policy import OpContext

    gate.evaluate(OpContext(now=0, host=None, op="post_send", tenant="quiet"))
    with pytest.raises(PolicyViolation):
        gate.evaluate(OpContext(now=0, host=None, op="post_send", tenant="noisy"))


# -- chained posting -------------------------------------------------------------------


def _chain(a, n, size=64):
    return [SendWR(wr_id=i, opcode=Opcode.SEND, addr=a.buf.addr, length=size,
                   lkey=a.mr.lkey, signaled=(i == n - 1)) for i in range(n)]


def test_post_send_many_delivers_all_in_order():
    def scenario(sim, a, b):
        n = 10
        for i in range(n):
            yield from b.post_recv(RecvWR(wr_id=i, addr=b.buf.addr,
                                          length=4096, lkey=b.mr.lkey))
        yield from a.dataplane.post_send_many(a.qp, _chain(a, n))
        got = []
        while len(got) < n:
            got.extend(c.wr_id for c in (yield from b.wait_recv()))
        return got

    assert run_scenario(scenario) == list(range(10))


@pytest.mark.parametrize("kind", ["bypass", "cord"])
def test_chained_posting_cheaper_than_individual(kind):
    def post_time(batched):
        def scenario(sim, a, b):
            n = 32
            for i in range(n):
                yield from b.post_recv(RecvWR(wr_id=i, addr=b.buf.addr,
                                              length=4096, lkey=b.mr.lkey))
            t0 = sim.now
            if batched:
                yield from a.dataplane.post_send_many(a.qp, _chain(a, n))
            else:
                for wr in _chain(a, n):
                    yield from a.post_send(wr)
            return sim.now - t0

        return run_scenario(scenario, kind_a=kind, kind_b="bypass")

    individual = post_time(False)
    chained = post_time(True)
    assert chained < individual
    if kind == "cord":
        # The chain amortizes 32 syscalls into one: saves >= 31 transitions.
        assert individual - chained > 31 * SYSTEM_L.cpu.syscall_ns * 0.9


def test_cord_chain_policies_see_every_wr():
    from repro.core.policies import FlowStats

    stats = FlowStats()

    def scenario(sim, a, b):
        n = 8
        for i in range(n):
            yield from b.post_recv(RecvWR(wr_id=i, addr=b.buf.addr,
                                          length=4096, lkey=b.mr.lkey))
        yield from a.dataplane.post_send_many(a.qp, _chain(a, n))
        return sum(f.ops.get("post_send", 0) for f in stats.flows.values())

    count = run_scenario(scenario, kind_a="cord",
                         policies_a=PolicyChain([stats]))
    assert count == 8
