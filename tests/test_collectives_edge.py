"""Collective algorithm edge cases and cost sanity."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import MPIError
from repro.hw.profiles import SYSTEM_L
from repro.mpi import MpiWorld
from repro.mpi.collectives import MAX, MIN, SUM
from repro.sim import Simulator


def run_world(program, size=4, seed=2):
    sim = Simulator(seed=seed)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size)
    return world.run(program)


def test_single_rank_world_collectives_are_trivial():
    def program(comm):
        yield from comm.barrier()
        out = yield from comm.allreduce(data=np.array([3.0]))
        blocks = yield from comm.allgather(data="me")
        bc = yield from comm.bcast(0, data=b"x")
        a2a = yield from comm.alltoall(8, data_per_peer=["only"])
        return (float(out[0]), blocks, bc, a2a)

    results = run_world(program, size=1)
    assert results[0] == (3.0, ["me"], b"x", ["only"])


def test_reduce_min_operator():
    def program(comm):
        out = yield from comm.reduce(1, data=np.array([float(10 - comm.rank)]),
                                     op=MIN)
        return None if out is None else float(out[0])

    results = run_world(program, size=5)
    assert results[1] == 6.0  # min(10, 9, 8, 7, 6)
    assert results[0] is None


def test_reduce_max_scalar_payloads():
    def program(comm):
        out = yield from comm.reduce(0, nbytes=8, data=comm.rank * 2, op=MAX)
        return out

    results = run_world(program, size=4)
    assert results[0] == 6


def test_allgather_sizes_scale_messages():
    """Ring allgather sends (P-1) blocks per rank."""
    sim = Simulator(seed=2)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, 4)

    def program(comm):
        yield from comm.allgather(nbytes=1024)
        return comm.engine.msgs_sent

    results = world.run(program)
    assert all(r == 3 for r in results)


def test_alltoall_wrong_block_count_rejected():
    def program(comm):
        with pytest.raises(MPIError):
            yield from comm.alltoall(8, data_per_peer=["too", "few"])
        return "ok"

    assert run_world(program, size=4) == ["ok"] * 4


def test_alltoallv_wrong_counts_rejected():
    def program(comm):
        with pytest.raises(MPIError):
            yield from comm.alltoallv([1, 2])
        return "ok"

    assert run_world(program, size=4) == ["ok"] * 4


def test_scatter_gather_none_payloads():
    """Size-only scatter/gather works without data."""

    def program(comm):
        block = yield from comm.scatter(0, 512)
        got = yield from comm.gather(0, nbytes=512)
        if comm.rank == 0:
            return len(got)
        return got  # None off-root

    results = run_world(program, size=4)
    assert results[0] == 4
    assert results[1:] == [None, None, None]


def test_collective_payload_sizes_affect_runtime():
    def timed(nbytes):
        def program(comm):
            yield from comm.barrier()
            t0 = comm.sim.now
            yield from comm.allreduce(nbytes=nbytes)
            return comm.sim.now - t0

        return max(run_world(program, size=4))

    assert timed(1 << 20) > 2 * timed(64)


def test_bcast_large_payload_uses_rendezvous():
    sim = Simulator(seed=2)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, 4)

    def program(comm):
        data = np.ones(1 << 17) if comm.rank == 0 else None  # 1 MiB
        out = yield from comm.bcast(0, nbytes=1 << 20, data=data)
        return float(np.sum(out))

    results = world.run(program)
    assert results == [float(1 << 17)] * 4
    # Rendezvous control traffic happened (RTS+CTS+DATA per tree edge).
    assert sum(h.nic.counters.tx_msgs for h in hosts) >= 9


def test_concurrent_collectives_different_tags_dont_cross():
    """A barrier right after an allreduce must not consume its traffic."""

    def program(comm):
        out = yield from comm.allreduce(data=np.array([1.0]))
        yield from comm.barrier()
        out2 = yield from comm.allreduce(data=np.array([2.0]))
        return (float(out[0]), float(out2[0]))

    results = run_world(program, size=4)
    assert all(r == (4.0, 8.0) for r in results)
