"""MPI_Comm_split and sub-communicator behaviour."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import MPIError
from repro.hw.profiles import SYSTEM_L
from repro.mpi import MpiWorld
from repro.sim import Simulator


def run_world(program, size=6):
    sim = Simulator(seed=7)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size)
    return world.run(program)


def test_split_groups_by_color_ordered_by_key():
    def program(comm):
        color = comm.rank % 2
        sub = yield from comm.split(color, key=-comm.rank)  # reverse order
        return (sub.rank, sub.size, sub.ranks)

    results = run_world(program, size=6)
    evens = [r for r in (0, 2, 4)]
    # Reverse key ordering: global rank 4 becomes local 0 in the even group.
    assert results[4] == (0, 3, [4, 2, 0])
    assert results[0] == (2, 3, [4, 2, 0])
    assert results[1][1] == 3  # odd group size
    assert set(results[1][2]) == {1, 3, 5}


def test_split_undefined_returns_none():
    def program(comm):
        color = None if comm.rank == 0 else 1
        sub = yield from comm.split(color)
        return sub is None

    results = run_world(program, size=4)
    assert results == [True, False, False, False]


def test_subcomm_point_to_point_uses_local_ranks():
    def program(comm):
        sub = yield from comm.split(comm.rank % 2)
        if sub.rank == 0:
            yield from sub.send(1, data=b"sub-hello", tag=4)
            return None
        if sub.rank == 1:
            req = yield from sub.recv(0, tag=4)
            return (req.source, req.tag, req.data)
        return None

    results = run_world(program, size=4)
    # Local source 0 and the *local* tag, on both sub-communicators.
    assert results[2] == (0, 4, b"sub-hello")
    assert results[3] == (0, 4, b"sub-hello")


def test_subcomm_collectives_are_isolated():
    """Concurrent allreduces on disjoint sub-communicators don't mix."""

    def program(comm):
        sub = yield from comm.split(comm.rank % 2)
        out = yield from sub.allreduce(data=np.array([float(comm.rank)]))
        return float(out[0])

    results = run_world(program, size=6)
    assert results[0] == results[2] == results[4] == 0 + 2 + 4
    assert results[1] == results[3] == results[5] == 1 + 3 + 5


def test_subcomm_barrier_only_synchronizes_members():
    def program(comm):
        sub = yield from comm.split(0 if comm.rank < 2 else 1)
        if comm.rank >= 2:
            yield from comm.compute(200_000.0)  # group 1 is late
        yield from sub.barrier()
        return comm.sim.now

    results = run_world(program, size=4)
    # Group 0 (ranks 0,1) must not have waited for group 1's compute.
    assert max(results[0], results[1]) < min(results[2], results[3])


def test_subcomm_any_tag_rejected():
    def program(comm):
        sub = yield from comm.split(0)
        if comm.rank == 0:
            with pytest.raises(MPIError, match="ANY_TAG"):
                yield from sub.irecv(source=1, tag=-1)
        return "ok"

    assert run_world(program, size=2) == ["ok", "ok"]


def test_nested_split():
    def program(comm):
        half = yield from comm.split(comm.rank // 4)      # two halves of 4
        quarter = yield from half.split(half.rank // 2)   # pairs
        out = yield from quarter.allreduce(data=np.array([1.0]))
        return (quarter.size, float(out[0]))

    results = run_world(program, size=8)
    assert all(r == (2, 2.0) for r in results)
