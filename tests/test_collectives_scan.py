"""reduce_scatter, scan and exscan collectives."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.errors import MPIError
from repro.hw.profiles import SYSTEM_L
from repro.mpi import MpiWorld
from repro.mpi.collectives import MAX
from repro.sim import Simulator


def run_world(program, size=4, seed=3):
    sim = Simulator(seed=seed)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size)
    return world.run(program)


@pytest.mark.parametrize("size", [2, 4, 8])
def test_reduce_scatter_power_of_two(size):
    def program(comm):
        # Block i from rank r contains r*100 + i.
        blocks = [np.array([float(comm.rank * 100 + i)]) for i in range(comm.size)]
        mine = yield from comm.reduce_scatter(8, blocks)
        return float(mine[0])

    results = run_world(program, size=size)
    ranks_sum = sum(r * 100 for r in range(size))
    assert results == [ranks_sum + size * i for i in range(size)]


def test_reduce_scatter_non_power_of_two_fallback():
    def program(comm):
        blocks = [np.array([1.0]) for _ in range(comm.size)]
        mine = yield from comm.reduce_scatter(8, blocks)
        return float(mine[0])

    results = run_world(program, size=3)
    assert results == [3.0, 3.0, 3.0]


def test_reduce_scatter_single_rank():
    def program(comm):
        mine = yield from comm.reduce_scatter(8, [np.array([7.0])])
        return float(mine[0])

    assert run_world(program, size=1) == [7.0]


def test_reduce_scatter_block_count_checked():
    def program(comm):
        with pytest.raises(MPIError):
            yield from comm.reduce_scatter(8, [np.array([1.0])])
        return "ok"

    assert run_world(program, size=4) == ["ok"] * 4


def test_scan_inclusive_prefix_sums():
    def program(comm):
        out = yield from comm.scan(data=np.array([float(comm.rank + 1)]))
        return float(out[0])

    results = run_world(program, size=5)
    assert results == [1.0, 3.0, 6.0, 10.0, 15.0]


def test_exscan_exclusive_prefix():
    def program(comm):
        out = yield from comm.exscan(nbytes=8, data=comm.rank + 1)
        return None if out is None else int(out)

    results = run_world(program, size=5)
    assert results == [None, 1, 3, 6, 10]


def test_scan_with_max_operator():
    def program(comm):
        vals = [3, 9, 1, 7]
        out = yield from comm.scan(nbytes=8, data=vals[comm.rank], op=MAX)
        return out

    results = run_world(program, size=4)
    assert results == [3, 9, 9, 9]
