"""The SIM001–SIM006 determinism linter: rules, pragmas, repo cleanliness."""

import json
import os

import pytest

from repro.sanitize import format_json, format_text, lint_source, run_lint
from repro.sanitize.findings import PRAGMAS, PROTO_LINT_RULES, RULES

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "sanitize_violations.py")
#: Virtual path putting the fixture inside the strictest rule scope
#: (src/repro for SIM002/004/005, repro/sim for SIM006).
VIRTUAL_PATH = os.path.join("src", "repro", "sim", "_violations.py")


def _lint_fixture(rules=None):
    with open(FIXTURE, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=VIRTUAL_PATH, rules=rules)


# -- one seeded violation per rule ----------------------------------------------


@pytest.mark.parametrize("rule", ["SIM001", "SIM002", "SIM003",
                                  "SIM004", "SIM005", "SIM006"])
def test_fixture_seeds_exactly_one_violation_per_rule(rule):
    findings = _lint_fixture(rules=[rule])
    assert len(findings) == 1, [f.text() for f in findings]
    assert findings[0].rule == rule
    assert findings[0].hint  # every rule ships a fix hint


def test_fixture_total_findings_is_one_per_rule():
    findings = _lint_fixture()
    assert sorted(f.rule for f in findings) == [
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
    ]


# -- per-rule shapes beyond the fixture ------------------------------------------


def test_sim001_unseeded_default_rng():
    findings = lint_source("g = default_rng()\n", path="tests/x.py")
    assert [f.rule for f in findings] == ["SIM001"]
    # Seeded construction outside src/repro/sim/rng.py is still np.random use
    # when spelled through the namespace, but a bare seeded call passes:
    assert lint_source("g = default_rng(7)\n", path="tests/x.py") == []


def test_sim001_allowed_inside_rng_module():
    src = "import numpy as np\ng = np.random.default_rng(1)\n"
    assert lint_source(src, path="src/repro/sim/rng.py") == []
    assert len(lint_source(src, path="src/repro/hw/nic.py")) >= 1


def test_sim002_only_fires_inside_src_repro():
    src = "import time\nt0 = time.perf_counter()\n"
    assert [f.rule for f in lint_source(src, path="src/repro/hw/cpu.py")] \
        == ["SIM002"]
    assert lint_source(src, path="benchmarks/bench_x.py") == []


def test_sim003_sorted_iteration_is_clean():
    dirty = "for x in {3, 1, 2}:\n    print(x)\n"
    clean = "for x in sorted({3, 1, 2}):\n    print(x)\n"
    assert [f.rule for f in lint_source(dirty, path="t.py")] == ["SIM003"]
    assert lint_source(clean, path="t.py") == []


def test_sim003_set_pop():
    src = "pending = set()\npending.add(1)\nx = pending.pop()\n"
    assert [f.rule for f in lint_source(src, path="t.py")] == ["SIM003"]


def test_sim004_inf_sentinel_compare_is_clean():
    src = 'if deadline != float("inf"):\n    pass\n'
    assert lint_source(src, path="src/repro/sim/engine.py") == []


def test_sim005_guarded_site_is_clean():
    guarded = (
        "def f(self):\n"
        "    tele = self.sim.telemetry\n"
        "    if tele.enabled:\n"
        "        tele.scope('h').counter('x').inc()\n"
    )
    unguarded = (
        "def f(self):\n"
        "    self.sim.telemetry.scope('h').counter('x').inc()\n"
    )
    assert lint_source(guarded, path="src/repro/hw/nic.py") == []
    assert [f.rule for f in lint_source(unguarded, path="src/repro/hw/nic.py")] \
        == ["SIM005"]


def test_sim005_fault_hook_needs_not_none_guard():
    guarded = (
        "def f(self, msg):\n"
        "    faults = self.faults\n"
        "    if faults is not None:\n"
        "        faults.on_transmit(msg)\n"
    )
    unguarded = (
        "def f(self, msg):\n"
        "    self.faults.on_transmit(msg)\n"
    )
    assert lint_source(guarded, path="src/repro/cluster/fabric.py") == []
    assert [f.rule
            for f in lint_source(unguarded, path="src/repro/cluster/fabric.py")] \
        == ["SIM005"]


def test_sim006_dataclass_and_exception_exempt():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Rec:\n"
        "    x: int = 0\n"
        "class BoomError(Exception):\n"
        "    pass\n"
        "class Naked:\n"
        "    def __init__(self):\n"
        "        self.x = 1\n"
    )
    findings = lint_source(src, path="src/repro/sim/thing.py")
    assert [f.rule for f in findings] == ["SIM006"]
    assert "Naked" in findings[0].message


# -- pragmas ---------------------------------------------------------------------


def test_pragma_with_reason_suppresses():
    src = ("import random  "
           "# sim: allow-random(fixture exercising the pragma path)\n")
    assert lint_source(src, path="t.py") == []


def test_pragma_on_previous_line_suppresses():
    src = ("# sim: allow-random(pragma-above style)\n"
           "import random\n")
    assert lint_source(src, path="t.py") == []


def test_pragma_without_reason_is_a_finding():
    src = "import random  # sim: allow-random()\n"
    rules = sorted(f.rule for f in lint_source(src, path="t.py"))
    # The violation is NOT suppressed and the empty pragma is flagged.
    assert rules == ["SIM000", "SIM001"]


def test_unknown_pragma_is_a_finding():
    src = "x = 1  # sim: allow-everything(because)\n"
    findings = lint_source(src, path="t.py")
    assert [f.rule for f in findings] == ["SIM000"]
    assert "unknown" in findings[0].message


def test_unused_pragma_is_a_finding():
    src = "x = 1  # sim: allow-random(nothing to suppress here)\n"
    findings = lint_source(src, path="t.py")
    assert [f.rule for f in findings] == ["SIM000"]
    assert "suppresses nothing" in findings[0].message


def test_every_lint_rule_has_a_pragma():
    lint_rules = [r for r in RULES
                  if (r.startswith("SIM0") or r.startswith("PROTO0"))
                  and r != "SIM000"]
    assert len(lint_rules) == 10
    assert set(PRAGMAS.values()) == set(lint_rules)


# -- output formats ---------------------------------------------------------------


def test_text_and_json_formats():
    findings = _lint_fixture(rules=["SIM001"])
    text = format_text(findings)
    assert "SIM001" in text and ":" in text
    doc = json.loads(format_json(findings))
    assert doc["count"] == 1
    entry = doc["findings"][0]
    assert entry["rule"] == "SIM001"
    assert entry["line"] > 0 and entry["path"] and entry["hint"]


def test_syntax_error_reports_sim000():
    findings = lint_source("def broken(:\n", path="t.py")
    assert [f.rule for f in findings] == ["SIM000"]


# -- the protocol-aware rulepack (PROTO001-PROTO004) ------------------------------

PROTO_FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                             "proto_violations.py")
#: Inside the PROTO rules' scope; outside the exempt Psn module and the
#: verify package (monitor implementations may touch hooks freely).
PROTO_VIRTUAL_PATH = os.path.join("src", "repro", "hw",
                                  "_proto_violations.py")


def _lint_proto_fixture(rules=None):
    with open(PROTO_FIXTURE, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=PROTO_VIRTUAL_PATH,
                       rules=rules or list(PROTO_LINT_RULES))


@pytest.mark.parametrize("rule", sorted(PROTO_LINT_RULES))
def test_proto_fixture_seeds_exactly_one_violation_per_rule(rule):
    findings = _lint_proto_fixture(rules=[rule])
    assert len(findings) == 1, [f.text() for f in findings]
    assert findings[0].rule == rule
    assert findings[0].hint


def test_proto001_modify_itself_is_exempt():
    src = (
        "class QueuePair:\n"
        "    def modify(self, new_state):\n"
        "        self._state = new_state\n"
        "    def elsewhere(self, QPState):\n"
        "        self._state = QPState.ERROR\n"
    )
    findings = lint_source(src, path="src/repro/verbs/qp.py",
                           rules=["PROTO001"])
    assert [f.line for f in findings] == [5]


def test_proto002_psn_helper_module_is_exempt():
    src = "def nxt(psn):\n    return (psn + 1) & 0xFFFFFF\n"
    assert lint_source(src, path="src/repro/verbs/wr.py",
                       rules=["PROTO002"]) == []
    # The same arithmetic elsewhere is only flagged on PSN-named operands.
    flagged = "def nxt(qp):\n    return qp.expected_psn + 1\n"
    assert [f.rule for f in lint_source(flagged, path="src/repro/hw/nic.py",
                                        rules=["PROTO002"])] == ["PROTO002"]


def test_proto002_psn_helper_calls_are_clean():
    src = (
        "from repro.verbs.wr import Psn\n"
        "def ahead(msg, qp):\n"
        "    return Psn.cmp(msg.psn, qp.expected_psn) > 0\n"
    )
    assert lint_source(src, path="src/repro/hw/nic.py",
                       rules=["PROTO002"]) == []


def test_proto003_completion_path_with_cqe_is_clean():
    src = (
        "def retire(self, qp, psn, cqe):\n"
        "    wr = qp.outstanding.pop(psn)\n"
        "    qp.sq_outstanding -= 1\n"
        "    yield from self._post_cqe(qp.send_cq, cqe)\n"
    )
    assert lint_source(src, path="src/repro/hw/nic.py",
                       rules=["PROTO003"]) == []


def test_proto004_guarded_monitor_hook_is_clean():
    src = (
        "def f(self, qp):\n"
        "    mon = self.sim._monitor\n"
        "    if mon is not None:\n"
        "        mon.on_responder_update(qp)\n"
    )
    assert lint_source(src, path="src/repro/hw/nic.py",
                       rules=["PROTO004"]) == []


def test_proto_rules_exempt_inside_verify_package():
    src = "def f(self, qp):\n    self._monitor.on_cqe(None, None)\n"
    assert lint_source(src, path="src/repro/verify/explorer.py",
                       rules=["PROTO004"]) == []


# -- the tree itself --------------------------------------------------------------


def test_repo_tree_is_clean():
    """Every finding on the tree is fixed or pragma'd: CI starts green."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = run_lint(root=root)
    assert findings == [], "\n" + format_text(findings)
