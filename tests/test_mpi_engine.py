"""MPI engine internals: protocol wire traffic, backpressure, matching."""

import pytest

from repro.cluster import build_cluster
from repro.errors import MPIError
from repro.hw.profiles import SYSTEM_L
from repro.mpi import ANY_SOURCE, MpiWorld
from repro.mpi.engine import EagerHdr, RtsHdr, _PostedRecv, match_first
from repro.sim import Simulator
from collections import deque


def build_world(size=2, transport="bypass", eager_threshold=8192):
    sim = Simulator(seed=8)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, size, transport=transport,
                     eager_threshold=eager_threshold)
    return sim, hosts, world


# -- matcher --------------------------------------------------------------------


def test_match_first_respects_order_and_wildcards():
    q = deque([
        _PostedRecv(req="r0", source=ANY_SOURCE, tag=5),
        _PostedRecv(req="r1", source=2, tag=ANY_SOURCE),
        _PostedRecv(req="r2", source=2, tag=5),
    ])
    hit = match_first(q, src_rank=2, tag=5)
    assert hit.req == "r0"  # earliest posted wins, even though later match better
    hit = match_first(q, src_rank=2, tag=9)
    assert hit.req == "r1"
    assert match_first(q, src_rank=3, tag=9) is None
    assert len(q) == 1


# -- protocol wire counts -------------------------------------------------------------


def wire_messages_for(nbytes, eager_threshold=8192):
    sim, hosts, world = build_world(eager_threshold=eager_threshold)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
        else:
            yield from comm.recv(0)

    world.run(program)
    # tx_msgs counts data-plane messages; RC acks are tracked separately.
    return sum(h.nic.counters.tx_msgs for h in hosts)


def test_eager_is_one_wire_message():
    assert wire_messages_for(1024) == 1


def test_rendezvous_is_three_wire_messages():
    # RTS + CTS + WRITE_WITH_IMM.
    assert wire_messages_for(1 << 20) == 3


def test_threshold_boundary():
    assert wire_messages_for(8192) == 1       # at the threshold: still eager
    assert wire_messages_for(8193) == 3       # above: rendezvous


def test_custom_threshold_respected():
    assert wire_messages_for(1024, eager_threshold=512) == 3


# -- backpressure ------------------------------------------------------------------


def test_many_small_sends_respect_sq_depth():
    """Posting far beyond the SQ depth must progress, not error out."""
    sim, hosts, world = build_world()
    n = 400  # >> sq_depth 128

    def program(comm):
        if comm.rank == 0:
            reqs = []
            for i in range(n):
                r = yield from comm.isend(1, nbytes=64, tag=i)
                reqs.append(r)
            yield from comm.waitall(reqs)
            return "sent"
        got = 0
        while got < n:
            yield from comm.recv(0)
            got += 1
        return got

    results = world.run(program)
    assert results == ["sent", n]


def test_self_send_rejected():
    sim, hosts, world = build_world()

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MPIError, match="self-sends"):
                yield from comm.isend(0, nbytes=8)
        return "done"
        yield

    assert world.run(program) == ["done", "done"]


def test_out_of_range_rank_rejected():
    sim, hosts, world = build_world()

    def program(comm):
        if comm.rank == 0:
            with pytest.raises(MPIError, match="out of range"):
                yield from comm.isend(5, nbytes=8)
        return "ok"
        yield

    world.run(program)


def test_wildcard_tag_and_source_fill_request_fields():
    sim, hosts, world = build_world()

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=128, tag=42)
            return None
        req = yield from comm.recv(ANY_SOURCE, ANY_SOURCE)
        return (req.source, req.tag, req.nbytes)

    results = world.run(program)
    assert results[1] == (0, 42, 128)


def test_rendezvous_zero_copy_no_bounce_memcpy():
    """Rendezvous must not charge eager copy costs: for very large
    messages the CoRD/bypass runtime gap stays tiny relative to size."""
    def one(nbytes):
        sim, hosts, world = build_world()

        def program(comm):
            if comm.rank == 0:
                t0 = comm.sim.now
                yield from comm.send(1, nbytes=nbytes)
                return comm.sim.now - t0
            yield from comm.recv(0)
            return None

        return world.run(program)[0]

    t_8m = one(8 << 20)
    t_4m = one(4 << 20)
    # Pure wire scaling: doubling the size ~doubles the time (copies would
    # add another ~560 us/8MiB on each side).
    wire_per_byte = 1 / SYSTEM_L.nic.link_bw
    assert (t_8m - t_4m) < (4 << 20) * wire_per_byte * 1.6


def test_unexpected_rendezvous_rts_matches_later_recv():
    sim, hosts, world = build_world()

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1 << 20, tag=3)
            return "sent"
        yield from comm.compute(100_000.0)  # RTS arrives before the recv
        req = yield from comm.recv(0, tag=3)
        return req.nbytes

    assert world.run(program) == ["sent", 1 << 20]


def test_socket_transport_message_order_preserved():
    sim, hosts, world = build_world(transport="ipoib")

    def program(comm):
        if comm.rank == 0:
            for i in range(20):
                yield from comm.send(1, data=bytes([i]), tag=1)
            return None
        got = []
        for _ in range(20):
            req = yield from comm.recv(0, tag=1)
            got.append(req.data[0])
        return got

    results = world.run(program)
    assert results[1] == list(range(20))


def test_progress_handles_interleaved_traffic_from_many_peers():
    sim, hosts, world = build_world(size=6)

    def program(comm):
        if comm.rank == 0:
            got = {}
            for _ in range(10):
                req = yield from comm.recv(ANY_SOURCE, tag=7)
                got[req.source] = got.get(req.source, 0) + 1
            return got
        for _ in range(2):
            yield from comm.send(0, nbytes=256, tag=7)
        return None

    results = world.run(program)
    assert results[0] == {r: 2 for r in range(1, 6)}
