"""Latency attribution: blame trees, critical path, probes, flamegraphs.

The contract under test: attribution is an exact post-processing pass —
every op's end-to-end latency decomposes into named stage time (queueing
+ service) with zero residual, the queue/service split is consistent with
serial-FIFO service at the contended components, and the pinned
attribution probes reproduce bit-identically run over run (the basis of
the ``tools/check_attribution.py`` CI gate).
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.analysis.critpath import critical_path, format_path, stage_totals
from repro.perftest.runner import (
    PerftestConfig,
    reset_run_stats,
    run_attributed,
    run_lat,
    run_stats_snapshot,
)
from repro.telemetry import (
    ATTRIBUTION_PROBES,
    ProbeSpec,
    aggregate,
    attribute_spans,
    build_spans,
    folded_stacks,
    run_probe,
)
from repro.telemetry.attribution import SERIAL_STAGES, WAIT_STAGES, base_stage


def _lat_blames(iters=30, **kw):
    cfg = PerftestConfig(iters=iters, warmup=5, seed=7, **kw)
    _result, sim, _pair = run_attributed(cfg, 4096, "lat")
    assert sim.trace.dropped == 0
    return attribute_spans(build_spans(sim.trace, op="post_send"))


def _bw_blames(size=32768, iters=60, **kw):
    cfg = PerftestConfig(iters=iters, warmup=10, window=16, seed=7, **kw)
    result, sim, _pair = run_attributed(cfg, size, "bw")
    assert sim.trace.dropped == 0
    return result, attribute_spans(build_spans(sim.trace, op="post_send"))


# -- blame trees --------------------------------------------------------------


def test_every_op_fully_explained_zero_residual():
    for blame in _lat_blames():
        assert blame.complete
        assert blame.residual_ns == pytest.approx(0.0, abs=1e-6)
        assert blame.explained_fraction == pytest.approx(1.0)
        # queue + service telescopes back to each stage's duration.
        for stage in blame.stages:
            assert stage.queue_ns + stage.service_ns == \
                pytest.approx(stage.duration_ns)
            assert stage.queue_ns >= 0 and stage.service_ns >= 0


def test_lat_pingpong_has_no_serial_queueing():
    # One op in flight at a time: no WQE ever waits behind another.
    for blame in _lat_blames():
        for stage in blame.stages:
            if stage.kind == "serial":
                assert stage.queue_ns == pytest.approx(0.0)
                assert stage.blocker is None


def test_cqe_stage_is_pure_wait():
    for blame in _lat_blames():
        for stage in blame.stages:
            if base_stage(stage.name) in WAIT_STAGES:
                assert stage.kind == "wait"
                assert stage.service_ns == pytest.approx(0.0)
                assert stage.queue_ns == pytest.approx(stage.duration_ns)


def test_windowed_bw_attributes_wire_queueing():
    result, blames = _bw_blames()
    assert result.gbit_per_s > 0
    queued = [
        s for b in blames for s in b.stages
        if s.kind == "serial" and s.queue_ns > 0
    ]
    # A 16-deep window over a serial wire port must queue almost always.
    assert len(queued) >= len(blames) // 2
    for stage in queued:
        assert stage.blocker is not None


def test_serial_split_is_consistent_with_fifo_service():
    """Within one serial server, service intervals never overlap and each
    queued stage's service starts exactly where its blocker's ended."""
    _result, blames = _bw_blames()
    by_stage = {(b.span_id, s.name): s for b in blames for s in b.stages}
    groups = {}
    for b in blames:
        for s in b.stages:
            if s.kind == "serial":
                key = (str(s.host), s.comp, base_stage(s.name))
                groups.setdefault(key, []).append(s)
    assert groups, "expected serial stages in a bw run"
    for items in groups.values():
        items.sort(key=lambda s: s.end_ns)
        for prev, cur in zip(items, items[1:]):
            # FIFO service: no two ops in service at once.
            assert cur.service_start_ns >= prev.end_ns - 1e-9
        for s in items:
            if s.blocker is not None:
                blocker = by_stage[s.blocker]
                assert blocker.end_ns == pytest.approx(s.service_start_ns)


def test_blame_tree_rendering_mentions_blocker():
    _result, blames = _bw_blames()
    queued = next(b for b in blames
                  if any(s.queue_ns > 0 and s.kind == "serial"
                         for s in b.stages))
    text = "\n".join(queued.tree_lines())
    assert "queue" in text and "behind span" in text
    assert "residual 0.0 ns" in text


# -- aggregation --------------------------------------------------------------


def test_aggregate_totals_match_blames():
    blames = _lat_blames()
    tables = aggregate(blames)
    assert len(tables) == 1
    table = tables[0]
    assert table.ops == len(blames)
    assert table.total_latency_ns == pytest.approx(
        sum(b.total_ns for b in blames))
    assert table.residual_ns == pytest.approx(0.0, abs=1e-6)
    assert table.explained_min == pytest.approx(1.0)
    stage_sum = sum(st.total_ns for st in table.stages.values())
    assert stage_sum == pytest.approx(table.total_latency_ns)
    for st in table.stages.values():
        assert st.queue_ns + st.service_ns == pytest.approx(st.total_ns)
        assert st.p50_ns <= st.p99_ns
    # Snapshot is JSON-clean and carries the gate's keys.
    snap = json.loads(json.dumps(table.snapshot()))
    assert snap["ops"] == table.ops
    assert set(snap["stages"]) == set(table.stages)


def test_aggregate_keeps_repeat_stage_instances_distinct():
    blames = _lat_blames()
    stages = aggregate(blames)[0].stages
    assert "rx_arrive" in stages and "rx_arrive#2" in stages


# -- critical path ------------------------------------------------------------


def test_critical_path_is_gapless_and_spans_the_run():
    _result, blames = _bw_blames()
    path = critical_path(blames)
    assert len(path) > len(max(blames, key=lambda b: b.end_ns).stages)
    for a, b in zip(path, path[1:]):
        assert b.start_ns == pytest.approx(a.end_ns)
    assert path[-1].end_ns == pytest.approx(
        max(b.end_ns for b in blames))
    # The path must cross ops (the whole point of chasing blockers).
    assert len({seg.span_id for seg in path}) > 1


def test_critical_path_of_bw_run_is_wire_bound():
    _result, blames = _bw_blames()
    path = critical_path(blames)
    totals = stage_totals(path)
    span = path[-1].end_ns - path[0].start_ns
    assert totals["tx_wire/service"] / span > 0.5
    text = format_path(path)
    assert "critical path" in text and "tx_wire/service" in text


def test_critical_path_empty_for_no_spans():
    assert critical_path([]) == []
    assert "no complete spans" in format_path([])


# -- folded stacks ------------------------------------------------------------


def test_folded_stacks_format_and_mass():
    blames = _lat_blames()
    lines = folded_stacks(blames=blames)
    assert lines
    total = 0
    for line in lines:
        frames, weight = line.rsplit(" ", 1)
        parts = frames.split(";")
        assert len(parts) == 6  # op;dataplane;host;comp;stage;leaf
        assert parts[0] == "post_send"
        assert parts[-1] in ("queue", "service")
        assert int(weight) > 0
        total += int(weight)
    explained = sum(b.explained_ns for b in blames)
    # Integer rounding per (frame, leaf) only.
    assert total == pytest.approx(explained, rel=1e-3)


def test_folded_stacks_from_trace():
    cfg = PerftestConfig(iters=10, warmup=2, seed=7)
    _r, sim, _pair = run_attributed(cfg, 4096, "lat")
    lines = folded_stacks(sim.trace, op="post_send")
    assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


# -- spans under fault retransmission (satellite) -----------------------------


def test_spans_telescope_under_fault_retransmission():
    cfg = PerftestConfig(iters=60, warmup=5, seed=7,
                         faults=FaultPlan(loss=0.05))
    _result, sim, (client, server) = run_attributed(cfg, 4096, "lat")
    retransmits = (client.host.nic.counters.retransmits
                   + server.host.nic.counters.retransmits)
    assert retransmits > 0, "fault plan never fired; raise loss or iters"
    spans = build_spans(sim.trace, op="post_send")
    complete = [s for s in spans if s.complete]
    assert complete
    for span in complete:
        times = [m.time for m in span.marks]
        assert times == sorted(times)
        total = sum(st.duration_ns for st in span.stages())
        assert total == pytest.approx(span.duration_ns)
    # Attribution still fully explains every completed (retried) op.
    blames = attribute_spans(spans)
    assert blames
    for blame in blames:
        assert blame.residual_ns == pytest.approx(0.0, abs=1e-6)
    # A retried op re-emits pipeline marks: some span shows repeat
    # instances beyond the ACK leg's usual #2.
    assert any(st.name.endswith("#3")
               for b in blames for st in b.stages)


# -- fast-forward x telemetry interplay (satellite) ---------------------------


def test_fastforward_disarms_under_attribution_trace():
    """A traced measurement must never fast-forward (jumping would skip
    span marks), and forcing the probe on must not change results."""
    cfg = PerftestConfig(iters=60, warmup=10, window=16, seed=7)
    base, sim_base, _ = run_attributed(cfg.with_(fastforward=False),
                                       32768, "bw")
    reset_run_stats()
    ff, sim_ff, _ = run_attributed(cfg.with_(fastforward=True), 32768, "bw")
    stats = run_stats_snapshot()
    assert stats["ff_jumps"] == 0 and stats["ff_cycles_skipped"] == 0
    assert vars(base) == vars(ff)

    spans_base = build_spans(sim_base.trace, op="post_send")
    spans_ff = build_spans(sim_ff.trace, op="post_send")
    assert len(spans_base) == len(spans_ff)
    assert all(s.complete for s in spans_ff) == \
        all(s.complete for s in spans_base)
    assert [s.stage_durations() for s in spans_ff] == \
        [s.stage_durations() for s in spans_base]


def test_telemetry_env_with_fastforward_exports_complete_spans(
        tmp_path, monkeypatch):
    """REPRO_TELEMETRY=1 + fast-forward on: the probe auto-disarms and the
    exported trace still holds every measured op's complete span."""
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    cfg = PerftestConfig(iters=40, warmup=5, seed=7, fastforward=True)
    reset_run_stats()
    result = run_lat(cfg, 4096)
    stats = run_stats_snapshot()
    assert stats["ff_jumps"] == 0  # disarmed by the live trace
    assert result.iters == 40

    traces = list(tmp_path.glob("*.trace.json"))
    assert len(traces) == 1
    doc = json.loads(traces[0].read_text())
    span_ids = {e["args"]["span"] for e in doc["traceEvents"]
                if e.get("cat") == "span.post_send"}
    # Ping-pong: each of warmup+iters rounds posts one send per side.
    assert len(span_ids) == 2 * (40 + 5)

    # And the measurement itself matches a telemetry-off, ff-off run.
    monkeypatch.delenv("REPRO_TELEMETRY")
    plain = run_lat(cfg.with_(fastforward=False), 4096)
    assert vars(plain) == vars(result)


# -- attribution probes -------------------------------------------------------


def test_probe_table_covers_all_figures():
    assert set(ATTRIBUTION_PROBES) == {"fig1", "fig3", "fig4", "fig5"}
    keys = [spec.key for specs in ATTRIBUTION_PROBES.values()
            for spec in specs]
    assert len(keys) == len(set(keys))
    for specs in ATTRIBUTION_PROBES.values():
        for spec in specs:
            assert ProbeSpec.fromdict(
                json.loads(json.dumps(spec.asdict()))) == spec
            # System A jitters; everything else must gate exactly.
            assert spec.exact == (spec.system != "A")


def test_run_probe_is_deterministic_and_fully_explained():
    spec = ATTRIBUTION_PROBES["fig3"][0]
    first = run_probe(spec)
    second = run_probe(spec)
    assert first == second  # the exact-gate premise
    assert first["dropped"] == 0
    assert first["ops"] > 0
    assert first["explained_min"] >= 0.95
    assert first["residual_ns"] == pytest.approx(0.0, abs=1e-6)
    assert first["spec"] == spec.asdict()


def test_bw_probe_records_queueing():
    spec = next(s for s in ATTRIBUTION_PROBES["fig4"] if s.kind == "bw")
    entry = run_probe(spec)
    assert entry["stages"]["tx_wire"]["queue_ns"] > 0


def test_serial_and_wait_stage_tables_are_disjoint():
    assert not (SERIAL_STAGES & WAIT_STAGES)
