"""perftest drivers: latency/bandwidth semantics and technique toggles."""

import pytest

from repro.errors import ConfigError
from repro.perftest.runner import PerftestConfig, default_sizes, run_bw, run_lat
from repro.perftest.techniques import Techniques
from repro.units import us


def test_default_sizes_ladder():
    sizes = default_sizes(max_bytes=64)
    assert sizes == [2, 4, 8, 16, 32, 64]


def test_config_validation():
    with pytest.raises(ConfigError):
        PerftestConfig(op="bogus")
    with pytest.raises(ConfigError):
        PerftestConfig(transport="UD", op="read")
    with pytest.raises(ConfigError):
        PerftestConfig(transport="XX")


def test_send_lat_reasonable_and_monotonic_in_size():
    cfg = PerftestConfig(iters=60, warmup=10)
    small = run_lat(cfg, 64)
    big = run_lat(cfg, 1 << 20)
    assert us(0.5) < small.avg_ns < us(5)
    assert big.avg_ns > small.avg_ns
    assert small.p99_ns >= small.p50_ns >= small.min_ns


def test_lat_statistics_fields():
    r = run_lat(PerftestConfig(iters=50, warmup=5), 4096)
    assert r.iters == 50
    assert len(r.samples) == 50
    assert r.avg_us == pytest.approx(r.avg_ns / 1000)


def test_read_lat_server_side_cord_free():
    """The fig. 3 anchor as a unit test."""
    base = run_lat(PerftestConfig(op="read", iters=60, warmup=10), 4096)
    srv_cd = run_lat(PerftestConfig(op="read", server="cord", iters=60, warmup=10), 4096)
    cli_cd = run_lat(PerftestConfig(op="read", client="cord", iters=60, warmup=10), 4096)
    assert srv_cd.avg_ns == pytest.approx(base.avg_ns, rel=0.02)
    assert cli_cd.avg_ns > base.avg_ns + 200


def test_write_lat_uses_memory_polling():
    r = run_lat(PerftestConfig(op="write", iters=60, warmup=10), 4096)
    assert us(0.5) < r.avg_ns < us(6)


def test_write_lat_needs_a_byte():
    with pytest.raises(ConfigError):
        run_lat(PerftestConfig(op="write", iters=10, warmup=2), 0)


def test_ud_lat_close_to_rc():
    rc = run_lat(PerftestConfig(iters=60, warmup=10), 2048)
    ud = run_lat(PerftestConfig(transport="UD", iters=60, warmup=10), 2048)
    assert ud.avg_ns == pytest.approx(rc.avg_ns, rel=0.3)


def test_bw_hits_line_rate_for_large_messages():
    r = run_bw(PerftestConfig(iters=300, warmup=60), 1 << 20)
    assert 80 < r.gbit_per_s < 100


def test_bw_small_messages_cpu_bound():
    r = run_bw(PerftestConfig(iters=600, warmup=150), 64)
    assert r.gbit_per_s < 5
    assert r.msg_rate_per_s > 1e6


def test_bw_window_parameter_matters():
    narrow = run_bw(PerftestConfig(iters=400, warmup=100, window=1), 4096)
    wide = run_bw(PerftestConfig(iters=400, warmup=100, window=64), 4096)
    assert wide.gbit_per_s > 2 * narrow.gbit_per_s  # pipelining wins


def test_read_and_write_bw_run():
    for op in ("read", "write"):
        r = run_bw(PerftestConfig(op=op, iters=300, warmup=60), 65536)
        assert 50 < r.gbit_per_s < 100


def test_ud_bw_respects_mtu():
    r = run_bw(PerftestConfig(transport="UD", iters=400, warmup=100), 4096)
    assert r.gbit_per_s > 10
    with pytest.raises(Exception):
        run_bw(PerftestConfig(transport="UD", iters=10, warmup=2), 8192)


def test_techniques_labels():
    assert Techniques().label == "baseline"
    assert Techniques(zero_copy=False).label == "no zero-copy"
    assert Techniques(polling=False, kernel_bypass=False).label == \
        "no kernel-bypass+polling"


def test_no_polling_latency_constant():
    base = run_lat(PerftestConfig(iters=60, warmup=10), 4096)
    nopoll = run_lat(PerftestConfig(iters=60, warmup=10,
                                    techniques=Techniques(polling=False)), 4096)
    assert nopoll.avg_ns - base.avg_ns > us(1)


def test_cord_and_techniques_compose():
    cfg = PerftestConfig(client="cord", server="cord", iters=60, warmup=10,
                         techniques=Techniques(zero_copy=False))
    r = run_lat(cfg, 65536)
    plain = run_lat(PerftestConfig(client="cord", server="cord", iters=60,
                                   warmup=10), 65536)
    assert r.avg_ns > plain.avg_ns  # the copy tax stacks on CoRD


def test_same_seed_same_results():
    a = run_lat(PerftestConfig(system="A", iters=40, warmup=5, seed=9), 1024)
    b = run_lat(PerftestConfig(system="A", iters=40, warmup=5, seed=9), 1024)
    assert a.samples == b.samples


def test_different_seed_different_jitter_on_A():
    a = run_lat(PerftestConfig(system="A", iters=40, warmup=5, seed=1), 1024)
    b = run_lat(PerftestConfig(system="A", iters=40, warmup=5, seed=2), 1024)
    assert a.samples != b.samples
