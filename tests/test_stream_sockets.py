"""Byte-stream socket semantics (fig. 2a's socket API shape)."""

import pytest

from repro.cluster import build_pair
from repro.errors import KernelError
from repro.hw.profiles import SYSTEM_L
from repro.kernel.sockets import StreamSocket
from repro.sim import Simulator


def make_streams():
    sim = Simulator(seed=4)
    _f, host_a, host_b = build_pair(sim, SYSTEM_L)
    dev_a = host_a.kernel.ensure_ipoib()
    dev_b = host_b.kernel.ensure_ipoib()
    registry = {}
    dev_a.registry = registry
    dev_b.registry = registry
    return sim, host_a, host_b, dev_a, dev_b


def test_stream_roundtrip_exact():
    sim, host_a, host_b, dev_a, dev_b = make_streams()
    payload = bytes(range(256)) * 512  # 128 KiB, crosses chunking
    out = {}

    def server():
        listener = StreamSocket(dev_b)
        listener.listen(80)
        conn = yield from listener.accept()
        data = yield from conn.recv_exact(host_b.cpus.pin(), len(payload))
        out["data"] = data

    def client():
        sock = StreamSocket(dev_a)
        yield from sock.connect(host_b.host_id, 80)
        n = yield from sock.send(host_a.cpus.pin(), payload)
        out["sent"] = n

    sim.process(server())
    sim.process(client())
    sim.run()
    assert out["sent"] == len(payload)
    assert out["data"] == payload


def test_partial_reads_are_streams_not_messages():
    sim, host_a, host_b, dev_a, dev_b = make_streams()
    out = {"reads": []}

    def server():
        listener = StreamSocket(dev_b)
        listener.listen(80)
        conn = yield from listener.accept()
        core = host_b.cpus.pin()
        # Read tiny pieces of what was sent as two larger writes: message
        # boundaries must not be visible.
        for _ in range(6):
            part = yield from conn.recv(core, 5)
            out["reads"].append(part)

    def client():
        sock = StreamSocket(dev_a)
        yield from sock.connect(host_b.host_id, 80)
        core = host_a.cpus.pin()
        yield from sock.send(core, b"aaaaaaaaaa")  # 10
        yield from sock.send(core, b"bbbbbbbbbbbbbbbbbbbb")  # 20

    sim.process(server())
    sim.process(client())
    sim.run()
    assert b"".join(out["reads"]) == b"aaaaaaaaaa" + b"b" * 20
    assert all(len(r) <= 5 for r in out["reads"])


def test_size_only_mode():
    sim, host_a, host_b, dev_a, dev_b = make_streams()
    out = {}

    def server():
        listener = StreamSocket(dev_b)
        listener.listen(80)
        conn = yield from listener.accept()
        data = yield from conn.recv_exact(host_b.cpus.pin(), 70_000)
        out["n"] = len(data)

    def client():
        sock = StreamSocket(dev_a)
        yield from sock.connect(host_b.host_id, 80)
        yield from sock.send(host_a.cpus.pin(), nbytes=70_000)

    sim.process(server())
    sim.process(client())
    sim.run()
    assert out["n"] == 70_000


def test_recv_validation():
    sim, _ha, _hb, dev_a, _db = make_streams()
    sock = StreamSocket(dev_a)

    def proc():
        yield from sock.recv(None, 0)

    with pytest.raises(KernelError):
        sim.run(sim.process(proc()))


def test_stream_far_slower_than_verbs_for_bulk():
    """The full socket path (copies + per-packet kernel work) caps well
    below the RDMA wire rate — the premise of the whole paper."""
    sim, host_a, host_b, dev_a, dev_b = make_streams()
    nbytes = 4 << 20
    out = {}

    def server():
        listener = StreamSocket(dev_b)
        listener.listen(80)
        conn = yield from listener.accept()
        yield from conn.recv_exact(host_b.cpus.pin(), nbytes)
        out["t"] = sim.now

    def client():
        sock = StreamSocket(dev_a)
        yield from sock.connect(host_b.host_id, 80)
        out["t0"] = sim.now
        yield from sock.send(host_a.cpus.pin(), nbytes=nbytes)

    sim.process(server())
    sim.process(client())
    sim.run()
    gbit = nbytes * 8 / (out["t"] - out["t0"])
    assert gbit < 60  # far below the 100 Gbit/s the RDMA path reaches
    assert gbit > 2
