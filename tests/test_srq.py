"""Shared receive queue semantics."""

import pytest

from repro.cluster import build_cluster
from repro.core.endpoint import make_endpoint
from repro.errors import VerbsError
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import us
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QPState, Transport
from repro.verbs.srq import SharedReceiveQueue
from repro.verbs.wr import Opcode, RecvWR, SendWR


def test_srq_validation():
    pd = ProtectionDomain(context=None)
    with pytest.raises(VerbsError):
        SharedReceiveQueue(pd, depth=0)
    srq = SharedReceiveQueue(pd, depth=2)
    srq.push(RecvWR(wr_id=1))
    srq.push(RecvWR(wr_id=2))
    with pytest.raises(VerbsError, match="full"):
        srq.check_post(RecvWR(wr_id=3))


def test_srq_fifo_pop():
    pd = ProtectionDomain(context=None)
    srq = SharedReceiveQueue(pd, depth=8)
    for i in range(4):
        srq.push(RecvWR(wr_id=i))
    assert [srq.pop().wr_id for _ in range(4)] == [0, 1, 2, 3]
    assert srq.recvs_consumed == 4


def test_srq_limit_event():
    sim = Simulator()
    pd = ProtectionDomain(context=None)
    srq = SharedReceiveQueue(pd, depth=16, limit=2)
    for i in range(4):
        srq.push(RecvWR(wr_id=i))
    ev = srq.limit_event(sim)
    srq.pop()
    assert not ev.triggered  # 3 left, still >= limit
    srq.pop()
    srq.pop()  # 1 left < limit -> fires
    assert ev.triggered


def _srq_world():
    """Two sender endpoints on host0 feeding two QPs that share one SRQ."""
    sim = Simulator(seed=5)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 2)
    src, dst = hosts
    state = {}

    def setup():
        recv_ep = yield from make_endpoint(dst, "bypass")
        srq = yield from recv_ep.ctx.create_srq(recv_ep.pd, depth=64)
        senders = []
        server_qps = []
        for _ in range(2):
            s = yield from make_endpoint(src, "bypass")
            qp = yield from recv_ep.ctx.create_qp(
                recv_ep.pd, Transport.RC, recv_ep.send_cq, recv_ep.recv_cq,
                srq=srq)
            yield from s.ctx.connect_qp(s.qp, (dst.host_id, qp.qpn))
            yield from recv_ep.ctx.connect_qp(qp, s.addr)
            senders.append(s)
            server_qps.append(qp)
        state.update(recv=recv_ep, srq=srq, senders=senders, qps=server_qps)

    sim.run(sim.process(setup()))
    return sim, state


def test_two_qps_share_one_srq_pool():
    sim, st = _srq_world()
    recv, srq, senders = st["recv"], st["srq"], st["senders"]

    def main():
        wrs = [RecvWR(wr_id=i, addr=recv.buf.addr, length=recv.buf.length,
                      lkey=recv.mr.lkey) for i in range(8)]
        yield from recv.dataplane.post_srq_recv_many(srq, wrs)
        for j, s in enumerate(senders):
            for i in range(3):
                yield from s.post_send(SendWR(
                    wr_id=j * 10 + i, opcode=Opcode.SEND, addr=s.buf.addr,
                    length=256, lkey=s.mr.lkey))
        got = []
        while len(got) < 6:
            cqes = yield from recv.wait_recv()
            got.extend(cqes)
        return got

    got = sim.run(sim.process(main()))
    assert len(got) == 6
    assert all(c.ok for c in got)
    # Both QPs delivered; the pool shrank by exactly 6.
    assert len({c.qp_num for c in got}) == 2
    assert len(st["srq"]) == 2


def test_post_recv_on_srq_qp_rejected():
    sim, st = _srq_world()
    recv = st["recv"]
    qp = st["qps"][0]

    def main():
        with pytest.raises(VerbsError, match="SRQ"):
            yield from recv.post_recv.__self__.dataplane.post_recv(
                qp, RecvWR(wr_id=1, addr=recv.buf.addr, length=64,
                           lkey=recv.mr.lkey))
        return "ok"
        yield

    assert sim.run(sim.process(main())) == "ok"


def test_empty_srq_rnr_then_recovery():
    sim, st = _srq_world()
    recv, srq, senders = st["recv"], st["srq"], st["senders"]

    def main():
        s = senders[0]
        yield from s.post_send(SendWR(wr_id=1, opcode=Opcode.SEND,
                                      addr=s.buf.addr, length=128,
                                      lkey=s.mr.lkey))
        yield sim.timeout(us(30))
        # Refill the SRQ after the first RNR NAK.
        yield from recv.dataplane.post_srq_recv_many(srq, [
            RecvWR(wr_id=9, addr=recv.buf.addr, length=recv.buf.length,
                   lkey=recv.mr.lkey)])
        cqes = yield from recv.wait_recv()
        return cqes[0].ok, recv.host.nic.counters.rnr_naks_sent

    ok, naks = sim.run(sim.process(main()))
    assert ok and naks >= 1


def test_srq_conservation_under_mixed_load():
    """N sends split across two SRQ-fed QPs consume exactly N pool slots."""
    sim, st = _srq_world()
    recv, srq, senders = st["recv"], st["srq"], st["senders"]
    total = 20

    def main():
        wrs = [RecvWR(wr_id=i, addr=recv.buf.addr, length=recv.buf.length,
                      lkey=recv.mr.lkey) for i in range(total + 4)]
        yield from recv.dataplane.post_srq_recv_many(srq, wrs)

        def pump(s, n, tag):
            for i in range(n):
                yield from s.post_send(SendWR(
                    wr_id=tag * 100 + i, opcode=Opcode.SEND, addr=s.buf.addr,
                    length=512, lkey=s.mr.lkey))
                if i % 4 == 3:
                    yield from s.wait_send()

        procs = [sim.process(pump(s, total // 2, j))
                 for j, s in enumerate(senders)]
        got = 0
        while got < total:
            got += len((yield from recv.wait_recv()))
        yield sim.all_of(procs)
        return got

    got = sim.run(sim.process(main()))
    sim.run()
    assert got == total
    assert srq.recvs_consumed == total
    assert len(srq) == 4  # exactly the surplus remains
