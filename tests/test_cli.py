"""CLI smoke tests (argument wiring + output shape)."""

import pytest

from repro.cli import build_parser, main


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "i5-4590" in out and "EPYC" in out
    assert "CoRD op ns" in out


def test_lat_command_single_size(capsys):
    assert main(["lat", "--size", "1024", "--iters", "30"]) == 0
    out = capsys.readouterr().out
    assert "1 KiB" in out and "avg us" in out


def test_lat_cord_slower(capsys):
    main(["lat", "--size", "4096", "--iters", "30"])
    base = capsys.readouterr().out
    main(["lat", "--size", "4096", "--iters", "30",
          "--client", "cord", "--server", "cord"])
    cord = capsys.readouterr().out

    def avg(text):
        # last row: "4 KiB  <avg>  <p50>  <p99>"
        return float(text.splitlines()[-1].split()[2])

    assert avg(cord) > avg(base)


def test_bw_command(capsys):
    assert main(["bw", "--size", "65536", "--iters", "300"]) == 0
    out = capsys.readouterr().out
    assert "Gbit/s" in out


def test_bw_technique_flags(capsys):
    assert main(["bw", "--size", "65536", "--iters", "300",
                 "--no-zero-copy"]) == 0
    out = capsys.readouterr().out
    assert "no zero-copy" in out


def test_lat_with_faults_spec(capsys):
    assert main(["lat", "--size", "256", "--iters", "20",
                 "--faults", "loss=0.05"]) == 0
    out = capsys.readouterr().out
    assert "avg us" in out


def test_bw_with_faults_spec(capsys):
    assert main(["bw", "--size", "4096", "--iters", "60",
                 "--faults", "loss=0.01,nodropctl"]) == 0
    out = capsys.readouterr().out
    assert "Gbit/s" in out


def test_faults_spec_rejected(capsys):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["lat", "--size", "256", "--iters", "5", "--faults", "loss=2.0"])


def test_npb_command(capsys):
    assert main(["npb", "--bench", "EP", "--klass", "S", "--ranks", "4",
                 "--iter-scale", "1.0", "--transports", "bypass", "cord"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out and "cord rel" in out


def test_trace_timeline_default(capsys):
    assert main(["trace", "--size", "1024"]) == 0
    out = capsys.readouterr().out
    assert "life of one 1024 B RC send" in out


def test_trace_chrome_format(capsys):
    import json

    assert main(["trace", "--format", "chrome"]) == 0
    doc = json.loads(capsys.readouterr().out)
    events = doc["traceEvents"]
    assert events
    # Perfetto-loadable: only complete/instant/metadata events, so there
    # are no begin/end pairs to (mis)balance; every X carries a duration.
    assert {e["ph"] for e in events} <= {"X", "i", "M"}
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all("dur" in e and "ts" in e for e in xs)
    stages = [e["name"] for e in xs if e["args"].get("op") == "post_send"]
    assert stages[:4] == ["post", "doorbell", "wqe_fetch", "tx_wire"]


def test_trace_jsonl_format(capsys):
    import json

    assert main(["trace", "--format", "jsonl"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert lines
    for line in lines:
        rec = json.loads(line)
        assert {"time", "category", "event"} <= rec.keys()


def test_trace_output_file(tmp_path):
    import json

    out = tmp_path / "trace.json"
    assert main(["trace", "--format", "chrome", "--output", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]


def test_metrics_command(capsys):
    import json

    assert main(["metrics", "--iters", "4"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["telemetry_enabled"] is True
    assert "host0" in snap["scopes"] and "host1" in snap["scopes"]
    ops = snap["scopes"]["host0"]["counters"]["dataplane.ops"]
    assert ops["by_key"]["BP.post_send"] == 4
    assert snap["hosts"]["host0"]["nic"]["tx_msgs"] > 0


def test_metrics_command_cord(capsys):
    import json

    assert main(["metrics", "--iters", "2", "--client", "cord",
                 "--server", "cord"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["scopes"]["host0"]["counters"]["cpu.syscalls"]["count"] > 0


def test_trace_folded_format(capsys):
    assert main(["trace", "--format", "folded", "--iters", "2"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line]
    assert lines
    for line in lines:
        frames, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert frames.split(";")[-1] in ("queue", "service")


def test_attribute_command(capsys):
    assert main(["attribute", "--size", "4096", "--iters", "20"]) == 0
    out = capsys.readouterr().out
    assert "attribution" in out and "queue ns" in out and "service ns" in out
    assert "explained" in out
    assert "tx_wire" in out


def test_attribute_command_bw_with_artifacts(tmp_path, capsys):
    import json

    json_path = tmp_path / "attr.json"
    folded_path = tmp_path / "attr.folded"
    assert main(["attribute", "--kind", "bw", "--size", "32768",
                 "--iters", "40", "--window", "8",
                 "--critical-path", "--tree", "0",
                 "--json", str(json_path),
                 "--flamegraph", str(folded_path)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "span" in out  # the blame tree
    doc = json.loads(json_path.read_text())
    assert doc["dropped"] == 0
    assert doc["tables"] and doc["tables"][0]["ops"] > 0
    assert doc["config"]["kind"] == "bw"
    folded = folded_path.read_text().splitlines()
    assert folded and all(line.rsplit(" ", 1)[1].isdigit() for line in folded)


def test_attribute_rejects_sweep(capsys):
    assert main(["attribute", "--sweep"]) == 2
    assert "drop --sweep" in capsys.readouterr().err


def test_warn_dropped_prints_to_stderr(capsys):
    from repro.cli import _warn_dropped
    from repro.sim.trace import Trace

    trace = Trace(enabled=True, max_records=2)
    for i in range(5):
        trace.emit(float(i), "x", "e")
    assert trace.dropped == 3
    _warn_dropped(trace)
    err = capsys.readouterr().err
    assert "WARNING" in err and "dropped 3 records" in err
    _warn_dropped(Trace(enabled=True))
    assert capsys.readouterr().err == ""


def test_parser_rejects_unknown_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_bad_profile():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["lat", "--system", "Z"])


def test_sanitize_lint_clean_tree(capsys):
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    assert main(["sanitize", "lint", "--root", root]) == 0
    assert "clean (0 findings)" in capsys.readouterr().out


def test_sanitize_lint_flags_violations(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "hot.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nimport time\nt0 = time.time()\n")
    assert main(["sanitize", "lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out and "SIM002" in out


def test_sanitize_lint_json_output(tmp_path):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    out_file = tmp_path / "findings.json"
    assert main(["sanitize", "lint", str(bad),
                 "--format", "json", "--output", str(out_file)]) == 1
    doc = json.loads(out_file.read_text())
    assert doc["count"] == 1
    assert doc["findings"][0]["rule"] == "SIM001"


def test_sanitize_lint_rule_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert main(["sanitize", "lint", str(bad), "--rules", "SIM003"]) == 0
    assert "clean" in capsys.readouterr().out


def test_sanitize_run_clean(capsys):
    assert main(["sanitize", "run", "--iters", "4"]) == 0
    assert "clean (0 findings)" in capsys.readouterr().out


def test_sanitize_run_cord_json(capsys):
    import json

    assert main(["sanitize", "run", "--client", "cord", "--server", "cord",
                 "--iters", "2", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == {"findings": [], "count": 0}
