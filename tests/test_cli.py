"""CLI smoke tests (argument wiring + output shape)."""

import pytest

from repro.cli import build_parser, main


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "i5-4590" in out and "EPYC" in out
    assert "CoRD op ns" in out


def test_lat_command_single_size(capsys):
    assert main(["lat", "--size", "1024", "--iters", "30"]) == 0
    out = capsys.readouterr().out
    assert "1 KiB" in out and "avg us" in out


def test_lat_cord_slower(capsys):
    main(["lat", "--size", "4096", "--iters", "30"])
    base = capsys.readouterr().out
    main(["lat", "--size", "4096", "--iters", "30",
          "--client", "cord", "--server", "cord"])
    cord = capsys.readouterr().out

    def avg(text):
        # last row: "4 KiB  <avg>  <p50>  <p99>"
        return float(text.splitlines()[-1].split()[2])

    assert avg(cord) > avg(base)


def test_bw_command(capsys):
    assert main(["bw", "--size", "65536", "--iters", "300"]) == 0
    out = capsys.readouterr().out
    assert "Gbit/s" in out


def test_bw_technique_flags(capsys):
    assert main(["bw", "--size", "65536", "--iters", "300",
                 "--no-zero-copy"]) == 0
    out = capsys.readouterr().out
    assert "no zero-copy" in out


def test_npb_command(capsys):
    assert main(["npb", "--bench", "EP", "--klass", "S", "--ranks", "4",
                 "--iter-scale", "1.0", "--transports", "bypass", "cord"]) == 0
    out = capsys.readouterr().out
    assert "EP" in out and "cord rel" in out


def test_parser_rejects_unknown_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_bad_profile():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["lat", "--system", "Z"])
