"""Golden determinism: benchmark numbers are bit-stable, not just "close".

Three properties the perf work must never break:

1. **Fast path is invisible.**  ``REPRO_SIM_FASTPATH=0`` forces every
   scalar yield back through real ``Timeout`` events; the resulting tables
   must be *bit-identical*, proving the pooled-resume fast path is a pure
   engine optimization.
2. **Golden values.**  One RC-send point per dataplane on system L (whose
   profile disables turbo and syscall jitter, so the numbers are plain
   float arithmetic — no libm variance) must reproduce exactly.  A perf
   change that shifts these numbers changed simulation semantics, not
   just speed.
3. **Worker-count invariance.**  ``parallel_sweep`` must return the same
   bits serially and fanned over processes, in point order.
"""

import pytest

from repro.bench_support import parallel_sweep
from repro.perftest.runner import PerftestConfig, run_bw, run_lat

#: Small fixed workload — independent of REPRO_BENCH_SCALE on purpose.
SIZE = 4096
ITERS = 60
WARMUP = 10
WINDOW = 16

#: Exact values at seed 7 for the workload above (see property 2).
GOLDEN = {
    "bypass": {
        "bw_duration_ns": 22546.400000001304,
        "bw_gbit_per_s": 87.20150445303402,
        "lat_avg_us": 2.2915200000000184,
    },
    "cord": {
        "bw_duration_ns": 32771.52000000002,
        "bw_gbit_per_s": 59.99355537979315,
        "lat_avg_us": 3.3865200000000186,
    },
}


def _cfg(dataplane: str, system: str = "L") -> PerftestConfig:
    return PerftestConfig(system=system, client=dataplane, server=dataplane,
                          iters=ITERS, warmup=WARMUP, window=WINDOW)


def _measure(dataplane: str, system: str = "L") -> dict:
    cfg = _cfg(dataplane, system)
    bw = run_bw(cfg, SIZE)
    lat = run_lat(cfg, SIZE)
    return {
        "bw_duration_ns": bw.duration_ns,
        "bw_gbit_per_s": bw.gbit_per_s,
        "lat_avg_us": lat.avg_us,
    }


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_golden_values_system_l(dataplane):
    measured = _measure(dataplane)
    for key, want in GOLDEN[dataplane].items():
        got = measured[key]
        assert repr(got) == repr(want), (
            f"{dataplane}/{key}: got {got!r}, golden {want!r} — a perf "
            "change altered simulation results"
        )


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_fastpath_bit_identical(dataplane, monkeypatch):
    fast = _measure(dataplane)
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    slow = _measure(dataplane)
    assert {k: repr(v) for k, v in fast.items()} == \
           {k: repr(v) for k, v in slow.items()}


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_fastforward_bit_identical(dataplane, monkeypatch):
    """Steady-state fast-forward must be invisible in the golden values:
    the armed run skips cycles yet reproduces the exact bits (property 1
    applied to the extrapolation layer; the full matrix lives in
    tests/test_fastforward.py)."""
    base = _measure(dataplane)
    monkeypatch.setenv("REPRO_FASTFORWARD", "1")
    ff = _measure(dataplane)
    assert {k: repr(v) for k, v in base.items()} == \
           {k: repr(v) for k, v in ff.items()}
    for key, want in GOLDEN[dataplane].items():
        assert repr(ff[key]) == repr(want)


def test_fastpath_bit_identical_jittered(monkeypatch):
    """System A adds lognormal syscall jitter and DVFS exp() decay — the
    hardest case for event-ordering equivalence between the two paths."""
    fast = _measure("cord", system="A")
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    slow = _measure("cord", system="A")
    assert {k: repr(v) for k, v in fast.items()} == \
           {k: repr(v) for k, v in slow.items()}


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_telemetry_bit_identical(dataplane, monkeypatch, tmp_path):
    """Full telemetry (tracing + metrics + exporters) is observation only:
    enabling it must not move a single bit of any measured result."""
    baseline = _measure(dataplane)
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    with_tele = _measure(dataplane)
    assert {k: repr(v) for k, v in baseline.items()} == \
           {k: repr(v) for k, v in with_tele.items()}
    # The runs really did trace + export (not a silently-off telemetry path).
    assert list(tmp_path.glob("*.trace.json"))
    assert list(tmp_path.glob("*.metrics.json"))


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_faults_on_golden_determinism(dataplane):
    """Fault injection draws from named rng streams only: a faults-on run
    must be bit-identical to itself, actually exercise loss recovery, and
    a zero-loss plan must be bit-identical to no plan at all."""
    from repro.faults import FaultPlan

    lossy = _cfg(dataplane).with_(faults=FaultPlan(loss=0.05))
    r1 = run_bw(lossy, SIZE)
    r2 = run_bw(lossy, SIZE)
    assert repr(r1.duration_ns) == repr(r2.duration_ns)
    assert (r1.retransmits, r1.ack_timeouts) == (r2.retransmits, r2.ack_timeouts)
    assert r1.retransmits > 0  # recovery really ran

    clean = run_bw(_cfg(dataplane), SIZE)
    hooked = run_bw(_cfg(dataplane).with_(faults=FaultPlan(loss=0.0)), SIZE)
    assert repr(hooked.duration_ns) == repr(clean.duration_ns)
    assert repr(clean.duration_ns) == repr(GOLDEN[dataplane]["bw_duration_ns"])
    assert hooked.retransmits == 0


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_sanitizers_on_bit_identical_and_clean(dataplane, monkeypatch):
    """``REPRO_SANITIZE=1`` is observation only: the instrumented dispatch
    loop and rng proxies must not move a single bit of any result, and the
    golden no-fault workloads must produce zero runtime findings."""
    from repro.sanitize import drain_global_findings

    baseline = _measure(dataplane)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    drain_global_findings()
    sanitized = _measure(dataplane)
    findings = drain_global_findings()
    assert findings == [], "\n".join(f.text() for f in findings)
    assert {k: repr(v) for k, v in baseline.items()} == \
           {k: repr(v) for k, v in sanitized.items()}


def test_sanitizers_on_jittered_bit_identical(monkeypatch):
    """System A (syscall jitter + DVFS decay) draws heavily from the rng
    streams the sanitizer wraps — the hardest case for proxy invisibility."""
    from repro.sanitize import drain_global_findings

    baseline = _measure("cord", system="A")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    drain_global_findings()
    sanitized = _measure("cord", system="A")
    assert drain_global_findings() == []
    assert {k: repr(v) for k, v in baseline.items()} == \
           {k: repr(v) for k, v in sanitized.items()}


@pytest.mark.parametrize("dataplane", ["bypass", "cord"])
def test_rx_contention_on_seed_stability(dataplane):
    """The receiver-side contention model must be exactly as deterministic
    as the rest of the engine: a contended 4→1 incast reruns bit-identical
    (including queue peaks and attribution-relevant flow spans), and the
    two-host golden workloads — where ``rx_contention`` stays off under
    ``"auto"`` — still reproduce their committed values bit for bit."""
    from repro.perftest.incast import IncastConfig, run_incast

    cfg = IncastConfig(dataplane=dataplane, senders=4, size=16 * 1024,
                       msgs_per_sender=10, window=8, seed=7)
    r1 = run_incast(cfg)
    r2 = run_incast(cfg)
    assert repr(r1.duration_ns) == repr(r2.duration_ns)
    assert tuple(map(repr, r1.flow_goodputs_gbit)) == \
           tuple(map(repr, r2.flow_goodputs_gbit))
    assert r1.rx_queue_peak_bytes == r2.rx_queue_peak_bytes > 0

    golden = run_bw(_cfg(dataplane), SIZE)
    assert repr(golden.duration_ns) == repr(GOLDEN[dataplane]["bw_duration_ns"])


def _sweep_point(size: int) -> float:
    return run_bw(_cfg("bypass"), size).duration_ns


def test_parallel_sweep_worker_invariance():
    sizes = [256, 4096, 65536]
    serial = parallel_sweep(_sweep_point, sizes, workers=1)
    fanned = parallel_sweep(_sweep_point, sizes, workers=2)
    assert [repr(x) for x in serial] == [repr(x) for x in fanned]
