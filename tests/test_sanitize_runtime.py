"""The SIM101-SIM103 runtime sanitizers: races, RNG discipline, time travel."""

import heapq

import pytest

from repro.errors import SimulationError
from repro.sanitize import drain_global_findings, findings_of
from repro.sanitize.runtime import GLOBAL_FINDINGS, env_sanitize
from repro.sim import Resource, Simulator, Store
from repro.sim.engine import _Callback


@pytest.fixture(autouse=True)
def _clean_global_findings():
    drain_global_findings()
    yield
    drain_global_findings()


def _rules(findings):
    return [f.rule for f in findings]


# -- activation -------------------------------------------------------------------


def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert Simulator()._sanitize is None


def test_env_var_activates(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert env_sanitize()
    sim = Simulator()
    assert sim._sanitize is not None
    # Explicit argument wins over the environment.
    assert Simulator(sanitize=False)._sanitize is None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not env_sanitize()
    assert Simulator()._sanitize is None


def test_findings_of_unsanitized_sim_is_empty():
    assert findings_of(Simulator()) == []


# -- SIM101: same-timestamp races -------------------------------------------------


def _two_requesters(stagger=0.0):
    sim = Simulator(sanitize=True)
    core = Resource(sim, capacity=1, name="core0")

    def worker(delay):
        yield sim.timeout(delay)
        req = core.request()
        yield req
        yield sim.timeout(5.0)
        core.release(req)

    sim.process(worker(10.0), name="proc_a")
    sim.process(worker(10.0 + stagger), name="proc_b")
    sim.run()
    return findings_of(sim)


def test_resource_race_at_same_timestamp_names_both_events():
    findings = _two_requesters(stagger=0.0)
    assert _rules(findings) == ["SIM101"]
    msg = findings[0].message
    assert "resource 'core0'" in msg
    assert "t=10.0" in msg
    assert "resume:proc_a" in msg and "resume:proc_b" in msg
    assert "`request`" in msg
    assert findings[0].source == "runtime"


def test_staggered_requests_are_clean():
    assert _two_requesters(stagger=1.0) == []


def test_racing_findings_reach_the_global_registry():
    _two_requesters(stagger=0.0)
    assert _rules(drain_global_findings()) == ["SIM101"]
    # ...and draining really clears it.
    assert GLOBAL_FINDINGS == []


def test_store_getter_race_flagged():
    sim = Simulator(sanitize=True)
    queue = Store(sim, name="cq0")

    def consumer():
        yield sim.timeout(7.0)
        yield queue.get()

    sim.process(consumer(), name="poll_a")
    sim.process(consumer(), name="poll_b")
    sim.call_later(20.0, lambda _: queue.put("cqe1"))
    sim.call_later(21.0, lambda _: queue.put("cqe2"))
    sim.run()
    findings = findings_of(sim)
    assert _rules(findings) == ["SIM101"]
    assert "store 'cq0'" in findings[0].message
    assert "`get`" in findings[0].message


def test_producer_consumer_handoff_is_not_a_race():
    # A put serving a parked get is cross-kind: the outcome commutes.
    sim = Simulator(sanitize=True)
    queue = Store(sim, name="wq0")

    def consumer():
        item = yield queue.get()
        assert item == "wqe"

    sim.process(consumer(), name="poller")
    sim.call_later(10.0, lambda _: queue.put("wqe"))
    sim.run()
    assert findings_of(sim) == []


# -- SIM102: rng stream discipline ------------------------------------------------


def test_stream_shared_by_two_components_flagged():
    sim = Simulator(seed=1, sanitize=True)

    def comp_a(_):
        sim.rng.stream("shared").integers(0, 10)

    def comp_b(_):
        sim.rng.stream("shared").integers(0, 10)

    sim.call_later(1.0, comp_a)
    sim.call_later(2.0, comp_b)
    sim.run()
    findings = findings_of(sim)
    assert _rules(findings) == ["SIM102"]
    msg = findings[0].message
    assert "'shared'" in msg and "comp_a" in msg and "comp_b" in msg


def test_one_stream_per_component_is_clean():
    sim = Simulator(seed=1, sanitize=True)

    def comp(_):
        sim.rng.stream("mine").integers(0, 10)

    sim.call_later(1.0, comp)
    sim.call_later(2.0, comp)
    sim.run()
    assert findings_of(sim) == []


def test_draw_outside_dispatch_flagged():
    sim = Simulator(seed=1, sanitize=True)
    sim.rng.stream("setup").integers(0, 10)  # setup draws are legal
    sim.call_later(1.0, lambda _: None)
    sim.run()
    sim.rng.stream("setup").integers(0, 10)  # ...post-run draws are not
    findings = findings_of(sim)
    assert _rules(findings) == ["SIM102"]
    assert "outside engine execution" in findings[0].message


def test_sanitized_draws_match_unsanitized_draws():
    plain = Simulator(seed=42).rng.stream("flow")
    wrapped = Simulator(seed=42, sanitize=True).rng.stream("flow")
    assert list(plain.integers(0, 1 << 30, size=8)) \
        == list(wrapped.integers(0, 1 << 30, size=8))


# -- SIM103: time travel ----------------------------------------------------------


def test_past_dispatch_recorded_before_engine_raises():
    sim = Simulator(sanitize=True)

    def plant(_):
        rec = _Callback()
        rec.fn = lambda _a: None
        heapq.heappush(sim._queue, (5.0, 1, sim._seq, rec))
        sim._seq += 1

    sim.call_later(10.0, plant)
    with pytest.raises(SimulationError):
        sim.run()
    findings = findings_of(sim)
    assert _rules(findings) == ["SIM103"]
    assert "t=5.0" in findings[0].message
    assert "t=10.0" in findings[0].message


# -- determinism of the sanitizers themselves -------------------------------------


def test_sanitized_run_is_bit_identical_to_unsanitized():
    def measure(sanitize):
        sim = Simulator(seed=7, sanitize=sanitize)
        core = Resource(sim, capacity=2, name="core")
        queue = Store(sim, name="q")
        done = []

        def producer():
            rng = sim.rng.stream("producer")
            for i in range(50):
                yield sim.timeout(float(rng.integers(1, 9)))
                yield queue.put(i)

        def consumer():
            rng = sim.rng.stream("consumer")
            while len(done) < 50:
                item = yield queue.get()
                req = core.request()
                yield req
                yield sim.timeout(float(rng.integers(1, 5)))
                core.release(req)
                done.append((sim.now, item))

        sim.process(producer(), name="prod")
        sim.process(consumer(), name="cons")
        sim.run()
        return done

    assert measure(False) == measure(True)
