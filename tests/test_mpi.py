"""MPI layer tests: point-to-point protocols, matching, collectives."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.hw.profiles import SYSTEM_L
from repro.mpi import ANY_SOURCE, MpiWorld
from repro.sim import Simulator


def run_world(program, size=4, transport="bypass", hosts_n=2, **kwargs):
    sim = Simulator(seed=3)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, hosts_n)
    world = MpiWorld(sim, hosts, size, transport=transport, **kwargs)
    return world.run(program), world


TRANSPORTS = ["bypass", "cord", "ipoib"]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_eager_send_recv_payload(transport):
    payload = b"hello-mpi"

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, data=payload, tag=7)
            return "sent"
        if comm.rank == 1:
            req = yield from comm.recv(0, tag=7)
            return (req.source, req.tag, req.nbytes, req.data)
        return None
        yield

    results, _ = run_world(program, size=2, transport=transport)
    assert results[0] == "sent"
    assert results[1] == (0, 7, len(payload), payload)


@pytest.mark.parametrize("transport", ["bypass", "cord"])
def test_rendezvous_large_message(transport):
    """Messages above the eager threshold take the RTS/CTS/WRITE path."""
    nbytes = 256 * 1024
    data = np.arange(nbytes // 8, dtype=np.float64)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, data=data)
            return comm.engine.host.nic.counters.tx_msgs
        req = yield from comm.recv(0)
        return (req.nbytes, float(np.sum(req.data)))

    results, world = run_world(program, size=2, transport=transport)
    assert results[1][0] == nbytes
    assert results[1][1] == float(np.sum(data))
    # The rendezvous must have used RDMA write-with-imm (zero copy): check
    # that the receiver never copied the payload through the bounce path.


def test_eager_vs_rendezvous_threshold():
    """Crossing the eager threshold switches protocol (visible in counters)."""

    def program(comm, nbytes):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
            return comm.engine.msgs_sent
        req = yield from comm.recv(0)
        return req.nbytes

    # 1 KiB: one SEND on the wire.  1 MiB: RTS + CTS + WRITE (3 wire msgs).
    sim = Simulator(seed=3)
    _f, hosts = build_cluster(sim, SYSTEM_L, 2)
    world = MpiWorld(sim, hosts, 2, transport="bypass")
    world.run(program, 1024)
    small_wire = sum(h.nic.counters.tx_msgs for h in hosts)

    sim2 = Simulator(seed=3)
    _f2, hosts2 = build_cluster(sim2, SYSTEM_L, 2)
    world2 = MpiWorld(sim2, hosts2, 2, transport="bypass")
    world2.run(program, 1 << 20)
    big_wire = sum(h.nic.counters.tx_msgs for h in hosts2)
    assert big_wire > small_wire  # extra control messages for rendezvous


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_any_source_matching(transport):
    def program(comm):
        if comm.rank == 0:
            got = []
            for _ in range(3):
                req = yield from comm.recv(ANY_SOURCE, tag=5)
                got.append(req.source)
            return sorted(got)
        yield from comm.send(0, nbytes=64, tag=5)
        return None

    results, _ = run_world(program, size=4, transport=transport)
    assert results[0] == [1, 2, 3]


def test_message_ordering_same_source_tag():
    """MPI guarantees non-overtaking between a sender/receiver pair."""

    def program(comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(1, data=bytes([i]) * 32, tag=1)
            return None
        got = []
        for _ in range(10):
            req = yield from comm.recv(0, tag=1)
            got.append(req.data[0])
        return got

    results, _ = run_world(program, size=2)
    assert results[1] == list(range(10))


def test_unexpected_message_queue():
    """A send arriving before the recv is posted must still match."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, data=b"early", tag=9)
            return None
        # Compute for a while before posting the recv.
        yield from comm.compute(50_000.0)
        req = yield from comm.recv(0, tag=9)
        return req.data

    results, _ = run_world(program, size=2)
    assert results[1] == b"early"


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_barrier_synchronizes(transport):
    def program(comm):
        # Stagger arrival; everyone must leave after the latest arriver.
        yield from comm.compute(float(comm.rank) * 10_000.0)
        yield from comm.barrier()
        return comm.sim.now

    results, _ = run_world(program, size=4, transport=transport)
    assert max(results) - min(results) < 10_000.0  # all left together-ish


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_allreduce_sum(transport):
    def program(comm):
        data = np.full(128, float(comm.rank + 1))
        out = yield from comm.allreduce(data=data)
        return float(out[0])

    results, _ = run_world(program, size=4, transport=transport)
    assert results == [10.0] * 4  # 1+2+3+4


def test_allreduce_non_power_of_two():
    def program(comm):
        out = yield from comm.allreduce(data=np.array([float(comm.rank)]))
        return float(out[0])

    results, _ = run_world(program, size=6)
    assert results == [15.0] * 6


def test_bcast_from_nonzero_root():
    def program(comm):
        data = np.arange(16) * 2 if comm.rank == 2 else None
        out = yield from comm.bcast(2, nbytes=128, data=data)
        return int(out[3])

    results, _ = run_world(program, size=5)
    assert results == [6] * 5


def test_reduce_max_at_root():
    def program(comm):
        out = yield from comm.reduce(0, data=np.array([float(comm.rank)]),
                                     op=__import__("repro.mpi.collectives", fromlist=["MAX"]).MAX)
        return None if out is None else float(out[0])

    results, _ = run_world(program, size=4)
    assert results[0] == 3.0
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_allgather_collects_all(transport):
    def program(comm):
        out = yield from comm.allgather(data=np.array([comm.rank * 10]))
        return [int(b[0]) for b in out]

    results, _ = run_world(program, size=4, transport=transport)
    assert all(r == [0, 10, 20, 30] for r in results)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_alltoall_exchanges_blocks(transport):
    def program(comm):
        blocks = [np.array([comm.rank * 100 + peer]) for peer in range(comm.size)]
        out = yield from comm.alltoall(8, data_per_peer=blocks)
        return [int(b[0]) for b in out]

    results, _ = run_world(program, size=4, transport=transport)
    for rank, row in enumerate(results):
        assert row == [src * 100 + rank for src in range(4)]


def test_alltoallv_varying_sizes():
    def program(comm):
        counts = [64 * (peer + 1) for peer in range(comm.size)]
        out = yield from comm.alltoallv(counts)
        return comm.engine.bytes_sent

    results, _ = run_world(program, size=4)
    assert all(r > 0 for r in results)


def test_gather_scatter_roundtrip():
    def program(comm):
        block = yield from comm.scatter(0, 16,
                                        data_per_peer=[np.array([i]) for i in range(comm.size)]
                                        if comm.rank == 0 else None)
        got = yield from comm.gather(0, data=block * 2)
        if comm.rank == 0:
            return [int(b[0]) for b in got]
        return None

    results, _ = run_world(program, size=4)
    assert results[0] == [0, 2, 4, 6]


def test_cord_mpi_slower_than_bypass_small_messages():
    """The dataplane tax shows up in MPI small-message exchanges."""

    def program(comm):
        for _ in range(50):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=64)
                yield from comm.recv(1)
            else:
                yield from comm.recv(0)
                yield from comm.send(0, nbytes=64)
        return comm.sim.now

    r_bp, _ = run_world(program, size=2, transport="bypass")
    r_cd, _ = run_world(program, size=2, transport="cord")
    assert r_cd[0] > r_bp[0]


def test_ipoib_much_slower_than_verbs():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=4096)
            return None
        req = yield from comm.recv(0)
        return comm.sim.now

    r_bp, _ = run_world(program, size=2, transport="bypass")
    r_ip, _ = run_world(program, size=2, transport="ipoib")
    assert r_ip[1] > 2 * r_bp[1]


def test_same_host_ranks_use_nic_loopback():
    """No shared memory: two ranks on one host still move via the NIC."""

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024)
        else:
            yield from comm.recv(0)
        return None

    sim = Simulator(seed=3)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 1)
    world = MpiWorld(sim, hosts, 2, transport="bypass")
    world.run(program)
    assert _fabric.messages_carried > 0  # traversed the fabric loopback
