"""Kernel model: completion channels/IRQs, IPoIB sockets, softirq."""

import pytest

from repro.cluster import build_pair
from repro.errors import KernelError
from repro.hw.profiles import SYSTEM_A, SYSTEM_L
from repro.kernel.netstack import NetstackProfile
from repro.sim import Simulator
from repro.units import us


def make_sockets(system=SYSTEM_L, seed=2):
    sim = Simulator(seed=seed)
    _fabric, host_a, host_b = build_pair(sim, system)
    dev_a = host_a.kernel.ensure_ipoib()
    dev_b = host_b.kernel.ensure_ipoib()
    registry = {}
    dev_a.registry = registry
    dev_b.registry = registry
    return sim, host_a, host_b, dev_a, dev_b


def test_socket_connect_send_recv_roundtrip():
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    payload = b"x" * 5000
    out = {}

    def server():
        listener = dev_b.socket()
        listener.listen(80)
        conn = yield from listener.accept()
        src, nbytes, data = yield from conn.recv(host_b.cpus.pin())
        out["got"] = (src, nbytes, data)

    def client():
        sock = dev_a.socket()
        yield from sock.connect(host_b.host_id, 80)
        yield from sock.send(host_a.cpus.pin(), len(payload), payload)

    sim.process(server())
    sim.process(client())
    sim.run()
    assert out["got"] == (host_a.host_id, len(payload), payload)


def test_socket_connect_refused():
    sim, host_a, _hb, dev_a, _db = make_sockets()

    def client():
        sock = dev_a.socket()
        yield from sock.connect(1, 9999)

    with pytest.raises(KernelError, match="refused"):
        sim.run(sim.process(client()))


def test_double_bind_rejected():
    _sim, _ha, _hb, dev_a, _db = make_sockets()
    dev_a.bind(dev_a.socket(), 42)
    with pytest.raises(KernelError, match="already bound"):
        dev_a.bind(dev_a.socket(), 42)


def test_sendto_recvfrom_with_meta():
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    out = {}

    def receiver():
        sock = dev_b.socket()
        dev_b.bind(sock, 7)
        src, nbytes, _data, meta = yield from sock.recvfrom(host_b.cpus.pin())
        out["r"] = (src, nbytes, meta)

    def sender():
        sock = dev_a.socket()
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, 7, 1234,
                               meta={"tag": 9})

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert out["r"] == (host_a.host_id, 1234, {"tag": 9})


def test_large_message_segmented_and_reassembled():
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    nbytes = 300_000  # several 64 KiB bursts
    payload = bytes(range(256)) * (300_000 // 256) + b"\x00" * (300_000 % 256)
    out = {}

    def receiver():
        sock = dev_b.socket()
        dev_b.bind(sock, 7)
        _src, got_bytes, data, _meta = yield from sock.recvfrom(host_b.cpus.pin())
        out["r"] = (got_bytes, data)

    def sender():
        sock = dev_a.socket()
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, 7, nbytes,
                               data=payload)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert out["r"][0] == nbytes
    assert out["r"][1] == payload


def test_interleaved_senders_reassemble_correctly():
    """Segments from two same-host senders must not cross-contaminate."""
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    out = []

    def receiver():
        sock = dev_b.socket()
        dev_b.bind(sock, 7)
        for _ in range(2):
            _s, n, data, meta = yield from sock.recvfrom(host_b.cpus.pin())
            out.append((meta, n, data[:1]))

    def sender(tag, fill):
        sock = dev_a.socket()
        payload = bytes([fill]) * 200_000
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, 7, 200_000,
                               meta=tag, data=payload)

    sim.process(receiver())
    sim.process(sender("s1", 0xAA))
    sim.process(sender("s2", 0xBB))
    sim.run()
    by_tag = {meta: first for meta, _n, first in out}
    assert by_tag == {"s1": b"\xaa", "s2": b"\xbb"}


def test_credit_flow_control_blocks_fast_sender():
    """A sender outrunning a slow receiver is throttled by sndbuf credits."""
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    prof = dev_a.profile
    msg = prof.sndbuf_bytes // 2
    progress = []

    def server():
        listener = dev_b.socket()
        listener.listen(80)
        conn = yield from listener.accept()
        core = host_b.cpus.pin()
        for _ in range(4):
            yield sim.timeout(us(500))  # slow consumer
            yield from conn.recv(core)

    def client():
        sock = dev_a.socket()
        yield from sock.connect(host_b.host_id, 80)
        core = host_a.cpus.pin()
        for i in range(4):
            yield from sock.send(core, msg)
            progress.append(sim.now)

    sim.process(server())
    sim.process(client())
    sim.run()
    # The first two sends fill the buffer quickly; later ones wait for
    # the slow receiver's credits.
    assert progress[3] - progress[1] > us(400)


def test_socket_latency_far_above_verbs():
    """The socket path costs micro-seconds where verbs costs ~1.5 us."""
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    out = {}

    def receiver():
        sock = dev_b.socket()
        dev_b.bind(sock, 7)
        yield from sock.recvfrom(host_b.cpus.pin())
        out["t"] = sim.now

    def sender():
        sock = dev_a.socket()
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, 7, 64)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert out["t"] > us(4)


def test_softirq_serializes_receive_processing():
    """Aggregate IPoIB receive throughput is capped by softirq, not wire."""
    profile = NetstackProfile()
    per_byte = profile.rx_per_packet_ns / profile.ipoib_mtu
    softirq_bw = 1.0 / per_byte  # bytes/ns
    assert softirq_bw < SYSTEM_A.nic.link_bw  # the model's whole point


def test_netstack_profile_packet_math():
    p = NetstackProfile()
    assert p.packets(0) == 1
    assert p.packets(2044) == 1
    assert p.packets(2045) == 2
    assert p.tx_kernel_ns(2045) == pytest.approx(
        p.per_message_ns + 2 * p.tx_per_packet_ns)


def test_completion_channel_wakeup_costs():
    """Event-driven completion pays block + wakeup + context switch."""
    sim = Simulator(seed=2)
    _fabric, host_a, _hb = build_pair(sim, SYSTEM_L)
    kernel = host_a.kernel
    chan = kernel.create_comp_channel()
    core = host_a.cpus.pin()

    from repro.verbs.cq import CompletionQueue

    cq = CompletionQueue(sim, depth=8)
    kernel.attach_cq(cq)
    kernel.bind_cq_to_channel(cq, chan)
    out = {}

    def waiter():
        t0 = sim.now
        got = yield from chan.wait(core)
        out["elapsed"] = sim.now - t0
        out["cq"] = got

    def producer():
        yield sim.timeout(us(5))
        cq.req_notify()
        from repro.verbs.wr import CQE, Opcode, WCStatus

        cq.push(CQE(wr_id=1, status=WCStatus.SUCCESS, opcode=Opcode.SEND,
                    byte_len=0, qp_num=1))

    sim.process(waiter())
    sim.process(producer())
    sim.run()
    assert out["cq"] is cq
    cpu = SYSTEM_L.cpu
    floor = us(5) + cpu.irq_entry_ns + cpu.context_switch_ns
    assert out["elapsed"] >= floor


def test_zero_byte_message_roundtrip():
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    out = {}

    def receiver():
        sock = dev_b.socket()
        dev_b.bind(sock, 9)
        src, nbytes, data, meta = yield from sock.recvfrom(host_b.cpus.pin())
        out["r"] = (nbytes, meta)

    def sender():
        sock = dev_a.socket()
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, 9, 0,
                               meta="empty")

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert out["r"] == (0, "empty")


def test_negative_send_rejected():
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    sock = dev_b.socket()
    dev_b.bind(sock, 9)

    def sender():
        s = dev_a.socket()
        yield from s.sendto(host_a.cpus.pin(), host_b.host_id, 9, -5)

    with pytest.raises(KernelError):
        sim.run(sim.process(sender()))


def test_softirq_is_shared_across_sockets_of_a_host():
    """Two receivers on one host contend for the same softirq context."""
    sim, host_a, host_b, dev_a, dev_b = make_sockets()
    done = []

    def receiver(port):
        sock = dev_b.socket()
        dev_b.bind(sock, port)
        yield from sock.recvfrom(host_b.cpus.pin())
        done.append(sim.now)

    def sender(port):
        sock = dev_a.socket()
        yield from sock.sendto(host_a.cpus.pin(), host_b.host_id, port, 60_000)

    sim.process(receiver(11))
    sim.process(receiver(12))
    sim.process(sender(11))
    sim.process(sender(12))
    sim.run()
    assert len(done) == 2
    assert dev_b.softirq.packets_processed >= 2 * (60_000 // 2044)
