"""Regression tests for benchmark plumbing (repro.bench_support).

Two bugs fixed here and pinned down:

1. ``RESULTS_DIR`` was frozen at import time, so setting
   ``REPRO_RESULTS_DIR`` after importing the module (the natural order in
   a test or CI harness) was silently ignored.
2. ``bench_scale()`` let ``float()`` errors escape raw and accepted
   negative scales; both now raise a friendly :class:`ConfigError`.
"""

import pytest

import repro.bench_support as bs
from repro.errors import ConfigError


def test_results_dir_reads_env_at_call_time(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "late"))
    assert bs.results_dir() == tmp_path / "late"
    # The legacy module attribute follows along lazily.
    assert bs.RESULTS_DIR == tmp_path / "late"


def test_results_dir_default(monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
    assert str(bs.results_dir()) == "results"


def test_unknown_module_attr_still_raises():
    with pytest.raises(AttributeError):
        bs.NO_SUCH_ATTRIBUTE


def test_emit_writes_into_late_results_dir(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
    bs.emit("sample", "hello table")
    assert (tmp_path / "out" / "sample.txt").read_text() == "hello table\n"
    assert "hello table" in capsys.readouterr().out


def test_bench_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bs.bench_scale() == 1.0
    monkeypatch.setenv("REPRO_BENCH_SCALE", "   ")
    assert bs.bench_scale() == 1.0


def test_bench_scale_parses_numbers(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    assert bs.bench_scale() == 0.25
    assert bs.scaled(100) == 25
    assert bs.scaled(1) == 1  # minimum floor


@pytest.mark.parametrize("raw", ["fast", "1.0x", "ten", "0..5"])
def test_bench_scale_rejects_non_numeric(monkeypatch, raw):
    monkeypatch.setenv("REPRO_BENCH_SCALE", raw)
    with pytest.raises(ConfigError, match="must be a number"):
        bs.bench_scale()


def test_bench_scale_rejects_negative(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "-0.5")
    with pytest.raises(ConfigError, match="non-negative"):
        bs.bench_scale()


def test_bench_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
    with pytest.raises(ConfigError, match="must be an integer"):
        bs.bench_workers()


def test_bench_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
    assert bs.bench_workers() == 3
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")  # clamped to >= 1
    assert bs.bench_workers() == 1
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    assert bs.bench_workers() >= 1


# Sweep points must be module-level functions (pickled by reference into
# fork workers).

def _env_probe_point(tag):
    import gc
    import os

    return (tag, os.environ.get("REPRO_TEST_SWEEP_FLAG"), gc.get_threshold()[0])


def _lat_point(seed):
    from repro.perftest.runner import PerftestConfig, run_lat

    cfg = PerftestConfig(system="L", op="send", client="bypass",
                         server="bypass", iters=30, warmup=5, seed=seed)
    r = run_lat(cfg, 64)
    return (r.avg_us, r.p50_ns, r.p99_ns, len(r.samples))


def test_parallel_sweep_worker_env_and_init_propagation(monkeypatch):
    """fork workers inherit the parent's environment, and _worker_init's
    gc retuning is applied in every worker (but not in the parent)."""
    monkeypatch.setenv("REPRO_TEST_SWEEP_FLAG", "inherited")
    out = bs.parallel_sweep(_env_probe_point, ["a", "b", "c"], workers=2)
    assert [tag for tag, _env, _gc in out] == ["a", "b", "c"]
    assert all(env == "inherited" for _tag, env, _gc in out)
    assert all(gen0 == 200_000 for _tag, _env, gen0 in out)
    import gc

    assert gc.get_threshold()[0] != 200_000


def test_parallel_sweep_bit_identical_across_worker_counts():
    """Order and values are bit-identical for serial, 2 and 4 workers."""
    seeds = [7, 11, 13, 17, 19]
    serial = bs.parallel_sweep(_lat_point, seeds, workers=1)
    for workers in (2, 4):
        assert bs.parallel_sweep(_lat_point, seeds, workers=workers) == serial


def test_parallel_sweep_merges_worker_run_stats():
    """Per-point run stats cross the process boundary and land in the
    parent's RUN_STATS, identically to a serial run."""
    from repro.perftest.runner import reset_run_stats, run_stats_snapshot

    seeds = [7, 11, 13]
    reset_run_stats()
    bs.parallel_sweep(_lat_point, seeds, workers=1)
    serial = run_stats_snapshot()
    reset_run_stats()
    bs.parallel_sweep(_lat_point, seeds, workers=2)
    fanned = run_stats_snapshot()
    assert serial["measurements"] == len(seeds)
    assert fanned == serial


def test_figure_bench_records_json(monkeypatch, tmp_path):
    path = tmp_path / "bench.json"
    monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
    monkeypatch.delenv("REPRO_FASTFORWARD", raising=False)
    with bs.figure_bench("figX"):
        bs.parallel_sweep(_lat_point, [7, 11], workers=1)
    monkeypatch.setenv("REPRO_FASTFORWARD", "1")
    with bs.figure_bench("figX"):
        bs.parallel_sweep(_lat_point, [7, 11], workers=1)
    import json

    data = json.loads(path.read_text())
    modes = data["benchmarks"]["figX"]
    assert modes["base"]["measurements"] == 2
    assert modes["ff"]["measurements"] == 2
    assert modes["base"]["fastforward"] is False
    assert modes["ff"]["fastforward"] is True
    assert modes["ff"]["ff_jumps"] > 0
    assert data["summary"]["paired_benchmarks"] == ["figX"]
    assert data["summary"]["speedup"] > 0


# -- tools/check_bench_budget.py (the CI gate over the recorded JSON) --------

def _budget_tool():
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "tools" / "check_bench_budget.py"
    spec = importlib.util.spec_from_file_location("check_bench_budget", path)
    mod = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(mod)
    return mod


def _write_record(tmp_path, benchmarks):
    import json

    data = {"benchmarks": benchmarks, "summary": bs._summarize(benchmarks)}
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(data))
    return path


def _entry(wall_s, ff, scale=1.0, workers=1):
    return {"wall_s": wall_s, "scale": scale, "workers": workers,
            "fastforward": ff}


def test_budget_subset_spec_parsing():
    tool = _budget_tool()
    assert tool.parse_subset_spec("fig1+fig3:4.0") == (["fig1", "fig3"], 4.0)
    with pytest.raises(ValueError):
        tool.parse_subset_spec("fig1+fig3")  # no floor
    with pytest.raises(ValueError):
        tool.parse_subset_spec(":2.0")  # no names


def test_budget_subset_gate(tmp_path):
    tool = _budget_tool()
    path = _write_record(tmp_path, {
        "fig1": {"base": _entry(40.0, False), "ff": _entry(4.0, True)},
        "fig5": {"base": _entry(20.0, False), "ff": _entry(19.0, True)},
    })
    # Aggregate is capped by fig5 (60/23 ~ 2.6x) but the skippable subset
    # holds 10x; the split gate passes where a flat 4x aggregate would not.
    assert tool.check(path, 2.3, None, [], [(["fig1"], 4.0)]) == []
    problems = tool.check(path, 4.0, None, [], [])
    assert any("suite speedup" in p for p in problems)
    problems = tool.check(path, 1.0, None, [], [(["fig1", "fig5"], 4.0)])
    assert any("subset fig1+fig5 speedup" in p for p in problems)
    # A subset naming an unpaired figure is a hard failure, not a skip.
    problems = tool.check(path, 1.0, None, [], [(["fig9"], 1.0)])
    assert any("lacks paired figures" in p for p in problems)


def test_budget_flags_mismatched_scale_pair(tmp_path):
    tool = _budget_tool()
    path = _write_record(tmp_path, {
        "fig1": {"base": _entry(40.0, False), "ff": _entry(4.0, True)},
        "fig3": {"base": _entry(10.0, False),
                 "ff": _entry(0.5, True, scale=0.05)},
    })
    problems = tool.check(path, 1.0, None, ["fig1", "fig3"], [])
    assert any("mismatched" in p and "fig3" in p for p in problems)
    # The mismatched pair stays out of the aggregate speedup.
    assert not any("fig1" in p for p in problems)
