"""Regression tests for benchmark plumbing (repro.bench_support).

Two bugs fixed here and pinned down:

1. ``RESULTS_DIR`` was frozen at import time, so setting
   ``REPRO_RESULTS_DIR`` after importing the module (the natural order in
   a test or CI harness) was silently ignored.
2. ``bench_scale()`` let ``float()`` errors escape raw and accepted
   negative scales; both now raise a friendly :class:`ConfigError`.
"""

import pytest

import repro.bench_support as bs
from repro.errors import ConfigError


def test_results_dir_reads_env_at_call_time(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "late"))
    assert bs.results_dir() == tmp_path / "late"
    # The legacy module attribute follows along lazily.
    assert bs.RESULTS_DIR == tmp_path / "late"


def test_results_dir_default(monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
    assert str(bs.results_dir()) == "results"


def test_unknown_module_attr_still_raises():
    with pytest.raises(AttributeError):
        bs.NO_SUCH_ATTRIBUTE


def test_emit_writes_into_late_results_dir(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
    bs.emit("sample", "hello table")
    assert (tmp_path / "out" / "sample.txt").read_text() == "hello table\n"
    assert "hello table" in capsys.readouterr().out


def test_bench_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bs.bench_scale() == 1.0
    monkeypatch.setenv("REPRO_BENCH_SCALE", "   ")
    assert bs.bench_scale() == 1.0


def test_bench_scale_parses_numbers(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    assert bs.bench_scale() == 0.25
    assert bs.scaled(100) == 25
    assert bs.scaled(1) == 1  # minimum floor


@pytest.mark.parametrize("raw", ["fast", "1.0x", "ten", "0..5"])
def test_bench_scale_rejects_non_numeric(monkeypatch, raw):
    monkeypatch.setenv("REPRO_BENCH_SCALE", raw)
    with pytest.raises(ConfigError, match="must be a number"):
        bs.bench_scale()


def test_bench_scale_rejects_negative(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "-0.5")
    with pytest.raises(ConfigError, match="non-negative"):
        bs.bench_scale()


def test_bench_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
    with pytest.raises(ConfigError, match="must be an integer"):
        bs.bench_workers()
