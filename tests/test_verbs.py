"""Verbs layer unit tests: QP state machine, MR table, CQ, WR validation."""

import pytest

from repro.cluster import build_pair
from repro.errors import CQError, MemoryAccessError, QPStateError, VerbsError
from repro.hw.memory import AddressSpace
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegionV, MrTable
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import CQE, AccessFlags, Opcode, RecvWR, SendWR, WCStatus


def make_qp(transport=Transport.RC):
    sim = Simulator()
    pd = ProtectionDomain(context=None)
    cq = CompletionQueue(sim, depth=64)
    qp = QueuePair(pd, transport, cq, cq, qpn=100, sq_depth=4, rq_depth=4,
                   max_inline=220)
    return sim, qp


# -- state machine -------------------------------------------------------------


def test_qp_lifecycle_reset_to_rts():
    _, qp = make_qp()
    assert qp.state is QPState.RESET
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 200))
    qp.modify(QPState.RTS)
    assert qp.remote == (1, 200)


def test_qp_illegal_transitions():
    _, qp = make_qp()
    with pytest.raises(QPStateError):
        qp.modify(QPState.RTS)  # RESET -> RTS is illegal
    qp.modify(QPState.INIT)
    with pytest.raises(QPStateError):
        qp.modify(QPState.INIT)


def test_rc_rtr_requires_remote():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    with pytest.raises(QPStateError):
        qp.modify(QPState.RTR)


def test_qp_reset_flushes_state():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 200))
    qp.modify(QPState.RTS)
    qp.rq.append(RecvWR(wr_id=1))
    qp.sq_psn = 17
    qp.modify(QPState.RESET)
    assert not qp.rq and qp.sq_psn == 0 and qp.state is QPState.RESET


def test_post_send_requires_rts():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    with pytest.raises(QPStateError):
        qp.check_post_send(SendWR(wr_id=1, opcode=Opcode.SEND))


def test_sq_depth_enforced():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 200))
    qp.modify(QPState.RTS)
    qp.sq_outstanding = 4
    with pytest.raises(VerbsError, match="full"):
        qp.check_post_send(SendWR(wr_id=1, opcode=Opcode.SEND))


def test_rq_depth_enforced():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    for i in range(4):
        qp.rq.append(RecvWR(wr_id=i))
    with pytest.raises(VerbsError, match="full"):
        qp.check_post_recv(RecvWR(wr_id=9))


def test_inline_limit_enforced():
    _, qp = make_qp()
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR, remote=(1, 200))
    qp.modify(QPState.RTS)
    wr = SendWR(wr_id=1, opcode=Opcode.SEND, length=500, inline=True)
    with pytest.raises(VerbsError, match="inline"):
        qp.check_post_send(wr)


def test_ud_rejects_one_sided_and_requires_ah():
    _, qp = make_qp(Transport.UD)
    qp.modify(QPState.INIT)
    qp.modify(QPState.RTR)
    qp.modify(QPState.RTS)
    with pytest.raises(VerbsError, match="only SEND"):
        qp.check_post_send(SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE))
    with pytest.raises(VerbsError, match="address handle"):
        qp.check_post_send(SendWR(wr_id=1, opcode=Opcode.SEND))


def test_psn_assignment_monotonic():
    _, qp = make_qp()
    assert [qp.assign_psn() for _ in range(5)] == [0, 1, 2, 3, 4]


# -- WR validation ------------------------------------------------------------------


def test_wr_imm_required():
    with pytest.raises(VerbsError, match="immediate"):
        SendWR(wr_id=1, opcode=Opcode.RDMA_WRITE_WITH_IMM).validate()


def test_wr_read_cannot_be_inline():
    with pytest.raises(VerbsError, match="inline"):
        SendWR(wr_id=1, opcode=Opcode.RDMA_READ, inline=True).validate()


def test_wr_data_length_mismatch():
    with pytest.raises(VerbsError, match="length"):
        SendWR(wr_id=1, opcode=Opcode.SEND, length=4, data=b"12345").validate()


def test_opcode_properties():
    assert Opcode.SEND.consumes_recv_wqe
    assert Opcode.RDMA_WRITE_WITH_IMM.consumes_recv_wqe
    assert not Opcode.RDMA_WRITE.consumes_recv_wqe
    assert not Opcode.RDMA_READ.reads_local_memory
    assert Opcode.RDMA_WRITE.reads_local_memory


# -- MR table ----------------------------------------------------------------------


def make_mr(length=4096, access=AccessFlags.all_remote()):
    table = MrTable()
    space = AddressSpace()
    buf = space.alloc(length)
    lkey, rkey = table.next_keys()
    mr = MemoryRegionV(pd=None, buffer=buf, addr=buf.addr, length=length,
                       lkey=lkey, rkey=rkey, access=access)
    table.install(mr)
    return table, mr


def test_mr_local_check_passes_and_bounds():
    table, mr = make_mr()
    assert table.check_local(mr.lkey, mr.addr, 100, write=True) is mr
    with pytest.raises(MemoryAccessError):
        table.check_local(mr.lkey, mr.addr + 4000, 200, write=False)
    with pytest.raises(MemoryAccessError):
        table.check_local(0xBAD, mr.addr, 10, write=False)


def test_mr_local_write_needs_permission():
    table, mr = make_mr(access=AccessFlags.REMOTE_READ)
    with pytest.raises(MemoryAccessError, match="LOCAL_WRITE"):
        table.check_local(mr.lkey, mr.addr, 10, write=True)


def test_mr_remote_check_returns_none_not_raises():
    table, mr = make_mr(access=AccessFlags.LOCAL_WRITE)  # no remote perms
    assert table.check_remote(mr.rkey, mr.addr, 10, write=True) is None
    assert table.check_remote(0xBAD, mr.addr, 10, write=False) is None
    assert table.check_remote(mr.rkey, mr.addr - 50, 10, write=False) is None


def test_mr_deregister_invalidates():
    table, mr = make_mr()
    table.remove(mr)
    with pytest.raises(MemoryAccessError):
        table.check_local(mr.lkey, mr.addr, 10, write=False)
    assert table.check_remote(mr.rkey, mr.addr, 10, write=True) is None


# -- CQ ------------------------------------------------------------------------------


def _cqe(i=1):
    return CQE(wr_id=i, status=WCStatus.SUCCESS, opcode=Opcode.SEND,
               byte_len=0, qp_num=1)


def test_cq_poll_fifo_and_batch():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=16)
    for i in range(5):
        cq.push(_cqe(i))
    assert [c.wr_id for c in cq.poll(3)] == [0, 1, 2]
    assert [c.wr_id for c in cq.poll(16)] == [3, 4]
    assert cq.poll() == []


def test_cq_overflow_raises():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=2)
    cq.push(_cqe())
    cq.push(_cqe())
    with pytest.raises(CQError, match="overflow"):
        cq.push(_cqe())
    assert cq.overflowed


def test_cq_wait_nonempty_fires_on_push():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=8)

    def waiter():
        ev = cq.wait_nonempty()
        yield ev
        return sim.now

    def pusher():
        yield sim.timeout(77.0)
        cq.push(_cqe())

    p = sim.process(waiter())
    sim.process(pusher())
    assert sim.run(p) == 77.0


def test_cq_armed_event_fires_once():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=8)
    fired = []
    cq.on_event = lambda c: fired.append(sim.now)
    cq.req_notify()
    cq.push(_cqe())
    cq.push(_cqe())  # not armed anymore
    assert len(fired) == 1
    assert cq.events_raised == 1


def test_control_plane_costs_simulated_time():
    """Device/PD/MR/QP creation all pay ioctl costs."""
    sim = Simulator()
    _fabric, host_a, _host_b = build_pair(sim, SYSTEM_L)

    def setup():
        core = host_a.cpus.pin()
        ctx = yield from host_a.device.open(core)
        pd = yield from ctx.alloc_pd()
        space = host_a.new_address_space()
        buf = space.alloc(1 << 20)
        mr = yield from ctx.reg_mr(pd, buf)
        cq = yield from ctx.create_cq()
        qp = yield from ctx.create_qp(pd, Transport.RC, cq, cq)
        return sim.now, mr, qp

    elapsed, mr, qp = sim.run(sim.process(setup()))
    assert elapsed > 0  # control plane is not free
    # MR registration pinned 256 pages — clearly visible in the cost.
    assert elapsed > 256 * SYSTEM_L.memory.page_pin_ns
    assert qp.state is QPState.INIT
    assert mr.lkey != mr.rkey
