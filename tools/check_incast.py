#!/usr/bin/env python3
"""CI gate: incast sweep invariants in ``BENCH_incast.json``.

``benchmarks/bench_incast.py`` records an N→1 fan-in sweep (sender count
x dataplane) plus two control points.  This gate re-checks the physics
the receiver-side contention model must honour, on whatever record the
benchmark produced (committed full-scale or a smoke-scale run pointed at
by ``REPRO_INCAST_JSON``):

- per-flow mean goodput is non-increasing in the sender count for every
  dataplane series (flows share one receiver port; more senders can only
  slow each flow);
- aggregate receive rate never exceeds one link's bandwidth (small
  tolerance for the duration being measured first-start → last-finish);
- unbounded switch buffers never drop and never retransmit;
- the legacy rx-off control *exceeds* one link's bandwidth (the modeling
  bug stays demonstrably fixed, not silently re-hidden);
- the bounded-buffer control drops, and every drop is matched by at
  least one retransmit (RC recovery engaged);
- DCQCN recovers the bounded 16→1 incast: ≥80% of the unbounded
  reference aggregate and ≥10× fewer tail drops than CC-off at full
  scale (relaxed to 75% / 8× on smoke-scale records, whose short flows
  end while the conservative start is still ramping), with every
  message delivered and the ECN/CNP loop demonstrably engaged.

Exits 1 with a per-violation report when any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path("results") / "BENCH_incast.json"

#: Aggregate-rate headroom over the link: the run duration spans the
#: staggered first start to the last completion, so measured aggregates
#: sit a little below the link rate; anything above this is a fan-in leak.
AGG_TOL = 1.02
#: Per-flow monotonicity slack for scheduling noise between runs.
MONO_TOL = 0.99
#: Congestion-control acceptance floors: (goodput recovery fraction of
#: the unbounded reference, tail-drop reduction factor vs CC-off), at
#: full benchmark scale and relaxed for smoke-scale records.
CC_FLOORS_FULL = (0.8, 10.0)
CC_FLOORS_SMOKE = (0.75, 8.0)


def check(doc: dict) -> list[str]:
    problems: list[str] = []
    link = float(doc["link_gbit"])

    for label, entries in sorted(doc["sweep"].items()):
        by_n = sorted(entries, key=lambda e: e["senders"])
        means = [(e["senders"], e["per_flow_mean_gbit"]) for e in by_n]
        for (n0, m0), (n1, m1) in zip(means, means[1:]):
            if m1 > m0 / MONO_TOL:
                problems.append(
                    f"{label}: per-flow goodput rose {m0:.2f} -> {m1:.2f} "
                    f"Gbit/s going from {n0} to {n1} senders")
        for e in by_n:
            if e["aggregate_gbit"] > link * AGG_TOL:
                problems.append(
                    f"{label} N={e['senders']}: aggregate "
                    f"{e['aggregate_gbit']:.1f} Gbit/s exceeds the "
                    f"{link:.0f} Gbit/s link")
            if e["buffer_bytes"] is None and (
                    e["messages_dropped"] or e["retransmits"]):
                problems.append(
                    f"{label} N={e['senders']}: unbounded buffer dropped "
                    f"{e['messages_dropped']} / retransmitted "
                    f"{e['retransmits']}")

    legacy = doc["legacy_rx_off"]
    if legacy["aggregate_gbit"] <= link * AGG_TOL:
        problems.append(
            f"legacy rx-off control only reached "
            f"{legacy['aggregate_gbit']:.1f} Gbit/s — the fan-in bug it "
            "demonstrates appears to have leaked into the rx-off path")

    bounded = doc["bounded_buffer"]
    if bounded["messages_dropped"] < 1:
        problems.append("bounded-buffer control recorded zero drops")
    elif bounded["retransmits"] < bounded["messages_dropped"]:
        problems.append(
            f"bounded-buffer control dropped {bounded['messages_dropped']} "
            f"but only retransmitted {bounded['retransmits']}")

    cc = doc["congestion"]
    ref, off, on = cc["reference"], cc["cc_off"], cc["dcqcn"]
    rec_floor, red_floor = (CC_FLOORS_FULL if float(doc.get("scale", 1)) >= 1.0
                            else CC_FLOORS_SMOKE)
    recovery = on["aggregate_gbit"] / ref["aggregate_gbit"]
    if recovery < rec_floor:
        problems.append(
            f"DCQCN recovered only {recovery:.0%} of the unbounded "
            f"reference ({on['aggregate_gbit']:.1f} of "
            f"{ref['aggregate_gbit']:.1f} Gbit/s); floor is "
            f"{rec_floor:.0%}")
    if off["messages_dropped"] < 1:
        problems.append("CC-off control recorded zero drops (no collapse "
                        "to recover from)")
    else:
        reduction = off["messages_dropped"] / max(on["messages_dropped"], 1)
        if reduction < red_floor:
            problems.append(
                f"DCQCN cut drops only {reduction:.1f}x "
                f"({off['messages_dropped']} -> {on['messages_dropped']}); "
                f"floor is {red_floor:.0f}x")
    if on["failed_msgs"]:
        problems.append(
            f"DCQCN run failed {on['failed_msgs']} message(s) "
            "(RETRY_EXC_ERR under CC should not happen)")
    if not (on["ecn_marked"] and on["cnps"]):
        problems.append(
            f"DCQCN loop inert: {on['ecn_marked']} ECN marks, "
            f"{on['cnps']} CNPs")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH, type=Path,
                        help=f"record to gate (default: {DEFAULT_PATH})")
    args = parser.parse_args(argv)

    doc = json.loads(args.path.read_text())
    problems = check(doc)
    # Control points: legacy rx-off, bounded buffer, CC-off, DCQCN (the
    # congestion reference is the bypass N=16 sweep point, not a rerun).
    n_points = sum(len(v) for v in doc["sweep"].values()) + 4
    if problems:
        print(f"check_incast: {len(problems)} violation(s) in {args.path}:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"check_incast: OK ({n_points} points in {args.path}, "
          f"link {doc['link_gbit']:.0f} Gbit/s, scale {doc.get('scale', 1)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
