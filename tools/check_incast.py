#!/usr/bin/env python3
"""CI gate: incast sweep invariants in ``BENCH_incast.json``.

``benchmarks/bench_incast.py`` records an N→1 fan-in sweep (sender count
x dataplane) plus two control points.  This gate re-checks the physics
the receiver-side contention model must honour, on whatever record the
benchmark produced (committed full-scale or a smoke-scale run pointed at
by ``REPRO_INCAST_JSON``):

- per-flow mean goodput is non-increasing in the sender count for every
  dataplane series (flows share one receiver port; more senders can only
  slow each flow);
- aggregate receive rate never exceeds one link's bandwidth (small
  tolerance for the duration being measured first-start → last-finish);
- unbounded switch buffers never drop and never retransmit;
- the legacy rx-off control *exceeds* one link's bandwidth (the modeling
  bug stays demonstrably fixed, not silently re-hidden);
- the bounded-buffer control drops, and every drop is matched by at
  least one retransmit (RC recovery engaged).

Exits 1 with a per-violation report when any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path("results") / "BENCH_incast.json"

#: Aggregate-rate headroom over the link: the run duration spans the
#: staggered first start to the last completion, so measured aggregates
#: sit a little below the link rate; anything above this is a fan-in leak.
AGG_TOL = 1.02
#: Per-flow monotonicity slack for scheduling noise between runs.
MONO_TOL = 0.99


def check(doc: dict) -> list[str]:
    problems: list[str] = []
    link = float(doc["link_gbit"])

    for label, entries in sorted(doc["sweep"].items()):
        by_n = sorted(entries, key=lambda e: e["senders"])
        means = [(e["senders"], e["per_flow_mean_gbit"]) for e in by_n]
        for (n0, m0), (n1, m1) in zip(means, means[1:]):
            if m1 > m0 / MONO_TOL:
                problems.append(
                    f"{label}: per-flow goodput rose {m0:.2f} -> {m1:.2f} "
                    f"Gbit/s going from {n0} to {n1} senders")
        for e in by_n:
            if e["aggregate_gbit"] > link * AGG_TOL:
                problems.append(
                    f"{label} N={e['senders']}: aggregate "
                    f"{e['aggregate_gbit']:.1f} Gbit/s exceeds the "
                    f"{link:.0f} Gbit/s link")
            if e["buffer_bytes"] is None and (
                    e["messages_dropped"] or e["retransmits"]):
                problems.append(
                    f"{label} N={e['senders']}: unbounded buffer dropped "
                    f"{e['messages_dropped']} / retransmitted "
                    f"{e['retransmits']}")

    legacy = doc["legacy_rx_off"]
    if legacy["aggregate_gbit"] <= link * AGG_TOL:
        problems.append(
            f"legacy rx-off control only reached "
            f"{legacy['aggregate_gbit']:.1f} Gbit/s — the fan-in bug it "
            "demonstrates appears to have leaked into the rx-off path")

    bounded = doc["bounded_buffer"]
    if bounded["messages_dropped"] < 1:
        problems.append("bounded-buffer control recorded zero drops")
    elif bounded["retransmits"] < bounded["messages_dropped"]:
        problems.append(
            f"bounded-buffer control dropped {bounded['messages_dropped']} "
            f"but only retransmitted {bounded['retransmits']}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH, type=Path,
                        help=f"record to gate (default: {DEFAULT_PATH})")
    args = parser.parse_args(argv)

    doc = json.loads(args.path.read_text())
    problems = check(doc)
    n_points = sum(len(v) for v in doc["sweep"].values()) + 2
    if problems:
        print(f"check_incast: {len(problems)} violation(s) in {args.path}:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"check_incast: OK ({n_points} points in {args.path}, "
          f"link {doc['link_gbit']:.0f} Gbit/s, scale {doc.get('scale', 1)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
