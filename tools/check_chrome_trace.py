#!/usr/bin/env python3
"""Validate Chrome trace-event JSON files produced by repro.telemetry.

Checks each file is Perfetto-loadable in the ways that matter:

- parses as JSON with a non-empty ``traceEvents`` array;
- every event has a phase; B/E begin/end events balance per (pid, tid);
  X (complete) events carry non-negative ``ts``/``dur``;
- span events reference a span id and reconstruct into causally ordered
  (non-decreasing ``ts``) chains whose stage durations sum to the span's
  extent.

Usage: python tools/check_chrome_trace.py TRACE.json [TRACE2.json ...]
Exits non-zero on the first invalid file.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def check(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]

    events = doc.get("traceEvents") if isinstance(doc, dict) else doc
    if not isinstance(events, list) or not events:
        return ["no traceEvents"]

    open_stacks: dict[tuple, int] = defaultdict(int)
    spans: dict[object, list[dict]] = defaultdict(list)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            errors.append(f"event {i}: missing ph")
            continue
        if ph == "B":
            open_stacks[(ev.get("pid"), ev.get("tid"))] += 1
        elif ph == "E":
            key = (ev.get("pid"), ev.get("tid"))
            if open_stacks[key] <= 0:
                errors.append(f"event {i}: E without matching B on {key}")
            else:
                open_stacks[key] -= 1
        elif ph == "X":
            if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
                errors.append(f"event {i}: X event needs ts/dur >= 0")
            span_id = ev.get("args", {}).get("span")
            if span_id is not None:
                spans[span_id].append(ev)
    for key, depth in open_stacks.items():
        if depth:
            errors.append(f"{depth} unclosed B event(s) on {key}")

    if not spans:
        errors.append("no span events (args.span) found")
    for span_id, evs in spans.items():
        ts = [e["ts"] for e in evs]
        if ts != sorted(ts):
            errors.append(f"span {span_id}: stages not causally ordered")
        extent = max(e["ts"] + e["dur"] for e in evs) - min(ts)
        total = sum(e["dur"] for e in evs)
        if abs(total - extent) > 1e-6:
            errors.append(
                f"span {span_id}: stage durations ({total}) do not sum "
                f"to span extent ({extent})"
            )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        errors = check(path)
        if errors:
            print(f"FAIL {path}")
            for err in errors:
                print(f"  - {err}")
            return 1
        print(f"OK   {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
