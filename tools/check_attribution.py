#!/usr/bin/env python3
"""CI gate: recorded stage-attribution baselines must reproduce exactly.

``results/BENCH_attribution.json`` holds per-stage blame tables (queueing
vs service nanoseconds) for a pinned slice of every figure's sweep,
written by the figure benchmarks via
``repro.bench_support.record_attribution_probes``.  Each entry embeds the
full probe spec, so this gate re-runs every measurement from scratch and
fails unless:

- stage totals (``total_ns``/``queue_ns``/``service_ns`` per stage) match
  the recorded baseline — bit-exact for deterministic configs
  (``spec.exact``), within ``--rel-tol`` for the jittered system-A probes
  (whose lognormal syscall jitter goes through libm and may differ in the
  last bits across platforms);
- every op in every probe is at least ``--min-explained`` explained by
  named stage time (the residual accounting contract);
- no probe's trace dropped records (attribution over a truncated ring is
  never acceptable).

The probes use pinned iteration counts independent of
``REPRO_BENCH_SCALE``, so this gate is equally exact at smoke scale.
Run with ``--update`` to regenerate the baseline file instead of gating.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.telemetry.attribution import ATTRIBUTION_PROBES, ProbeSpec, run_probe

DEFAULT_PATH = Path("results") / "BENCH_attribution.json"

#: Stage-total keys compared between baseline and recomputation.  The
#: distributional keys (p50/p99) are derived from the same durations, but
#: comparing the totals keeps the exact check independent of percentile
#: interpolation details.
_STAGE_KEYS = ("count", "total_ns", "queue_ns", "service_ns")


def _close(a: float, b: float, rel_tol: float) -> bool:
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return scale > 0 and abs(a - b) / scale <= rel_tol


def _compare(baseline: dict, fresh: dict, exact: bool,
             rel_tol: float) -> list[str]:
    problems = []
    for key in ("ops", "total_latency_ns", "residual_ns"):
        got, want = fresh[key], baseline[key]
        ok = got == want if exact else _close(got, want, rel_tol)
        if not ok:
            problems.append(f"{key}: recorded {want!r}, recomputed {got!r}")
    base_stages, new_stages = baseline["stages"], fresh["stages"]
    for name in sorted(set(base_stages) | set(new_stages)):
        if name not in new_stages:
            problems.append(f"stage {name}: in baseline, not recomputed")
            continue
        if name not in base_stages:
            problems.append(f"stage {name}: recomputed, not in baseline")
            continue
        for key in _STAGE_KEYS:
            got, want = new_stages[name][key], base_stages[name][key]
            ok = got == want if exact else _close(got, want, rel_tol)
            if not ok:
                problems.append(
                    f"stage {name}.{key}: recorded {want!r}, "
                    f"recomputed {got!r}")
    return problems


def run_gate(path: Path, figures: list[str], rel_tol: float,
             min_explained: float, update: bool) -> int:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        if not update:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 1
        data = {}
    probes = data.get("probes", {}) if isinstance(data, dict) else {}

    failures = 0
    fresh_entries: dict[str, dict] = {}
    for figure in figures:
        for spec in ATTRIBUTION_PROBES[figure]:
            t0 = time.perf_counter()
            entry = run_probe(spec)
            wall = time.perf_counter() - t0
            fresh_entries[spec.key] = entry

            problems = []
            if entry["dropped"]:
                problems.append(f"trace dropped {entry['dropped']} records")
            if entry["explained_min"] < min_explained:
                problems.append(
                    f"only {entry['explained_min'] * 100:.1f}% of some op "
                    f"explained (< {min_explained * 100:.0f}%)")
            baseline = probes.get(spec.key)
            if not update:
                if baseline is None:
                    problems.append("no recorded baseline (run the figure "
                                    "benchmark or --update)")
                else:
                    recorded = ProbeSpec.fromdict(baseline["spec"])
                    if recorded != spec:
                        problems.append("recorded spec differs from the "
                                        "pinned probe table")
                    problems += _compare(baseline, entry, spec.exact, rel_tol)

            tag = "FAIL" if problems else "ok"
            mode = "exact" if spec.exact else f"tol={rel_tol:g}"
            print(f"{tag:4s} {spec.key:28s} ops={entry['ops']:<4d} "
                  f"explained>={entry['explained_min'] * 100:5.1f}% "
                  f"{mode:9s} wall={wall:.2f}s"
                  + ("" if not problems else
                     "\n     <- " + "\n     <- ".join(problems)))
            failures += bool(problems)

    if update and not failures:
        data = data if isinstance(data, dict) else {}
        data.setdefault("probes", {}).update(fresh_entries)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {len(fresh_entries)} probe baseline(s) -> {path}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--path", type=Path, default=DEFAULT_PATH,
                        help=f"baseline JSON (default {DEFAULT_PATH})")
    parser.add_argument("--figures", nargs="+",
                        choices=sorted(ATTRIBUTION_PROBES),
                        default=sorted(ATTRIBUTION_PROBES),
                        help="figures to gate (default: all)")
    parser.add_argument("--rel-tol", type=float, default=0.05,
                        help="relative tolerance for non-exact (jittered) "
                             "probes (default 0.05)")
    parser.add_argument("--min-explained", type=float, default=0.95,
                        help="minimum explained fraction per op (default 0.95)")
    parser.add_argument("--update", action="store_true",
                        help="write recomputed baselines instead of gating")
    args = parser.parse_args(argv)
    failures = run_gate(args.path, args.figures, args.rel_tol,
                        args.min_explained, args.update)
    if failures:
        print(f"\n{failures} probe(s) failed the attribution gate",
              file=sys.stderr)
        return 1
    if not args.update:
        print("\nattribution gate: all stage baselines reproduced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
