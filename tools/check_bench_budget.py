#!/usr/bin/env python3
"""CI gate: the figure-suite wall-clock record must hold its budget.

Reads a ``BENCH_figures.json`` written by ``repro.bench_support.figure_bench``
(each figure keyed by ``base`` / ``ff`` mode, plus a cross-figure summary)
and fails unless:

- the recorded base-vs-fast-forward ``speedup`` is at least
  ``--min-speedup`` (when the file holds at least one paired figure);
- every ``--subset-min-speedup NAME+NAME:X`` subset of figures reaches
  its own aggregate speedup ``X`` (so the fully skippable figures can be
  gated harder than a suite aggregate capped by runs that provably must
  not skip, like fig5's jittered system-A core);
- the paired fast-forward wall-clock total stays under ``--max-ff-wall``
  seconds, when given;
- every figure named via ``--require-paired`` has both a base and a
  fast-forward measurement recorded.

Two intended call sites: against the *committed* record (full-scale
numbers; guards the headline suite speedup across PRs) and against a
fresh CI-produced pair (smaller scale; guards against wall-clock
regressions on the runner itself).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def parse_subset_spec(spec: str) -> tuple[list[str], float]:
    """Parse ``fig1+fig3+fig4:4.0`` into (names, min speedup)."""
    names_part, sep, floor_part = spec.rpartition(":")
    if not sep or not names_part:
        raise ValueError(
            f"subset spec {spec!r} must look like NAME+NAME:MIN_SPEEDUP")
    names = [n for n in names_part.split("+") if n]
    if not names:
        raise ValueError(f"subset spec {spec!r} names no figures")
    return names, float(floor_part)


def check(path: Path, min_speedup: float, max_ff_wall: float | None,
          require_paired: list[str],
          subset_specs: list[tuple[list[str], float]] = ()) -> list[str]:
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]

    problems = []
    benchmarks = data.get("benchmarks", {})
    summary = data.get("summary", {})
    paired = summary.get("paired_benchmarks", [])
    mismatched = summary.get("mismatched_benchmarks", [])

    for name in require_paired:
        if name in mismatched:
            modes = benchmarks.get(name, {})
            detail = {m: (e.get("scale"), e.get("workers"))
                      for m, e in sorted(modes.items())}
            problems.append(
                f"figure {name!r} has a base/ff pair at mismatched "
                f"scale/workers: {detail}")
        elif name not in paired:
            modes = sorted(benchmarks.get(name, {}))
            problems.append(
                f"figure {name!r} lacks a base/ff pair (recorded: {modes})")

    if not paired:
        problems.append("no figure has both a base and a fast-forward run")
        return problems

    speedup = summary.get("speedup")
    base_s = summary.get("base_wall_s")
    ff_s = summary.get("ff_wall_s")
    print(f"{path}: {len(paired)} paired figure(s), "
          f"base={base_s}s ff={ff_s}s speedup={speedup}x")
    for name in paired:
        modes = benchmarks[name]
        print(f"  {name}: base={modes['base']['wall_s']}s "
              f"ff={modes['ff']['wall_s']}s "
              f"units_skipped={modes['ff'].get('ff_units_skipped', 0)}")

    if speedup is None or speedup < min_speedup:
        problems.append(
            f"suite speedup {speedup} is below the required {min_speedup}x")
    if max_ff_wall is not None and (ff_s is None or ff_s > max_ff_wall):
        problems.append(
            f"fast-forward suite wall {ff_s}s exceeds budget {max_ff_wall}s")
    for names, floor in subset_specs:
        missing = [n for n in names if n not in paired]
        if missing:
            problems.append(
                f"subset {'+'.join(names)} lacks paired figures: {missing}")
            continue
        sub_base = sum(benchmarks[n]["base"]["wall_s"] for n in names)
        sub_ff = sum(benchmarks[n]["ff"]["wall_s"] for n in names)
        sub_speedup = round(sub_base / sub_ff, 3) if sub_ff > 0 else None
        print(f"  subset {'+'.join(names)}: base={round(sub_base, 3)}s "
              f"ff={round(sub_ff, 3)}s speedup={sub_speedup}x")
        if sub_speedup is None or sub_speedup < floor:
            problems.append(
                f"subset {'+'.join(names)} speedup {sub_speedup} is below "
                f"the required {floor}x")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json_path", type=Path,
                        help="BENCH_figures.json to validate")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum recorded base/ff speedup (default 1.0)")
    parser.add_argument("--max-ff-wall", type=float, default=None,
                        help="maximum paired fast-forward wall seconds")
    parser.add_argument("--require-paired", action="append", default=[],
                        metavar="FIG",
                        help="figure name that must have base+ff recorded "
                             "(repeatable)")
    parser.add_argument("--subset-min-speedup", action="append", default=[],
                        metavar="FIG+FIG:X",
                        help="aggregate speedup floor for a subset of "
                             "figures, e.g. fig1+fig3+fig4:4.0 (repeatable)")
    args = parser.parse_args(argv)
    try:
        subset_specs = [parse_subset_spec(s) for s in args.subset_min_speedup]
    except ValueError as exc:
        parser.error(str(exc))
    problems = check(args.json_path, args.min_speedup, args.max_ff_wall,
                     args.require_paired, subset_specs)
    for p in problems:
        print(f"BUDGET FAIL: {p}", file=sys.stderr)
    if not problems:
        print("bench budget: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
