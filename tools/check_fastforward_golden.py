#!/usr/bin/env python3
"""CI gate: steady-state fast-forward must be bit-exact and actually skip.

Runs a representative slice of the perftest matrix twice — fast-forward
off, then on — and fails unless:

- every result (including sample vectors) is bit-identical across the two
  runs;
- system L configurations arm and skip a substantial share of the run
  (the probe is not allowed to silently degrade into a no-op);
- system A CoRD configurations (lognormal syscall jitter inside the loop)
  never jump: the probe must prove extrapolation unsafe and disarm.

This is the same contract ``tests/test_fastforward.py`` pins, packaged as
a standalone gate so CI can run it against the installed package without
the pytest fixtures, and so it can be pointed at bigger iteration counts
(``--iters-scale``) when hunting rare late-arming bugs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.perftest.runner import (
    PerftestConfig,
    reset_run_stats,
    run_bw,
    run_lat,
    run_stats_snapshot,
)

#: (system, dataplane, op, kind, expect_skip).  System L must skip; system
#: A CoRD must refuse.  One bypass and one CoRD config per op kind keeps
#: the gate under ~30 s while covering both dataplanes' loop shapes.
MATRIX = [
    ("L", "bypass", "send", "lat", True),
    ("L", "cord", "write", "lat", True),
    ("L", "bypass", "write", "bw", True),
    ("L", "cord", "send", "bw", True),
    ("A", "cord", "send", "lat", False),
    ("A", "cord", "write", "bw", False),
]


def _fields(result) -> tuple:
    return tuple(sorted(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in vars(result).items()
    ))


def run_gate(iters_scale: float = 1.0, size: int = 4096) -> int:
    failures = 0
    for system, dataplane, op, kind, expect_skip in MATRIX:
        if kind == "lat":
            extra = dict(iters=max(1, int(150 * iters_scale)), warmup=20)
            run = run_lat
        else:
            extra = dict(iters=max(1, int(900 * iters_scale)), warmup=200,
                         window=64)
            run = run_bw
        cfg = PerftestConfig(system=system, op=op, client=dataplane,
                             server=dataplane, **extra)
        t0 = time.perf_counter()
        base = run(cfg.with_(fastforward=False), size)
        reset_run_stats()
        ff = run(cfg.with_(fastforward=True), size)
        stats = run_stats_snapshot()
        wall = time.perf_counter() - t0

        problems = []
        if _fields(base) != _fields(ff):
            problems.append("results differ")
        if expect_skip:
            if stats["ff_jumps"] < 1 or stats["ff_cycles_skipped"] <= 0:
                problems.append(
                    f"expected skipping, got jumps={stats['ff_jumps']}")
        else:
            if stats["ff_jumps"] != 0 or stats["ff_cycles_skipped"] != 0:
                problems.append(
                    f"expected disarm, got jumps={stats['ff_jumps']} "
                    f"cycles={stats['ff_cycles_skipped']}")

        tag = "FAIL" if problems else "ok"
        print(f"{tag:4s} {system}/{dataplane:6s} {op}_{kind:3s} "
              f"jumps={stats['ff_jumps']} units={stats['ff_units_skipped']} "
              f"wall={wall:.2f}s"
              + ("" if not problems else "  <- " + "; ".join(problems)))
        failures += bool(problems)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters-scale", type=float, default=1.0,
                        help="multiply iteration counts (default 1.0)")
    parser.add_argument("--size", type=int, default=4096,
                        help="message size in bytes (default 4096)")
    args = parser.parse_args(argv)
    failures = run_gate(args.iters_scale, args.size)
    if failures:
        print(f"\n{failures} configuration(s) failed the fast-forward gate",
              file=sys.stderr)
        return 1
    print("\nfast-forward golden gate: all configurations bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
