#!/usr/bin/env python3
"""CI gate: the protocol verifier must be clean on the tree AND have teeth.

Four stages, in order of increasing cost:

1. **Lint** — the PROTO001-PROTO004 protocol rulepack finds nothing in
   the repository tree (``repro verify lint``).
2. **Monitors** — every verification scenario runs to completion with
   the strict runtime monitor attached and zero findings.
3. **Exploration (clean)** — every scenario's full schedule/fault tree
   is exhaustively explored with monitors on and produces no
   counterexample; trees that stop at ``--max-schedules`` without
   exhausting fail too (an unexplorable scenario is a scenario that
   proves nothing).
4. **Mutants (teeth)** — every hand-seeded protocol mutant in
   :mod:`repro.verify.mutants` is applied in turn and exploration of its
   target scenarios MUST produce a counterexample flagged with exactly
   the mutant's expected PROTO rule.  A verifier that stays green under
   a seeded bug is decoration; this stage is what keeps it honest.

On any counterexample (stage 3 or 4 when unexpected), the failing
schedule is replayed with tracing enabled and a Chrome-trace plus
schedule JSON land in ``--artifacts`` (default ``results/verify``) for
offline debugging.  Exit status is non-zero on any stage failure.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.sanitize import format_text, run_lint
from repro.sanitize.findings import PROTO_LINT_RULES
from repro.verify import MUTANTS, SCENARIOS, Explorer, ProtocolMonitor


def stage_lint(root: str) -> bool:
    findings = run_lint(root=root, rules=list(PROTO_LINT_RULES))
    if findings:
        print(format_text(findings))
        print(f"FAIL lint: {len(findings)} protocol lint finding(s)")
        return False
    print(f"ok   lint: tree clean under {', '.join(PROTO_LINT_RULES)}")
    return True


def stage_monitors() -> bool:
    ok = True
    for name in sorted(SCENARIOS):
        scen = SCENARIOS[name]()
        monitor = ProtocolMonitor(scen.sim, strict=False)
        scen.sim.attach_monitor(monitor)
        scen.prepare()
        scen.go()
        monitor.finalize()
        if monitor.findings:
            ok = False
            for f in monitor.findings:
                print(f"FAIL monitors[{name}]: {f.text()}")
        else:
            print(f"ok   monitors[{name}]: clean")
    return ok


def stage_explore(max_schedules: int, artifacts: str) -> bool:
    ok = True
    for name in sorted(SCENARIOS):
        t0 = time.perf_counter()
        result = Explorer(SCENARIOS[name], max_schedules=max_schedules,
                          artifacts_dir=artifacts).explore()
        dt = time.perf_counter() - t0
        stats = (f"{result.schedules_run} schedule(s), "
                 f"{result.pruned} pruned, depth {result.max_depth}, "
                 f"{dt:.1f}s")
        if not result.ok:
            cex = result.counterexample
            print(f"FAIL explore[{name}]: {cex.rule} on schedule "
                  f"{list(cex.schedule)} — {cex.message}")
            if cex.trace_path:
                print(f"     artifacts: {cex.trace_path}")
            ok = False
        elif not result.exhausted:
            print(f"FAIL explore[{name}]: tree not exhausted after {stats}")
            ok = False
        else:
            print(f"ok   explore[{name}]: exhausted, {stats}")
    return ok


def stage_mutants(max_schedules: int) -> bool:
    ok = True
    for name in sorted(MUTANTS):
        mutant = MUTANTS[name]
        caught = None
        with mutant.apply():
            for sname in mutant.scenarios:
                result = Explorer(SCENARIOS[sname],
                                  max_schedules=max_schedules).explore()
                if not result.ok:
                    caught = result.counterexample
                    break
        if caught is None:
            print(f"FAIL mutants[{name}]: escaped exploration of "
                  f"{', '.join(mutant.scenarios)} — the verifier is blind "
                  f"to: {mutant.description}")
            ok = False
        elif caught.rule != mutant.rule:
            print(f"FAIL mutants[{name}]: caught by {caught.rule}, "
                  f"expected {mutant.rule} ({caught.message})")
            ok = False
        else:
            print(f"ok   mutants[{name}]: {mutant.rule} on schedule "
                  f"{list(caught.schedule)}")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root for the lint stage")
    parser.add_argument("--max-schedules", type=int, default=20000)
    parser.add_argument("--artifacts", default="results/verify",
                        help="where counterexample replays are written")
    parser.add_argument("--skip-mutants", action="store_true",
                        help="skip the teeth stage (fast local runs)")
    args = parser.parse_args(argv)

    failed = []
    for name, run in [
        ("lint", lambda: stage_lint(args.root)),
        ("monitors", stage_monitors),
        ("explore", lambda: stage_explore(args.max_schedules, args.artifacts)),
        ("mutants", (lambda: True) if args.skip_mutants
         else lambda: stage_mutants(args.max_schedules)),
    ]:
        if not run():
            failed.append(name)
    if failed:
        print(f"check_verify: FAILED stage(s): {', '.join(failed)}")
        return 1
    print("check_verify: all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
