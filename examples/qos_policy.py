#!/usr/bin/env python3
"""CoRD payoff #1: OS-enforced QoS on the RDMA dataplane.

Two tenants stream from the same host through one 100 Gbit/s NIC: a
well-behaved "victim" and a greedy "bully".  With kernel bypass the OS can
only watch the bully starve the victim.  With CoRD, a token-bucket QoS
policy in the kernel caps the bully per-operation — no NIC offload, no
SmartNIC, no dedicated polling cores.

Run:  python examples/qos_policy.py
"""

from repro.cluster import build_cluster
from repro.core.endpoint import make_endpoint, connect
from repro.core.policies import TokenBucketQos
from repro.core.policy import PolicyChain
from repro.errors import PolicyViolation
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import ms, to_gbit_per_s, us
from repro.verbs.wr import Opcode, SendWR

MSG = 64 * 1024
DURATION_NS = ms(4)


def run(bully_dataplane: str, bully_policies=None) -> tuple[float, float]:
    """Returns (victim_gbit, bully_gbit) achieved over the shared NIC."""
    sim = Simulator(seed=5)
    _fabric, hosts = build_cluster(sim, SYSTEM_L, 2)
    src, dst = hosts
    done = []

    def stream(name, kind, policies, tenant):
        ep = yield from make_endpoint(src, kind, policies=policies, tenant=tenant)
        peer = yield from make_endpoint(dst, "bypass")
        yield from connect(ep, peer)
        sent = 0
        t0 = sim.now
        inflight = 0
        while sim.now - t0 < DURATION_NS:
            wr = SendWR(wr_id=sent, opcode=Opcode.RDMA_WRITE, addr=ep.buf.addr,
                        length=MSG, lkey=ep.mr.lkey,
                        remote_addr=peer.buf.addr, rkey=peer.mr.rkey)
            try:
                yield from ep.post_send(wr)
                inflight += 1
                sent += 1
            except PolicyViolation:
                # EAGAIN from the QoS policy: back off briefly and retry.
                yield sim.timeout(us(5))
                continue
            if inflight >= 32:
                cqes = yield from ep.wait_send()
                inflight -= len(cqes)
        done.append((name, sent * MSG, sim.now - t0))

    sim.process(stream("victim", "bypass", None, "victim"))
    sim.process(stream("bully", bully_dataplane, bully_policies, "bully"))
    sim.run()
    rates = {name: to_gbit_per_s(nbytes / dur) for name, nbytes, dur in done}
    return rates["victim"], rates["bully"]


def main() -> None:
    print("Two tenants share one 100 Gbit/s NIC (64 KiB RDMA writes)\n")
    v, b = run("bypass")
    print("  kernel bypass, no control possible:")
    print(f"    victim {v:6.1f} Gbit/s   bully {b:6.1f} Gbit/s\n")

    qos = PolicyChain([TokenBucketQos(rate_bytes_per_s=2.5e9,  # 20 Gbit/s cap
                                      burst_bytes=1 << 20)])
    v, b = run("cord", qos)
    print("  bully moved to CoRD with a 20 Gbit/s token-bucket policy:")
    print(f"    victim {v:6.1f} Gbit/s   bully {b:6.1f} Gbit/s")
    print("\n  The OS capped the bully at its QoS rate and the victim "
          "reclaimed the wire.")


if __name__ == "__main__":
    main()
