#!/usr/bin/env python3
"""CoRD payoff #3: suspending a live RDMA connection, no app cooperation.

The paper's abstract names the wound kernel bypass inflicts: the OS loses
"control over existing network connections."  Here a tenant streams RDMA
writes; mid-stream the operator suspends its dataplane through the CoRD
SuspendGate policy.  The app's posts bounce with EAGAIN, in-flight work
drains cleanly, the operator resumes, and the stream continues — the
primitive beneath transparent migration (MigrOS) and live re-policying.
With kernel bypass, the NIC would have kept DMA-ing and there would have
been nothing the OS could do.

Run:  python examples/suspend_resume.py
"""

from repro.cluster import build_pair
from repro.core.endpoint import make_rc_pair
from repro.core.policies import SuspendGate
from repro.core.policy import PolicyChain
from repro.errors import PolicyViolation
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import ms, to_ms, us
from repro.verbs.wr import Opcode, SendWR

MSG = 64 * 1024


def main() -> None:
    sim = Simulator(seed=6)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    gate = SuspendGate()
    timeline = []

    def app():
        # Modest buffers: registering 16 MiB would pin pages for ~1.7 ms
        # of simulated time before the stream starts.
        a, b = yield from make_rc_pair(host_a, host_b, "cord", "bypass",
                                       policies_a=PolicyChain([gate]),
                                       buf_bytes=2 << 20)
        sent = 0
        denials = 0
        inflight = 0
        next_sample = ms(0.25)
        while sim.now < ms(3):
            if sim.now >= next_sample:
                timeline.append((sim.now, sent, denials))
                next_sample += ms(0.25)
            wr = SendWR(wr_id=sent, opcode=Opcode.RDMA_WRITE, addr=a.buf.addr,
                        length=MSG, lkey=a.mr.lkey,
                        remote_addr=b.buf.addr, rkey=b.mr.rkey)
            try:
                yield from a.post_send(wr)
                sent += 1
                inflight += 1
            except PolicyViolation:
                denials += 1
                yield sim.timeout(us(50))
            if inflight >= 16:
                inflight -= len((yield from a.wait_send()))
        timeline.append((sim.now, sent, denials))

    def operator():
        yield sim.timeout(ms(1))
        gate.suspend("default")
        timeline.append((sim.now, "SUSPEND", None))
        yield sim.timeout(ms(1))
        gate.resume("default")
        timeline.append((sim.now, "RESUME", None))

    sim.process(app(), name="tenant")
    sim.process(operator(), name="operator")
    sim.run()

    print("Tenant streams 64 KiB RDMA writes over CoRD; the operator\n"
          "suspends its dataplane at t=1 ms and resumes at t=2 ms:\n")
    for t, a, b in timeline:
        if isinstance(a, str):
            print(f"  t={to_ms(t):6.3f} ms  >>> operator: {a}")
        else:
            print(f"  t={to_ms(t):6.3f} ms  sent={a:5}  denied-posts={b}")
    print("\nThe stream froze exactly while suspended (denials piled up, "
          "nothing reached the NIC), then resumed untouched — OS control "
          "over an existing RDMA connection.")


if __name__ == "__main__":
    main()
