#!/usr/bin/env python3
"""Run a mini NPB suite over the three dataplanes — fig. 6 in miniature.

Spins up the two-node Azure HB120 testbed, runs IS / CG / EP with 8 MPI
ranks over kernel-bypass RDMA, CoRD and IPoIB, and prints the relative
runtimes.  This is the paper's headline end-to-end result: CoRD costs
almost nothing, the socket path costs up to 2x.

Run:  python examples/npb_cluster.py
"""

from repro.npb import NpbConfig, run_npb

BENCHES = ("IS", "CG", "EP")
TRANSPORTS = ("bypass", "cord", "ipoib")


def main() -> None:
    print("NPB class A, 8 ranks, 2 simulated HB120 nodes (system A)\n")
    print(f"{'bench':>6} {'RDMA ms':>10} {'CoRD':>8} {'IPoIB':>8}")
    for name in BENCHES:
        cfg = NpbConfig(name=name, klass="A", ranks=8, iter_scale=0.5)
        results = {t: run_npb(cfg, transport=t, system="A") for t in TRANSPORTS}
        base = results["bypass"].elapsed_ns
        print(f"{name:>6} {base / 1e6:10.2f} "
              f"{results['cord'].elapsed_ns / base:7.3f}x "
              f"{results['ipoib'].elapsed_ns / base:7.3f}x")
    print("\nCoRD keeps RDMA speed; IPoIB pays the full socket-stack tax.")


if __name__ == "__main__":
    main()
