#!/usr/bin/env python3
"""CoRD beyond networking: the storage dataplane (paper §6 outlook).

Drives an NVMe-class device three ways — SPDK-style user-space bypass,
CoRD (submit/poll through the kernel + an IO rate-limit policy), and the
classic blocking block layer — and prints 4 KiB random-read IOPS plus the
QoS enforcement that only the interposed paths can provide.

Run:  python examples/storage_dataplanes.py
"""

from repro.errors import PolicyViolation
from repro.hw.cpu import Core
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.storage import (
    CordStorageDataplane,
    IoRateLimit,
    KernelBlockDataplane,
    NvmeDevice,
    SpdkDataplane,
)
from repro.storage.dataplane import make_command
from repro.storage.policies import StoragePolicyChain
from repro.units import us

TOTAL = 2000
QD = 32


def iops(kind: str, policies=None) -> float:
    sim = Simulator(seed=4)
    device = NvmeDevice(sim)
    core = Core(sim, SYSTEM_L)
    dp = {
        "spdk": lambda: SpdkDataplane(device, core, SYSTEM_L),
        "cord": lambda: CordStorageDataplane(device, core, SYSTEM_L,
                                             policies=policies),
        "blk": lambda: KernelBlockDataplane(device, core, SYSTEM_L),
    }[kind]()

    def main():
        t0 = sim.now
        if kind == "blk":
            for i in range(TOTAL // 10):  # QD=1 API; fewer IOs suffice
                yield from dp.run_io(make_command("read", i, 4096))
            return (TOTAL // 10) / (sim.now - t0) * 1e9
        submitted = done = 0
        while done < TOTAL:
            while submitted < TOTAL and dp.qp.outstanding < QD:
                try:
                    yield from dp.submit(make_command("read", submitted, 4096))
                    submitted += 1
                except PolicyViolation:
                    yield sim.timeout(us(20))  # QoS said EAGAIN: back off
            done += len((yield from dp.wait()))
        return TOTAL / (sim.now - t0) * 1e9

    return sim.run(sim.process(main()))


def main() -> None:
    print("4 KiB random reads on a low-latency NVMe device (QD=32)\n")
    for kind, label in (("spdk", "SPDK bypass    "),
                        ("cord", "CoRD           "),
                        ("blk", "kernel block   ")):
        print(f"  {label}: {iops(kind) / 1e3:8.0f} kIOPS")
    capped = iops("cord", StoragePolicyChain(
        [IoRateLimit(rate_bytes_per_s=400e6, burst_bytes=1 << 20)]))
    print(f"  CoRD + 400 MB/s IO rate-limit policy: {capped / 1e3:8.0f} kIOPS "
          f"(~{capped * 4096 / 1e6:.0f} MB/s)")
    print("\nSame story as the network: interposition costs a constant, "
          "the full kernel stack costs multiples — and only the interposed "
          "dataplane can enforce per-tenant policy.")


if __name__ == "__main__":
    main()
