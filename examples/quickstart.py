#!/usr/bin/env python3
"""Quickstart: an RDMA ping-pong over bypass and over CoRD.

Builds the paper's two-node testbed (system L), connects a pair of RC
endpoints, bounces a message back and forth, and prints what the CoRD
detour through the kernel costs — the core trade-off of the paper in
thirty lines of API.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_pair
from repro.core.endpoint import make_rc_pair
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.verbs.wr import Opcode, RecvWR, SendWR


def ping_pong(kind: str, rounds: int = 100, size: int = 4096) -> float:
    """Average one-way latency (us) with both sides on dataplane ``kind``."""
    sim = Simulator(seed=1)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

    def main():
        client, server = yield from make_rc_pair(host_a, host_b, kind, kind)

        def responder():
            for _ in range(rounds):
                yield from server.post_recv(RecvWR(
                    wr_id=0, addr=server.buf.addr, length=server.buf.length,
                    lkey=server.mr.lkey))
                cqes = yield from server.wait_recv()
                assert cqes[0].ok
                yield from server.post_send(SendWR(
                    wr_id=0, opcode=Opcode.SEND, addr=server.buf.addr,
                    length=size, lkey=server.mr.lkey))

        sim.process(responder(), name="server")
        start = sim.now
        for _ in range(rounds):
            yield from client.post_recv(RecvWR(
                wr_id=0, addr=client.buf.addr, length=client.buf.length,
                lkey=client.mr.lkey))
            yield from client.post_send(SendWR(
                wr_id=0, opcode=Opcode.SEND, addr=client.buf.addr,
                length=size, lkey=client.mr.lkey))
            cqes = yield from client.wait_recv()
            assert cqes[0].ok
        return (sim.now - start) / rounds / 2.0  # one-way ns

    return sim.run(sim.process(main())) / 1000.0


def main() -> None:
    print(f"RC send ping-pong, 4 KiB, system L ({SYSTEM_L.nic.link_bw * 8:.0f} Gbit/s)")
    lat_bp = ping_pong("bypass")
    lat_cd = ping_pong("cord")
    print(f"  kernel bypass : {lat_bp:6.2f} us one-way")
    print(f"  CoRD          : {lat_cd:6.2f} us one-way")
    print(f"  CoRD overhead : {lat_cd - lat_bp:6.2f} us "
          f"(+{(lat_cd / lat_bp - 1) * 100:.0f}%) — the price of giving the "
          f"OS back its dataplane")


if __name__ == "__main__":
    main()
