#!/usr/bin/env python3
"""CoRD payoff #2: per-flow observability without touching the application.

Three workloads with different traffic shapes run over CoRD with the
FlowStats policy installed, plus a security ACL that blocks RDMA reads
from one tenant.  The OS-side report shows per-flow operation mixes, byte
counts and message-size histograms — eBPF-style visibility that kernel
bypass makes impossible.

Run:  python examples/observability.py
"""

from repro.cluster import build_pair
from repro.core.endpoint import connect, make_endpoint
from repro.core.policies import AclRule, FlowStats, SecurityAcl
from repro.core.policy import PolicyChain
from repro.errors import PolicyViolation
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.units import pretty_size
from repro.verbs.wr import Opcode, RecvWR, SendWR


def main() -> None:
    sim = Simulator(seed=9)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    stats = FlowStats()
    acl = SecurityAcl([AclRule(action="deny", tenant="analytics",
                               opcode=Opcode.RDMA_READ)])
    chain = PolicyChain([stats, acl])
    denied = []

    def workload(name, sizes, opcode):
        ep = yield from make_endpoint(host_a, "cord", policies=chain, tenant=name)
        peer = yield from make_endpoint(host_b, "bypass")
        yield from connect(ep, peer)
        if opcode is Opcode.SEND:
            for i, size in enumerate(sizes):
                yield from peer.post_recv(RecvWR(wr_id=i, addr=peer.buf.addr,
                                                 length=peer.buf.length,
                                                 lkey=peer.mr.lkey))
        for i, size in enumerate(sizes):
            wr = SendWR(wr_id=i, opcode=opcode, addr=ep.buf.addr, length=size,
                        lkey=ep.mr.lkey, remote_addr=peer.buf.addr,
                        rkey=peer.mr.rkey)
            try:
                yield from ep.post_send(wr)
                cqes = yield from ep.wait_send()
                assert cqes[0].ok
            except PolicyViolation as exc:
                denied.append((name, str(exc)))

    sim.process(workload("kv-store", [64] * 200, Opcode.SEND))
    sim.process(workload("backup", [1 << 20] * 8, Opcode.RDMA_WRITE))
    sim.process(workload("analytics", [4096] * 20, Opcode.RDMA_READ))
    sim.run()

    print("OS-side flow report (FlowStats CoRD policy):\n")
    for flow in stats.report():
        sends = flow["ops"].get("post_send", 0)
        hist = ", ".join(
            f"{pretty_size(1 << b)}:{n}" for b, n in sorted(flow["size_hist"].items())
        )
        print(f"  tenant={flow['tenant']:<10} qpn={flow['qpn']:<6}"
              f" sends={sends:<5} bytes={flow['bytes_sent']:>10}"
              f" rate={flow['msg_rate_per_s']:>12.0f}/s")
        if hist:
            print(f"    size histogram: {hist}")
    print(f"\nSecurity ACL denied {len(denied)} operation(s):")
    for tenant, reason in denied[:3]:
        print(f"  {tenant}: {reason}")
    print("\nNo application changed a line of code for any of this.")


if __name__ == "__main__":
    main()
