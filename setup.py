"""Setup shim.

The runtime image has setuptools but no `wheel`, so PEP-660 editable installs
fail; this shim lets `pip install -e . --no-use-pep517 --no-build-isolation`
take the legacy `setup.py develop` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
