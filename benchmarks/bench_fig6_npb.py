"""Figure 6 — NPB relative runtimes on system A (paper §5).

The full suite (IS, EP, CG, MG, FT, LU, BT, SP) over three transports:
kernel-bypass RDMA (the baseline), CoRD, and IPoIB.  Shared-memory
communication is not available in the MPI layer, matching the paper's
setup that forces all traffic through the NIC.

Paper claims checked:

- CoRD has near-zero overhead for *every* benchmark;
- IPoIB is up to ~2x slower, worst for IS and SP (simultaneously data- and
  message-intensive);
- EP (almost no communication) ties across transports;
- EP and CG may see a marginal CoRD benefit (DVFS/syscall interaction).

Scale knobs: ranks and iteration fractions are reduced by default so the
full grid simulates in minutes; relative runtimes are per-iteration and
insensitive to the reduction (set REPRO_BENCH_SCALE=1 and RANKS below for
a fuller run).
"""

import os

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import bench_scale, emit, report_checks
from repro.npb import run_suite
from repro.npb.runner import DEFAULT_SUITE

RANKS = int(os.environ.get("REPRO_NPB_RANKS", "16"))


def _sweep():
    iter_scale = max(0.02, 0.08 * bench_scale())
    return run_suite(names=DEFAULT_SUITE, klass="B", ranks=RANKS,
                     iter_scale=iter_scale, system="A")


def _report(grid):
    table = SweepTable(
        f"Fig 6: NPB class B relative runtime on system A ({RANKS} ranks)",
        "benchmark",
    )
    s_cord = table.new_series("CoRD/RDMA")
    s_ipoib = table.new_series("IPoIB/RDMA")
    s_base = table.new_series("RDMA ms/iter")
    for name, row in grid.items():
        base = row["bypass"].elapsed_ns
        s_cord.add(name, row["cord"].elapsed_ns / base)
        s_ipoib.add(name, row["ipoib"].elapsed_ns / base)
        s_base.add(name, row["bypass"].per_iter_ns / 1e6)
    header, rows = table.rows()
    text = format_table(header, rows, table.title)

    checks = []
    # The quantitative bounds are calibrated at the default 16-rank scale;
    # larger worlds strong-scale class B and legitimately raise the IPoIB
    # penalty (fixed problem bytes over shrinking compute), so we report
    # but do not assert them there.
    strict = RANKS <= 24
    for name in DEFAULT_SUITE:
        checks.append(check_between(
            f"{name}: CoRD near-zero overhead", s_cord.y_at(name), 0.97, 1.08))
    checks.append(check_between("IS: IPoIB ~2x slower", s_ipoib.y_at("IS"), 1.5, 2.6))
    checks.append(check_between("SP: IPoIB among the slowest", s_ipoib.y_at("SP"), 1.3, 2.6))
    checks.append(check_between("EP: transports tie", s_ipoib.y_at("EP"), 0.97, 1.05))
    worst_two = sorted(DEFAULT_SUITE, key=lambda n: -s_ipoib.y_at(n))[:2]
    checks.append(check_between(
        "IS and SP are the worst IPoIB cases",
        float(set(worst_two) == {"IS", "SP"}), 1.0, 1.0))
    ipoib_max = max(s_ipoib.y_at(n) for n in DEFAULT_SUITE)
    checks.append(check_between("IPoIB worst case 'up to 2x'", ipoib_max, 1.6, 2.7))
    emit("fig6_npb", text + "\n" + report_checks("fig6", checks, strict=strict))


@pytest.mark.benchmark(group="fig6")
def test_fig6_npb_relative_runtime(benchmark):
    _report(benchmark.pedantic(_sweep, rounds=1, iterations=1))


def main():
    _report(_sweep())


if __name__ == "__main__":
    main()
