"""Figure 3 — CoRD's per-side latency overhead on system L (paper §5).

4 KiB messages over RC (Send/Read/Write) and UD (Send); client and server
independently run bypass (BP) or CoRD (CD).  Reported as *absolute overhead*
versus the BP->BP baseline of the same operation, exactly like the figure.

Paper claims checked:

- RDMA read with CoRD only at the server adds ~zero (the server CPU never
  participates in a read);
- for all other operations, each CoRD side contributes roughly equally;
- the overhead is a constant, not proportional to message size.

Iteration counts match the perftest defaults the paper ran (1000 lat
iterations); steady-state fast-forward keeps them affordable.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import (
    emit,
    figure_bench,
    parallel_sweep,
    record_attribution_probes,
    report_checks,
    scaled,
)
from repro.perftest.runner import PerftestConfig, run_lat

SIZE = 4096
COMBOS = [("bypass", "bypass"), ("cord", "bypass"), ("bypass", "cord"), ("cord", "cord")]
OPS = [("RC", "send"), ("RC", "read"), ("RC", "write"), ("UD", "send")]


def _lat_point(point):
    cfg, size = point
    return run_lat(cfg, size).avg_us


def _sweep():
    points = []
    for transport, op in OPS:
        for client, server in COMBOS:
            cfg = PerftestConfig(system="L", transport=transport, op=op,
                                 client=client, server=server,
                                 iters=scaled(1000), warmup=20)
            points.append((cfg, SIZE))
    # The size-independence probe points ride the same fan-out.
    for size in (256, 65536):
        points.append((PerftestConfig(system="L", iters=scaled(1000), warmup=20),
                       size))
        points.append((PerftestConfig(system="L", client="cord", server="cord",
                                      iters=scaled(1000), warmup=20), size))
    values = iter(parallel_sweep(_lat_point, points))

    table = SweepTable(
        "Fig 3: latency overhead vs BP->BP at 4 KiB on system L (us)", "config"
    )
    combo_label = {c: f"{a[:2].upper()}->{b[:2].upper()}" for c, (a, b) in
                   zip(range(4), COMBOS)}
    for transport, op in OPS:
        series = table.new_series(f"{transport}-{op}")
        base = None
        for idx in range(len(COMBOS)):
            lat = next(values)
            if base is None:
                base = lat
            series.add(combo_label[idx], lat - base)
    deltas = []
    for _size in (256, 65536):
        bp = next(values)
        cd = next(values)
        deltas.append(cd - bp)
    return table, deltas


def _report(table, deltas):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    read = table.get("RC-read")
    send = table.get("RC-send")
    ud = table.get("UD-send")
    checks = [
        # Server-side CoRD adds nothing to RDMA read.
        check_between("read BP->CD overhead ~ 0 us", read.y_at("BY->CO"), -0.05, 0.05),
        # But client-side CoRD does.
        check_between("read CO->BY overhead > 0", read.y_at("CO->BY"), 0.2, 3.0),
        # Send: each side contributes ~equally; both together ~ sum.
        check_between("send sides equal (CO->BY vs BY->CO)",
                      send.y_at("CO->BY") / send.y_at("BY->CO"), 0.7, 1.4),
        check_between("send CO->CO ~ sum of sides",
                      send.y_at("CO->CO") /
                      (send.y_at("CO->BY") + send.y_at("BY->CO")), 0.7, 1.3),
        check_between("UD sides equal",
                      ud.y_at("CO->BY") / ud.y_at("BY->CO"), 0.7, 1.4),
        # Magnitude: sub-2us per side on system L.
        check_between("send one-side overhead (us)", send.y_at("CO->BY"), 0.1, 2.0),
        # Size-independence: send CO->CO overhead at two more sizes.
        check_between("overhead size-independent (65KiB vs 256B)",
                      deltas[1] / deltas[0], 0.7, 1.4),
    ]
    emit("fig3_latency_overhead", text + "\n" + report_checks("fig3", checks))


@pytest.mark.benchmark(group="fig3")
def test_fig3_latency_overhead(benchmark):
    table, deltas = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(table, deltas)


def main():
    with figure_bench("fig3"):
        _report(*_sweep())
    # Pinned-iteration stage attribution (BP vs CoRD blame baselines).
    record_attribution_probes("fig3")


if __name__ == "__main__":
    main()
