"""Ablations beyond the paper's figures (design-choice studies).

1. **Inline support in CoRD** — the fig. 5a bimodality's cause, isolated:
   the same system with/without ``cord_inline_supported``.
2. **KPTI** — the paper disables it everywhere; quantify what re-enabling
   kernel page-table isolation costs bypass (nothing) vs CoRD (per-op).
3. **Policy cost sweep** — CoRD latency as the policy chain grows
   (0..4 shipped policies), validating the "lightweight, non-blocking
   policies" premise.
4. **Polling vs events under CoRD** — both dataplanes pay the no-polling
   constant similarly (the techniques compose).
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, parallel_sweep, report_checks, scaled
from repro.core.policies import FlowStats, IsolationQuota, SecurityAcl, TokenBucketQos
from repro.core.policy import PolicyChain
from repro.hw.profiles import SYSTEM_A, SYSTEM_L
from repro.perftest.lat import send_lat
from repro.perftest.runner import PerftestConfig, run_lat
from repro.perftest.techniques import Techniques
from repro.cluster import build_pair
from repro.core.endpoint import connect, make_endpoint, make_rc_pair
from repro.sim import Simulator
from repro.units import ms, us
from repro.verbs.wr import Opcode, RecvWR, SendWR


def _lat_with(system, policies_a=None, policies_b=None, size=4096, iters=None,
              kinds=("cord", "cord"), seed=7):
    iters = iters if iters is not None else scaled(150)
    sim = Simulator(seed=seed)
    _f, host_a, host_b = build_pair(sim, system)
    out = {}

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kinds[0], kinds[1],
                                       policies_a=policies_a, policies_b=policies_b)
        result = yield from send_lat(sim, a, b, size, iters=iters, warmup=20)
        out["r"] = result

    sim.run(sim.process(main()))
    return out["r"]


def _lat_with_point(point):
    """Sweep-point adapter: kwargs dict for :func:`_lat_with` -> avg_us."""
    return _lat_with(**point).avg_us


def _run_lat_point(point):
    cfg, size = point
    return run_lat(cfg, size).avg_us


# -- 1. inline support --------------------------------------------------------------


def _inline_sweep():
    with_inline = SYSTEM_A.with_overrides(cord_inline_supported=True)
    without = SYSTEM_A.with_overrides(cord_inline_supported=False)
    sizes = (64, 256, 1024)
    points = ([{"system": with_inline, "size": s} for s in sizes]
              + [{"system": without, "size": s} for s in sizes])
    values = iter(parallel_sweep(_lat_with_point, points))
    table = SweepTable("Ablation: CoRD inline support on system A (us)", "size")
    s_with = table.new_series("inline")
    s_without = table.new_series("no inline")
    for s in sizes:
        s_with.add(s, next(values))
    for s in sizes:
        s_without.add(s, next(values))
    return table


def _report_inline(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    gap = table.get("no inline").y_at(64) - table.get("inline").y_at(64)
    checks = [check_between("no-inline adds a small-message tax (us)", gap, 0.3, 2.5)]
    emit("ablation_inline", text + "\n" + report_checks("ablation_inline", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_cord_inline(benchmark):
    """Inline removal reproduces the small-message overhead mode."""
    _report_inline(benchmark.pedantic(_inline_sweep, rounds=1, iterations=1))


# -- 2. KPTI ------------------------------------------------------------------------


def _kpti_sweep():
    base = SYSTEM_L
    kpti = SYSTEM_L.with_overrides(kpti=True)
    labeled = [
        ("bypass kpti=off", {"system": base, "kinds": ("bypass", "bypass")}),
        ("bypass kpti=on", {"system": kpti, "kinds": ("bypass", "bypass")}),
        ("cord kpti=off", {"system": base}),
        ("cord kpti=on", {"system": kpti}),
    ]
    values = parallel_sweep(_lat_with_point, [p for _, p in labeled])
    table = SweepTable("Ablation: KPTI on system L, 4 KiB send (us)", "dataplane")
    s = table.new_series("latency")
    for (label, _), value in zip(labeled, values):
        s.add(label, value)
    return table


def _report_kpti(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    s = table.get("latency")
    bypass_delta = s.y_at("bypass kpti=on") - s.y_at("bypass kpti=off")
    cord_delta = s.y_at("cord kpti=on") - s.y_at("cord kpti=off")
    checks = [
        check_between("bypass unaffected by KPTI (us)", bypass_delta, -0.02, 0.02),
        check_between("CoRD pays per-op KPTI tax (us)", cord_delta, 0.3, 3.0),
    ]
    emit("ablation_kpti", text + "\n" + report_checks("ablation_kpti", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_kpti(benchmark):
    """KPTI taxes every CoRD op but leaves bypass untouched."""
    _report_kpti(benchmark.pedantic(_kpti_sweep, rounds=1, iterations=1))


# -- 3. policy-chain cost -----------------------------------------------------------


def _policy_chains():
    yield "none", None
    yield "+stats", PolicyChain([FlowStats()])
    yield "+acl", PolicyChain([FlowStats(), SecurityAcl([])])
    yield "+quota", PolicyChain([
        FlowStats(), SecurityAcl([]),
        IsolationQuota(epoch_ns=ms(100), max_ops=10**9),
    ])
    yield "+qos", PolicyChain([
        FlowStats(), SecurityAcl([]),
        IsolationQuota(epoch_ns=ms(100), max_ops=10**9),
        TokenBucketQos(rate_bytes_per_s=1e12, burst_bytes=1 << 30),
    ])


def _policy_args(policy):
    """Constructor args to clone a shipped policy with fresh state."""
    if isinstance(policy, TokenBucketQos):
        return (policy.rate_per_ns * 1e9, int(policy.burst_bytes))
    if isinstance(policy, SecurityAcl):
        return (list(policy.rules),)
    if isinstance(policy, IsolationQuota):
        return (policy.epoch_ns, policy.max_ops, policy.max_bytes)
    return ()


def _policy_sweep():
    labels = []
    points = []
    for label, chain_a in _policy_chains():
        # Fresh chains per side (policies hold state).
        chain_b = None
        if chain_a is not None:
            chain_b = PolicyChain([type(p)(*_policy_args(p)) for p in chain_a])
        labels.append(label)
        points.append({"system": SYSTEM_L, "policies_a": chain_a,
                       "policies_b": chain_b})
    values = parallel_sweep(_lat_with_point, points)
    table = SweepTable("Ablation: CoRD policy-chain cost, 4 KiB send (us)", "chain")
    s = table.new_series("latency")
    for label, value in zip(labels, values):
        s.add(label, value)
    return table


def _report_policy(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    s = table.get("latency")
    full_tax = s.y_at("+qos") - s.y_at("none")
    checks = [
        check_between("full 4-policy chain tax (us, per ping-pong half)",
                      full_tax, 0.0, 1.0),
    ]
    emit("ablation_policy_cost", text + "\n" + report_checks("ablation_policy", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_policy_cost(benchmark):
    """Each added policy costs tens of ns/op — 'lightweight' holds."""
    _report_policy(benchmark.pedantic(_policy_sweep, rounds=1, iterations=1))


# -- 4. polling vs events -----------------------------------------------------------


def _event_mode_sweep():
    labeled = []
    for kind in ("bypass", "cord"):
        for tech in (Techniques(), Techniques(polling=False)):
            cfg = PerftestConfig(system="L", client=kind, server=kind,
                                 iters=scaled(150), warmup=20, techniques=tech)
            labeled.append((f"{kind}/{tech.label}", (cfg, 4096)))
    values = parallel_sweep(_run_lat_point, [p for _, p in labeled])
    table = SweepTable("Ablation: polling vs events, 4 KiB send (us)", "mode")
    s = table.new_series("latency")
    for (label, _), value in zip(labeled, values):
        s.add(label, value)
    return table


def _report_event_mode(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    s = table.get("latency")
    bp_tax = s.y_at("bypass/no polling") - s.y_at("bypass/baseline")
    cd_tax = s.y_at("cord/no polling") - s.y_at("cord/baseline")
    checks = [
        check_between("event-mode tax similar across dataplanes",
                      cd_tax / bp_tax, 0.6, 1.6),
    ]
    emit("ablation_event_mode", text + "\n" + report_checks("ablation_event", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_cord_event_mode(benchmark):
    """CoRD composes with the no-polling technique: constants add up."""
    _report_event_mode(benchmark.pedantic(_event_mode_sweep, rounds=1, iterations=1))


# -- 5. postlist batching -----------------------------------------------------------

_POSTLIST_SIZE = 64


def _postlist_throughput(point):
    kind, chain = point
    total = scaled(2048, minimum=512)
    sim = Simulator(seed=11)
    _f, host_a, host_b = build_pair(sim, SYSTEM_L)
    out = {}

    def main():
        a, b = yield from make_rc_pair(host_a, host_b, kind, "bypass")

        def rx():
            posted = 0
            got = 0
            while posted < min(total, 480):
                wrs = [RecvWR(wr_id=posted + i, addr=b.buf.addr,
                              length=b.buf.length, lkey=b.mr.lkey)
                       for i in range(32)]
                yield from b.dataplane.post_recv_many(b.qp, wrs)
                posted += 32
            while got < total:
                cqes = yield from b.wait_recv(16)
                reposts = []
                for c in cqes:
                    got += 1
                    if posted < total:
                        reposts.append(RecvWR(wr_id=posted, addr=b.buf.addr,
                                              length=b.buf.length,
                                              lkey=b.mr.lkey))
                        posted += 1
                yield from b.dataplane.post_recv_many(b.qp, reposts)
            out["end"] = sim.now

        sim.process(rx(), name="rx")
        sent = 0
        inflight = 0
        t0 = sim.now
        out["start"] = t0
        while sent < total:
            while inflight < 96 and sent < total:
                n = min(chain, total - sent, 96 - inflight)
                wrs = [SendWR(wr_id=sent + i, opcode=Opcode.SEND,
                              addr=a.buf.addr, length=_POSTLIST_SIZE, lkey=a.mr.lkey,
                              signaled=(i == n - 1))
                       for i in range(n)]
                yield from a.dataplane.post_send_many(a.qp, wrs)
                sent += n
                inflight += n
            cqes = yield from a.wait_send(16)
            inflight -= len(cqes) * max(chain, 1)

    sim.run(sim.process(main()))
    sim.run()
    return total / (out["end"] - out["start"]) * 1e6  # kmsg/s


def _postlist_sweep():
    chains = (1, 4, 16, 64)
    points = ([("cord", c) for c in chains] + [("bypass", c) for c in chains])
    values = iter(parallel_sweep(_postlist_throughput, points))
    table = SweepTable(
        "Ablation: CoRD postlist batching, 64 B sends (kmsg/s)", "chain"
    )
    s_cd = table.new_series("cord")
    s_bp = table.new_series("bypass")
    for chain in chains:
        s_cd.add(chain, next(values))
    for chain in chains:
        s_bp.add(chain, next(values))
    return table


def _report_postlist(table):
    header, rows = table.rows(fmt="{:.0f}")
    text = format_table(header, rows, table.title)
    cd, bp = table.get("cord"), table.get("bypass")
    checks = [
        check_between("unbatched CoRD well behind bypass",
                      cd.y_at(1) / bp.y_at(1), 0.2, 0.8),
        check_between("64-chain closes most of the gap",
                      cd.y_at(64) / bp.y_at(64), 0.8, 1.05),
        check_between("batching monotonically helps CoRD",
                      float(cd.y_at(64) > cd.y_at(16) > cd.y_at(1)), 1.0, 1.0),
    ]
    emit("ablation_postlist", text + "\n" + report_checks("ablation_postlist", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_postlist_batching(benchmark):
    """The paper's §6 thesis — "the problem is the API, not the
    transition" — made quantitative: chaining N sends into one
    ibv_post_send call amortizes CoRD's syscall, closing the
    small-message throughput gap as the chain grows."""
    _report_postlist(benchmark.pedantic(_postlist_sweep, rounds=1, iterations=1))


# -- 6. multicore scaling -----------------------------------------------------------

_MULTICORE_SIZE = 64


def _multicore_rate(point):
    kind, flows = point
    per_flow = scaled(600, minimum=200)
    sim = Simulator(seed=12)
    _f, host_a, host_b = build_pair(sim, SYSTEM_L)
    done = []

    def flow(idx):
        ep = yield from make_endpoint(host_a, kind, core=host_a.cpus.pin(idx))
        peer = yield from make_endpoint(host_b, "bypass",
                                        core=host_b.cpus.pin(idx))
        yield from connect(ep, peer)
        t0 = sim.now
        sent = 0
        inflight = 0
        while sent < per_flow:
            while inflight < 48 and sent < per_flow:
                # One-sided writes avoid receiver-side recv management.
                yield from ep.post_send(SendWR(
                    wr_id=sent, opcode=Opcode.RDMA_WRITE, addr=ep.buf.addr,
                    length=_MULTICORE_SIZE, lkey=ep.mr.lkey,
                    signaled=(sent % 16 == 15 or sent == per_flow - 1),
                    remote_addr=peer.buf.addr, rkey=peer.mr.rkey))
                sent += 1
                inflight += 1
            cqes = yield from ep.wait_send(16)
            inflight -= len(cqes) * 16
        done.append((t0, sim.now))

    for idx in range(flows):
        sim.process(flow(idx))
    sim.run()
    start = min(t0 for t0, _ in done)
    end = max(t1 for _, t1 in done)
    return flows * per_flow / (end - start) * 1e6  # kmsg/s


def _multicore_sweep():
    flow_counts = (1, 2, 3)
    points = [(kind, flows) for kind in ("bypass", "cord")
              for flows in flow_counts]
    values = iter(parallel_sweep(_multicore_rate, points))
    table = SweepTable("Ablation: multi-core aggregate 64 B msg rate (kmsg/s)",
                       "cores")
    for kind in ("bypass", "cord"):
        s = table.new_series(kind)
        for flows in flow_counts:
            s.add(flows, next(values))
    return table


def _report_multicore(table):
    header, rows = table.rows(fmt="{:.0f}")
    text = format_table(header, rows, table.title)
    cd = table.get("cord")
    bp = table.get("bypass")
    checks = [
        check_between("CoRD scales ~linearly to 3 cores",
                      cd.y_at(3) / cd.y_at(1), 2.2, 3.2),
        # Bypass starts ~2.5x faster per core and begins to hit the NIC's
        # WQE-rate ceiling by 3 cores — sublinear is the correct shape.
        check_between("bypass scales until the NIC binds",
                      bp.y_at(3) / bp.y_at(1), 1.4, 3.2),
    ]
    emit("ablation_multicore", text + "\n" + report_checks("ablation_multicore", checks))


@pytest.mark.benchmark(group="ablations")
def test_ablation_multicore_scaling(benchmark):
    """CoRD's overhead is per-core CPU time, not a shared kernel lock:
    aggregate message rate scales with communicating cores for both
    dataplanes (system L has 4 cores; we use 3 + leave one for noise)."""
    _report_multicore(benchmark.pedantic(_multicore_sweep, rounds=1, iterations=1))


def main():
    _report_inline(_inline_sweep())
    _report_kpti(_kpti_sweep())
    _report_policy(_policy_sweep())
    _report_event_mode(_event_mode_sweep())
    _report_postlist(_postlist_sweep())
    _report_multicore(_multicore_sweep())


if __name__ == "__main__":
    main()
