"""Storage-domain extension bench (paper §6 outlook).

IOPS and bandwidth over block sizes for the three storage dataplanes:
SPDK-style bypass, CoRD interposition, and the classic kernel block layer.
The expected shape mirrors the RDMA result: CoRD pays a constant per
command (visible only at small blocks / high IOPS), the full kernel path
pays multiples (block layer + interrupts), and everything converges at
large blocks where the device is the bottleneck.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, parallel_sweep, report_checks, scaled
from repro.hw.cpu import Core
from repro.hw.profiles import SYSTEM_L
from repro.sim import Simulator
from repro.storage import (
    CordStorageDataplane,
    KernelBlockDataplane,
    NvmeDevice,
    SpdkDataplane,
)
from repro.storage.dataplane import make_command
from repro.units import pretty_size

BLOCK_SIZES = [512, 4096, 16384, 65536, 262144, 1 << 20]
QD = 32


def _throughput(kind: str, nbytes: int, total: int) -> float:
    """Bytes/ns sustained at queue depth QD (QD=1 for the blocking path)."""
    sim = Simulator(seed=3)
    device = NvmeDevice(sim)
    core = Core(sim, SYSTEM_L)
    if kind == "spdk":
        dp = SpdkDataplane(device, core, SYSTEM_L)
    elif kind == "cord":
        dp = CordStorageDataplane(device, core, SYSTEM_L)
    else:
        dp = KernelBlockDataplane(device, core, SYSTEM_L)

    def main():
        t0 = sim.now
        if kind == "blk":
            # The blocking API is one-IO-at-a-time by construction.
            for i in range(total):
                yield from dp.run_io(make_command("read", i, nbytes))
        else:
            submitted = done = 0
            while done < total:
                while submitted < total and dp.qp.outstanding < QD:
                    yield from dp.submit(make_command("read", submitted, nbytes))
                    submitted += 1
                cmds = yield from dp.wait()
                done += len(cmds)
        return total * nbytes / (sim.now - t0)

    return sim.run(sim.process(main()))


def _throughput_point(point):
    return _throughput(*point)


def _sweep():
    total = scaled(300, minimum=60)
    blk_total = scaled(60, minimum=20)
    kinds = ("spdk", "cord", "blk")
    points = [(kind, nbytes, blk_total if kind == "blk" else total)
              for nbytes in BLOCK_SIZES for kind in kinds]
    values = iter(parallel_sweep(_throughput_point, points))
    iops = SweepTable("Storage: kIOPS by dataplane (QD=32; BLK is QD=1)", "block")
    rel = SweepTable("Storage: throughput relative to SPDK", "block")
    s_iops = {k: iops.new_series(k) for k in kinds}
    s_rel = {k: rel.new_series(k) for k in ("cord", "blk")}
    for nbytes in BLOCK_SIZES:
        tput = {kind: next(values) for kind in kinds}
        for k, v in tput.items():
            s_iops[k].add(pretty_size(nbytes), v / nbytes * 1e9 / 1e3)
        for k in ("cord", "blk"):
            s_rel[k].add(pretty_size(nbytes), tput[k] / tput["spdk"])
    return iops, rel


def _report(iops, rel):
    h1, r1 = iops.rows(fmt="{:.1f}")
    h2, r2 = rel.rows()
    text = format_table(h1, r1, iops.title) + "\n\n" + format_table(h2, r2, rel.title)
    cord = rel.get("cord")
    blk = rel.get("blk")
    checks = [
        check_between("CoRD small-block cost visible", cord.y_at("512 B"), 0.3, 0.95),
        check_between("CoRD converges at large blocks", cord.y_at("1 MiB"), 0.95, 1.02),
        check_between("kernel block path far behind at small blocks",
                      blk.y_at("4 KiB"), 0.005, 0.2),
        check_between("even BLK converges when the device binds",
                      blk.y_at("1 MiB"), 0.5, 1.02),
    ]
    emit("storage_dataplanes", text + "\n" + report_checks("storage", checks))


@pytest.mark.benchmark(group="storage")
def test_storage_dataplanes(benchmark):
    iops, rel = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(iops, rel)


def main():
    _report(*_sweep())


if __name__ == "__main__":
    main()
