"""Figure 4 — CoRD throughput relative to bypass on system L (paper §5).

Bandwidth sweep over message sizes for RC Send/Read/Write and UD Send
(UD caps at the 4 KiB MTU), plotting CD->CD throughput divided by BP->BP,
plus the bypass message rate (the figure's overlay lines).

Paper claims checked:

- constant per-message overhead => large degradation for small messages;
- degradation becomes insignificant with larger messages (for every
  transport/operation);
- at 32 KiB sends: ~370k msg/s and only ~1% degradation.

Iteration counts match the perftest defaults the paper ran (5000 bw
iterations); steady-state fast-forward keeps them affordable.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import (
    emit,
    figure_bench,
    parallel_sweep,
    record_attribution_probes,
    report_checks,
    scaled,
)
from repro.perftest.runner import PerftestConfig, run_bw
from repro.units import pretty_size

SIZES = [64, 256, 1024, 4096, 8192, 16384, 32768, 131072, 1 << 20]
OPS = [("RC", "send"), ("RC", "read"), ("RC", "write"), ("UD", "send")]


def _bw_point(point):
    cfg, size = point
    return run_bw(cfg, size)


def _sweep():
    keyed_points = []
    for transport, op in OPS:
        for size in SIZES:
            if transport == "UD" and size > 4096:
                continue
            bp_cfg = PerftestConfig(system="L", transport=transport, op=op,
                                    iters=scaled(5000), warmup=300, window=64)
            cd_cfg = bp_cfg.with_(client="cord", server="cord")
            keyed_points.append(((transport, op, size), (bp_cfg, size)))
            keyed_points.append(((transport, op, size), (cd_cfg, size)))
    results = parallel_sweep(_bw_point, [p for _, p in keyed_points])
    values = iter(zip((k for k, _ in keyed_points), results))

    table = SweepTable("Fig 4: CoRD relative throughput on system L", "size")
    rate = SweepTable("Fig 4 overlay: bypass message rate (Mmsg/s)", "size")
    for transport, op in OPS:
        rel = table.new_series(f"{transport}-{op}")
        mr = rate.new_series(f"{transport}-{op}")
        for size in SIZES:
            if transport == "UD" and size > 4096:
                continue
            (key, bp), (_, cd) = next(values), next(values)
            assert key == (transport, op, size)
            rel.add(pretty_size(size), cd.gbit_per_s / bp.gbit_per_s)
            mr.add(pretty_size(size), bp.msg_rate_per_s / 1e6)
    return table, rate


def _report(table, rate):
    h1, r1 = table.rows()
    h2, r2 = rate.rows()
    text = format_table(h1, r1, table.title) + "\n\n" + format_table(h2, r2, rate.title)
    checks = []
    for transport, op in OPS:
        s = table.get(f"{transport}-{op}")
        checks.append(check_between(
            f"{transport}-{op}: small messages degraded", s.y_at("64 B"), 0.15, 0.85))
        if transport == "UD":
            # UD tops out at the MTU, before the crossover completes.
            checks.append(check_between(
                "UD-send: degradation shrinking by 4 KiB",
                s.y_at("4 KiB") / s.y_at("64 B"), 1.0, 4.0))
        else:
            checks.append(check_between(
                f"{transport}-{op}: large messages ~unaffected",
                s.y_at("1 MiB"), 0.93, 1.05))
    send = table.get("RC-send")
    send_rate = rate.get("RC-send")
    checks.append(check_between(
        "32 KiB send msg rate (paper ~370k/s)",
        send_rate.y_at("32 KiB") * 1e6, 280_000, 450_000))
    checks.append(check_between(
        "32 KiB send degradation ~1%", send.y_at("32 KiB"), 0.95, 1.01))
    emit("fig4_throughput", text + "\n" + report_checks("fig4", checks))


@pytest.mark.benchmark(group="fig4")
def test_fig4_relative_throughput(benchmark):
    table, rate = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(table, rate)


def main():
    with figure_bench("fig4"):
        _report(*_sweep())
    # Pinned-iteration stage attribution of the windowed bw transmitter.
    record_attribution_probes("fig4")


if __name__ == "__main__":
    main()
