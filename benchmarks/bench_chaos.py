"""Chaos benchmark — dataplanes under a lossy fabric (repro.faults).

Sweeps the per-message loss rate and measures what a bypass (BP) and a
CoRD (CD) dataplane still achieve for RC send: bandwidth (windowed, so
loss stalls cost pipeline slots) and average latency (ping-pong, so every
drop eats a full ACK-timeout back-off).  The interesting claim is
*relative*: CoRD's kernel-policy path adds per-op CPU cost but loss
recovery happens entirely inside the NIC model, so both dataplanes
degrade by the same mechanism and the CD/BP ratio should stay roughly
flat while absolute numbers fall.

Shape checks:

- zero-loss results with a (do-nothing) fault plan attached are
  bit-identical to the faultless baseline — the hook itself is free;
- at zero loss nothing retransmits; under loss the retransmit counters
  are nonzero (loss recovery actually ran, nothing hung);
- every lossy bandwidth point sits below the clean baseline, and the
  retransmit count is non-decreasing in the loss rate (bandwidth itself
  need not be pointwise monotone: with a 64-deep window and selective
  repeat, overlapping recoveries at higher loss can locally beat a
  lower rate whose drops happened to serialize);
- latency under loss is no better than the clean run.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, parallel_sweep, report_checks, scaled
from repro.faults import FaultPlan
from repro.perftest.runner import PerftestConfig, run_bw, run_lat

SIZE = 4096
LOSSES = [0.0, 0.002, 0.01, 0.05]
PLANES = [("BP", "bypass"), ("CD", "cord")]


def _bw_point(point):
    cfg, size = point
    return run_bw(cfg, size)


def _lat_point(point):
    cfg, size = point
    return run_lat(cfg, size)


def _cfg(kind: str, loss: float) -> PerftestConfig:
    return PerftestConfig(
        system="L", transport="RC", op="send", client=kind, server=kind,
        iters=scaled(600), warmup=100, window=64,
        faults=FaultPlan(loss=loss) if loss > 0.0 else None,
    )


def _sweep():
    bw_points = [(_cfg(kind, loss), SIZE)
                 for _label, kind in PLANES for loss in LOSSES]
    lat_points = [(_cfg(kind, loss).with_(iters=scaled(300), warmup=30), SIZE)
                  for _label, kind in PLANES for loss in LOSSES]
    # The zero-loss-plan-attached control: same as the loss=0.0 baseline
    # but with a FaultPlan actually hooked into the fabric.
    control = (_cfg("bypass", 0.0).with_(faults=FaultPlan(loss=0.0)), SIZE)

    bw = parallel_sweep(_bw_point, bw_points + [control])
    lat = parallel_sweep(_lat_point, lat_points)
    control_bw = bw.pop()

    table = SweepTable(f"Chaos: RC send {SIZE} B bandwidth vs loss rate "
                       "(Gbit/s)", "loss")
    ltab = SweepTable(f"Chaos: RC send {SIZE} B avg latency vs loss rate "
                      "(us)", "loss")
    rtab = SweepTable("Chaos: retransmissions per run", "loss")
    it_bw, it_lat = iter(bw), iter(lat)
    for label, _kind in PLANES:
        sb = table.new_series(label)
        sl = ltab.new_series(label)
        sr = rtab.new_series(label)
        for loss in LOSSES:
            r = next(it_bw)
            sb.add(f"{loss:g}", r.gbit_per_s)
            sr.add(f"{loss:g}", float(r.retransmits))
        for loss in LOSSES:
            sl.add(f"{loss:g}", next(it_lat).avg_us)
    return table, ltab, rtab, bw, control_bw


def _report(table, ltab, rtab, bw_results, control_bw):
    parts = []
    for t in (table, ltab, rtab):
        h, r = t.rows()
        parts.append(format_table(h, r, t.title))
    text = "\n\n".join(parts)

    baseline_bp = bw_results[0]  # bypass at loss=0.0
    checks = [
        check_between(
            "zero-loss plan attached == no plan (bit-identical)",
            1.0 if repr(control_bw.duration_ns) == repr(baseline_bp.duration_ns)
            else 0.0, 1.0, 1.0),
        check_between(
            "zero-loss plan does not retransmit",
            float(control_bw.retransmits), 0.0, 0.0),
    ]
    for label, _kind in PLANES:
        s = table.get(label)
        r = rtab.get(label)
        ys = [s.y_at(f"{loss:g}") for loss in LOSSES]
        checks.append(check_between(
            f"{label}: every lossy bandwidth point below clean",
            1.0 if all(y < ys[0] for y in ys[1:]) else 0.0, 1.0, 1.0))
        rs = [r.y_at(f"{loss:g}") for loss in LOSSES]
        checks.append(check_between(
            f"{label}: retransmits non-decreasing with loss",
            1.0 if all(a <= b for a, b in zip(rs, rs[1:])) else 0.0, 1.0, 1.0))
        checks.append(check_between(
            f"{label}: loss recovery ran at 1% loss (retransmits > 0)",
            r.y_at("0.01"), 1.0, float("inf")))
        l = ltab.get(label)
        checks.append(check_between(
            f"{label}: latency under 5% loss >= clean latency",
            l.y_at("0.05") / l.y_at("0"), 1.0, float("inf")))
    emit("chaos_loss_sweep", text + "\n" + report_checks("chaos", checks))


@pytest.mark.benchmark(group="chaos")
def test_chaos_loss_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(*results)


def main():
    _report(*_sweep())


if __name__ == "__main__":
    main()
