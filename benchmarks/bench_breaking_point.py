"""The "breaking point" of CoRD (paper §6 future work).

The paper's outlook: "We intend to assemble a set of real-world benchmark
applications that shows the breaking point of CoRD."  This bench builds
the synthetic version: an MPI ping-pong workload whose per-rank message
intensity is swept from compute-bound to message-bound, reporting the
CoRD/bypass runtime ratio at each point — i.e. *where* the per-operation
kernel crossing starts to matter end to end.

Expected shape: negligible overhead while messages/second per rank stays
in NPB territory (hundreds to thousands), growing once per-message CPU
dominates — CoRD "breaks" around a few hundred thousand msgs/s per rank.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, parallel_sweep, report_checks, scaled
from repro.cluster import build_pair
from repro.hw.profiles import SYSTEM_L
from repro.mpi import MpiWorld
from repro.sim import Simulator
from repro.units import us

#: Compute between message exchanges (ns); smaller = more message-intensive.
COMPUTE_STEPS = [1_000_000.0, 100_000.0, 10_000.0, 1_000.0, 0.0]
MSG_BYTES = 512


def _runtime(transport: str, compute_ns: float, rounds: int) -> tuple[float, float]:
    sim = Simulator(seed=13)
    _fabric, host_a, host_b = build_pair(sim, SYSTEM_L)
    world = MpiWorld(sim, [host_a, host_b], 2, transport=transport)

    def program(comm):
        peer = 1 - comm.rank
        yield from comm.barrier()
        t0 = comm.sim.now
        for i in range(rounds):
            if compute_ns:
                yield from comm.compute(compute_ns)
            if comm.rank == 0:
                yield from comm.send(peer, nbytes=MSG_BYTES, tag=1)
                yield from comm.recv(peer, tag=2)
            else:
                yield from comm.recv(peer, tag=1)
                yield from comm.send(peer, nbytes=MSG_BYTES, tag=2)
        return comm.sim.now - t0

    results = world.run(program)
    elapsed = max(results)
    msg_rate = rounds * 2 / elapsed * 1e9  # msgs/s per rank
    return elapsed, msg_rate


def _runtime_point(point):
    return _runtime(*point)


def _sweep():
    rounds = scaled(400, minimum=100)
    points = []
    for compute_ns in COMPUTE_STEPS:
        points.append(("bypass", compute_ns, rounds))
        points.append(("cord", compute_ns, rounds))
    values = iter(parallel_sweep(_runtime_point, points))
    table = SweepTable(
        "Breaking point: CoRD/bypass runtime vs message intensity", "compute/msg"
    )
    ratio = table.new_series("CoRD/bypass")
    rate = table.new_series("bypass kmsg/s/rank")
    for compute_ns in COMPUTE_STEPS:
        bp, bp_rate = next(values)
        cd, _ = next(values)
        label = f"{compute_ns / 1000:.0f} us"
        ratio.add(label, cd / bp)
        rate.add(label, bp_rate / 1e3)
    return table


def _report(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    ratio = table.get("CoRD/bypass")
    checks = [
        # NPB-like intensity (~1 ms compute per message): CoRD invisible.
        check_between("compute-bound: overhead < 1%", ratio.y_at("1000 us"), 0.98, 1.01),
        # Moderate intensity: visible but bounded (strict ping-pong puts
        # the full CoRD RTT tax on the critical path — the worst case).
        check_between("10 us/msg: overhead moderate", ratio.y_at("10 us"), 1.0, 1.25),
        # Pure message bound: this is where CoRD breaks.
        check_between("message-bound: overhead pronounced", ratio.y_at("0 us"), 1.25, 3.0),
    ]
    emit("breaking_point", text + "\n" + report_checks("breaking_point", checks))


@pytest.mark.benchmark(group="breaking-point")
def test_breaking_point(benchmark):
    _report(benchmark.pedantic(_sweep, rounds=1, iterations=1))


def main():
    _report(_sweep())


if __name__ == "__main__":
    main()
