"""NPB world-size scale-out on a multi-host cluster with rx contention.

Sweeps MPI world size (4/8/16 ranks) for the comm-heavy IS (alltoall/v)
and CG (halo exchange) skeletons on a four-host cluster, bypass vs CoRD.
With >2 hosts ``build_cluster`` defaults to the receiver-side contention
model, so the many-to-one phases of these collectives contend for each
receiver's switch output port rather than enjoying the legacy fabric's
unbounded aggregate receive bandwidth.  A control point re-runs the
largest IS world with ``rx_contention=False`` to measure how much the
legacy fabric under-reported communication time.

Shape checks (loose — skeleton timings, not the paper's absolutes):

- strong scaling: per-iteration time falls as ranks split the fixed
  class-A problem;
- CoRD stays within 2x of bypass at every point;
- the legacy rx-off fabric is no slower than the contention model.
"""

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, parallel_sweep, report_checks
from repro.npb.base import NpbConfig
from repro.npb.runner import run_npb

RANKS = [4, 8, 16]
NAMES = ["IS", "CG"]
PLANES = [("BP", "bypass"), ("CD", "cord")]
HOSTS = 4
SYSTEM = "A"
ITER_SCALE = 0.1


def _point(point):
    cfg, transport, rx = point
    return run_npb(cfg, transport=transport, system=SYSTEM,
                   hosts_n=HOSTS, rx_contention=rx)


def _sweep():
    points = []
    for name in NAMES:
        for ranks in RANKS:
            cfg = NpbConfig(name=name, klass="A", ranks=ranks,
                            iter_scale=ITER_SCALE)
            for _label, transport in PLANES:
                points.append((cfg, transport, "auto"))
    # Control: the legacy source-port-only fabric at the largest world.
    legacy = (NpbConfig(name="IS", klass="A", ranks=RANKS[-1],
                        iter_scale=ITER_SCALE), "bypass", False)
    results = parallel_sweep(_point, points + [legacy])
    legacy_r = results.pop()
    return points, results, legacy_r


def _report(points, results, legacy_r):
    tables = {name: SweepTable(
        f"NPB {name}.A on {HOSTS} hosts: time per iteration (us)", "ranks")
        for name in NAMES}
    by_key = {}
    it = iter(results)
    for name in NAMES:
        series = {label: tables[name].new_series(label)
                  for label, _t in PLANES}
        for ranks in RANKS:
            for label, _t in PLANES:
                r = next(it)
                by_key[(name, ranks, label)] = r
                series[label].add(str(ranks), r.per_iter_ns / 1e3)

    parts = []
    for name in NAMES:
        h, rows = tables[name].rows()
        parts.append(format_table(h, rows, tables[name].title))
    rx_on = by_key[("IS", RANKS[-1], "BP")]
    parts.append(
        f"IS.A x{RANKS[-1]} control, rx contention off: "
        f"{legacy_r.per_iter_ns / 1e3:.1f} us/iter vs "
        f"{rx_on.per_iter_ns / 1e3:.1f} us/iter with it on"
    )
    text = "\n\n".join(parts)

    checks = []
    for name in NAMES:
        for label, _t in PLANES:
            times = [by_key[(name, r, label)].per_iter_ns for r in RANKS]
            checks.append(check_between(
                f"{name}/{label}: strong scaling (per-iter time falls)",
                1.0 if all(a > b for a, b in zip(times, times[1:]))
                else 0.0, 1.0, 1.0))
        for ranks in RANKS:
            rel = (by_key[(name, ranks, "CD")].per_iter_ns
                   / by_key[(name, ranks, "BP")].per_iter_ns)
            checks.append(check_between(
                f"{name} x{ranks}: CoRD within 2x of bypass", rel, 0.9, 2.0))
    checks.append(check_between(
        "legacy rx-off fabric is optimistic (no slower than rx on)",
        legacy_r.per_iter_ns / rx_on.per_iter_ns, 0.0, 1.001))
    emit("scaleout_npb", text + "\n" + report_checks("scaleout_npb", checks))


@pytest.mark.benchmark(group="scaleout")
def test_scaleout_npb(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(*results)


def main():
    _report(*_sweep())


if __name__ == "__main__":
    main()
