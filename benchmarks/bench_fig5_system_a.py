"""Figure 5 — latency overhead and relative throughput on system A (§5).

Same experiments as figs. 3/4, but on the virtualized Azure HB120 profile
(200 Gbit/s IB, noisy syscalls, CoRD without inline support).

Paper claims checked:

- per-message overhead is larger than on system L and noisier;
- the overhead is *bimodal*: messages <= 1 KiB pay more (CoRD lacks inline
  there), larger messages pay less;
- bandwidth reduction becomes negligible from a certain message size.

Note on the paper's "system L shows a higher throughput reduction than
system A" sentence: taken literally it contradicts the arithmetic of a
fixed per-message CPU cost on a faster wire (which binds *longer*).  We
reproduce the physical behaviour and read the sentence as comparing
opposite-direction anchors (see EXPERIMENTS.md).

Iteration counts match the perftest defaults the paper ran (5000 bw /
1000 lat iterations).  System A draws per-op syscall jitter, so most of
this figure cannot be fast-forwarded (the probe proves that and disarms);
it is the suite's irreducible full-fidelity core.
"""

import numpy as np
import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import (
    emit,
    figure_bench,
    parallel_sweep,
    record_attribution_probes,
    report_checks,
    scaled,
)
from repro.perftest.runner import PerftestConfig, run_bw, run_lat
from repro.units import pretty_size

LAT_SIZES = [64, 256, 512, 1024, 2048, 4096, 16384]
BW_SIZES = [256, 1024, 4096, 16384, 65536, 262144, 1 << 20]


def _lat_point(point):
    cfg, size = point
    return run_lat(cfg, size).avg_us


def _bw_point(point):
    cfg, size = point
    return run_bw(cfg, size).gbit_per_s


def _lat_sweep():
    points = []
    for size in LAT_SIZES:
        points.append((PerftestConfig(system="A", iters=scaled(1000), warmup=25),
                       size))
        points.append((PerftestConfig(system="A", client="cord", server="cord",
                                      iters=scaled(1000), warmup=25), size))
    values = iter(parallel_sweep(_lat_point, points))
    table = SweepTable(
        "Fig 5a: CoRD latency overhead on system A (us, CD->CD vs BP->BP)", "size"
    )
    over = table.new_series("RC-send overhead")
    for size in LAT_SIZES:
        bp = next(values)
        cd = next(values)
        over.add(pretty_size(size), cd - bp)
    return table


def _bw_sweep():
    combos = []
    points = []
    for transport, op in (("RC", "send"), ("RC", "write"), ("UD", "send")):
        for size in BW_SIZES:
            if transport == "UD" and size > 4096:
                continue
            bp_cfg = PerftestConfig(system="A", transport=transport, op=op,
                                    iters=scaled(5000), warmup=300, window=64)
            combos.append((transport, op, size))
            points.append((bp_cfg, size))
            points.append((bp_cfg.with_(client="cord", server="cord"), size))
    values = iter(parallel_sweep(_bw_point, points))
    table = SweepTable("Fig 5b: CoRD relative throughput on system A", "size")
    series = {}
    for transport, op, size in combos:
        name = f"{transport}-{op}"
        if name not in series:
            series[name] = table.new_series(name)
        bp = next(values)
        cd = next(values)
        series[name].add(pretty_size(size), cd / bp)
    return table


def _report_fig5a(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    over = table.get("RC-send overhead")
    small_mode = float(np.mean([over.y_at(pretty_size(s)) for s in (64, 256, 512, 1024)]))
    large_mode = float(np.mean([over.y_at(pretty_size(s)) for s in (2048, 4096, 16384)]))
    checks = [
        check_between("small-message mode (<=1 KiB) larger than large mode",
                      small_mode / large_mode, 1.15, 3.0),
        check_between("large-mode overhead exceeds system L's (~1.1 us)",
                      large_mode, 1.2, 4.0),
        check_between("small-mode overhead (us)", small_mode, 1.6, 5.0),
    ]
    emit("fig5a_latency_overhead", text + "\n" + report_checks("fig5a", checks))


def _report_fig5b(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    checks = []
    for name in ("RC-send", "RC-write"):
        s = table.get(name)
        checks.append(check_between(
            f"{name}: small messages degraded", s.y_at("1 KiB"), 0.1, 0.8))
        checks.append(check_between(
            f"{name}: negligible from some size on", s.y_at("1 MiB"), 0.93, 1.05))
    emit("fig5b_throughput", text + "\n" + report_checks("fig5b", checks))


@pytest.mark.benchmark(group="fig5")
def test_fig5a_latency_overhead(benchmark):
    _report_fig5a(benchmark.pedantic(_lat_sweep, rounds=1, iterations=1))


@pytest.mark.benchmark(group="fig5")
def test_fig5b_throughput(benchmark):
    _report_fig5b(benchmark.pedantic(_bw_sweep, rounds=1, iterations=1))


def main():
    with figure_bench("fig5"):
        _report_fig5a(_lat_sweep())
        _report_fig5b(_bw_sweep())
    # Pinned-iteration stage attribution; system A draws lognormal syscall
    # jitter through libm, so these entries gate with a tolerance band.
    record_attribution_probes("fig5")


if __name__ == "__main__":
    main()
