"""Figure 5 — latency overhead and relative throughput on system A (§5).

Same experiments as figs. 3/4, but on the virtualized Azure HB120 profile
(200 Gbit/s IB, noisy syscalls, CoRD without inline support).

Paper claims checked:

- per-message overhead is larger than on system L and noisier;
- the overhead is *bimodal*: messages <= 1 KiB pay more (CoRD lacks inline
  there), larger messages pay less;
- bandwidth reduction becomes negligible from a certain message size.

Note on the paper's "system L shows a higher throughput reduction than
system A" sentence: taken literally it contradicts the arithmetic of a
fixed per-message CPU cost on a faster wire (which binds *longer*).  We
reproduce the physical behaviour and read the sentence as comparing
opposite-direction anchors (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import emit, report_checks, scaled
from repro.perftest.runner import PerftestConfig, run_bw, run_lat
from repro.units import pretty_size

LAT_SIZES = [64, 256, 512, 1024, 2048, 4096, 16384]
BW_SIZES = [256, 1024, 4096, 16384, 65536, 262144, 1 << 20]


def _lat_sweep():
    table = SweepTable(
        "Fig 5a: CoRD latency overhead on system A (us, CD->CD vs BP->BP)", "size"
    )
    over = table.new_series("RC-send overhead")
    for size in LAT_SIZES:
        bp = run_lat(PerftestConfig(system="A", iters=scaled(200), warmup=25), size)
        cd = run_lat(PerftestConfig(system="A", client="cord", server="cord",
                                    iters=scaled(200), warmup=25), size)
        over.add(pretty_size(size), cd.avg_us - bp.avg_us)
    return table


def _bw_sweep():
    table = SweepTable("Fig 5b: CoRD relative throughput on system A", "size")
    for transport, op in (("RC", "send"), ("RC", "write"), ("UD", "send")):
        rel = table.new_series(f"{transport}-{op}")
        for size in BW_SIZES:
            if transport == "UD" and size > 4096:
                continue
            bp_cfg = PerftestConfig(system="A", transport=transport, op=op,
                                    iters=scaled(1200), warmup=300, window=64)
            bp = run_bw(bp_cfg, size)
            cd = run_bw(bp_cfg.with_(client="cord", server="cord"), size)
            rel.add(pretty_size(size), cd.gbit_per_s / bp.gbit_per_s)
    return table


@pytest.mark.benchmark(group="fig5")
def test_fig5a_latency_overhead(benchmark):
    table = benchmark.pedantic(_lat_sweep, rounds=1, iterations=1)
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    over = table.get("RC-send overhead")
    small_mode = float(np.mean([over.y_at(pretty_size(s)) for s in (64, 256, 512, 1024)]))
    large_mode = float(np.mean([over.y_at(pretty_size(s)) for s in (2048, 4096, 16384)]))
    checks = [
        check_between("small-message mode (<=1 KiB) larger than large mode",
                      small_mode / large_mode, 1.15, 3.0),
        check_between("large-mode overhead exceeds system L's (~1.1 us)",
                      large_mode, 1.2, 4.0),
        check_between("small-mode overhead (us)", small_mode, 1.6, 5.0),
    ]
    emit("fig5a_latency_overhead", text + "\n" + report_checks("fig5a", checks))


@pytest.mark.benchmark(group="fig5")
def test_fig5b_throughput(benchmark):
    table = benchmark.pedantic(_bw_sweep, rounds=1, iterations=1)
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    checks = []
    for name in ("RC-send", "RC-write"):
        s = table.get(name)
        checks.append(check_between(
            f"{name}: small messages degraded", s.y_at("1 KiB"), 0.1, 0.8))
        checks.append(check_between(
            f"{name}: negligible from some size on", s.y_at("1 MiB"), 0.93, 1.05))
    emit("fig5b_throughput", text + "\n" + report_checks("fig5b", checks))
