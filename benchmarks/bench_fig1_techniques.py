"""Figure 1 — "removing" performance techniques (paper §2, system L).

Point-to-point RC send latency (fig. 1a) and throughput (fig. 1b) for the
baseline and for each technique removed: zero-copy (extra memcpy),
kernel-bypass (extra null syscall), polling (interrupt-driven waits).

Paper claims checked:

- baseline small-message throughput is only ~1.4 Gbit/s of the 100 Gbit/s
  link (CPU-bound);
- removing zero-copy adds latency proportional to size, ~140 us/MiB;
- removing kernel-bypass adds only a small constant (the least critical);
- removing polling adds a large size-independent constant;
- every removal significantly hurts small-message throughput;
- large-message throughput only collapses without zero-copy.

Iteration counts match the perftest defaults the paper ran (5000 bw /
1000 lat iterations) — affordable because steady-state fast-forward
(``REPRO_FASTFORWARD=1``) skips the periodic bulk of each loop exactly.
"""

import pytest

from repro.analysis import Series, SweepTable, check_between, format_table
from repro.bench_support import (
    emit,
    figure_bench,
    parallel_sweep,
    record_attribution_probes,
    report_checks,
    scaled,
)
from repro.perftest.runner import PerftestConfig, run_bw, run_lat
from repro.perftest.techniques import FIG1_VARIANTS
from repro.units import MiB, pretty_size

LAT_SIZES = [2, 64, 1024, 4096, 65536, 1 << 20, 4 << 20]
BW_SIZES = [64, 256, 1024, 4096, 16384, 65536, 1 << 20]


def _lat_point(point):
    cfg, size = point
    return run_lat(cfg, size).avg_us


def _bw_point(point):
    cfg, size = point
    return run_bw(cfg, size).gbit_per_s


def _lat_sweep():
    points = [
        (PerftestConfig(system="L", iters=scaled(1000), warmup=15, techniques=tech),
         size)
        for tech in FIG1_VARIANTS for size in LAT_SIZES
    ]
    values = iter(parallel_sweep(_lat_point, points))
    table = SweepTable("Fig 1a: send latency with techniques removed (us)", "size")
    for tech in FIG1_VARIANTS:
        s = table.new_series(tech.label)
        for size in LAT_SIZES:
            s.add(pretty_size(size), next(values))
    return table


def _bw_sweep():
    points = [
        (PerftestConfig(system="L", iters=scaled(5000), warmup=200,
                        window=64, techniques=tech), size)
        for tech in FIG1_VARIANTS for size in BW_SIZES
    ]
    values = iter(parallel_sweep(_bw_point, points))
    table = SweepTable("Fig 1b: send throughput with techniques removed (Gbit/s)", "size")
    for tech in FIG1_VARIANTS:
        s = table.new_series(tech.label)
        for size in BW_SIZES:
            s.add(pretty_size(size), next(values))
    return table


def _report_fig1a(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    base = table.get("baseline")
    nozc = table.get("no zero-copy")
    nokb = table.get("no kernel-bypass")
    nopoll = table.get("no polling")
    big = pretty_size(4 << 20)
    small = pretty_size(2)
    copy_us_per_mib = (nozc.y_at(big) - base.y_at(big)) / 4.0
    checks = [
        check_between("extra-copy tax us/MiB (paper ~140)", copy_us_per_mib, 90, 200),
        check_between("no-kernel-bypass constant (us), small",
                      nokb.y_at(small) - base.y_at(small), 0.02, 0.6),
        check_between("no-polling constant at 2B (us)",
                      nopoll.y_at(small) - base.y_at(small), 1.5, 12.0),
        check_between("no-polling constant at 4MiB (us) — size-independent",
                      nopoll.y_at(big) - base.y_at(big), 1.5, 12.0),
    ]
    emit("fig1a_latency", text + "\n" + report_checks("fig1a", checks))


def _report_fig1b(table):
    header, rows = table.rows()
    text = format_table(header, rows, table.title)
    base = table.get("baseline")
    small = pretty_size(64)
    big = pretty_size(1 << 20)
    checks = [
        check_between("baseline small-message Gbit/s (paper ~1.4)",
                      base.y_at(small), 0.9, 2.1),
        check_between("baseline large-message Gbit/s (wire-limited)",
                      base.y_at(big), 80, 100),
    ]
    for label in ("no zero-copy", "no kernel-bypass", "no polling"):
        rel = table.get(label).y_at(small) / base.y_at(small)
        checks.append(check_between(f"{label}: small-msg throughput hit", rel, 0.05, 0.90))
    # Large messages: only zero-copy removal collapses throughput.
    checks.append(check_between(
        "no zero-copy large-message collapse",
        table.get("no zero-copy").y_at(big) / base.y_at(big), 0.2, 0.8))
    checks.append(check_between(
        "no kernel-bypass large-message unaffected",
        table.get("no kernel-bypass").y_at(big) / base.y_at(big), 0.9, 1.05))
    checks.append(check_between(
        "no polling large-message unaffected",
        table.get("no polling").y_at(big) / base.y_at(big), 0.85, 1.05))
    emit("fig1b_throughput", text + "\n" + report_checks("fig1b", checks))


@pytest.mark.benchmark(group="fig1")
def test_fig1a_latency(benchmark):
    _report_fig1a(benchmark.pedantic(_lat_sweep, rounds=1, iterations=1))


@pytest.mark.benchmark(group="fig1")
def test_fig1b_throughput(benchmark):
    _report_fig1b(benchmark.pedantic(_bw_sweep, rounds=1, iterations=1))


def main():
    with figure_bench("fig1"):
        _report_fig1a(_lat_sweep())
        _report_fig1b(_bw_sweep())
    # Pinned-iteration stage attribution for the four technique variants
    # (exact per-stage blame baselines; gated by tools/check_attribution.py).
    record_attribution_probes("fig1")


if __name__ == "__main__":
    main()
