"""Engine microbenchmarks: raw event-loop throughput, tracked per PR.

Measures the primitives every figure benchmark is built from:

- ``resumes_per_sec``   — scalar-yield sleeps through the fast path;
- ``timeouts_per_sec``  — the same loop forced through real ``Timeout``
  events (what the engine cost before the fast path / with
  ``REPRO_SIM_FASTPATH=0``);
- ``events_per_sec``    — succeed-driven Event wakeups (store/CQ style);
- ``store_hops_per_sec``— put→get rendezvous through a ``Store``;
- ``resource_grants_per_sec`` — uncontended capacity-1 request/release.

Writes ``results/BENCH_engine.json`` so the trajectory is visible across
PRs.  Run directly (``python benchmarks/bench_engine_micro.py``) or via
pytest.
"""

from __future__ import annotations

import json
import time

from repro.bench_support import results_dir, scaled
from repro.sim import Simulator
from repro.sim.resources import Resource
from repro.sim.store import Store

#: Operations per measurement (scaled by REPRO_BENCH_SCALE).
N = 200_000


def _rate(n: int, seconds: float) -> float:
    return n / seconds if seconds > 0 else float("inf")


def bench_scalar_resumes(n: int, fastpath: bool = True) -> float:
    sim = Simulator(fastpath=fastpath)

    def sleeper():
        for _ in range(n):
            yield 1.0

    sim.process(sleeper())
    t0 = time.perf_counter()
    sim.run()
    return _rate(n, time.perf_counter() - t0)


def bench_timeout_events(n: int) -> float:
    sim = Simulator()

    def sleeper():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.process(sleeper())
    t0 = time.perf_counter()
    sim.run()
    return _rate(n, time.perf_counter() - t0)


def bench_event_wakeups(n: int) -> float:
    sim = Simulator()

    def waker(ev_box):
        for _ in range(n):
            ev_box[0] = sim.event()
            ev_box[0].succeed(None)
            yield ev_box[0]

    sim.process(waker([None]))
    t0 = time.perf_counter()
    sim.run()
    return _rate(n, time.perf_counter() - t0)


def bench_store_hops(n: int) -> float:
    sim = Simulator()
    store = Store(sim, name="micro")

    def producer():
        for i in range(n):
            yield store.put(i)
            yield 1.0

    def consumer():
        for _ in range(n):
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    t0 = time.perf_counter()
    sim.run()
    return _rate(n, time.perf_counter() - t0)


def bench_resource_grants(n: int) -> float:
    sim = Simulator()
    res = Resource(sim, capacity=1, name="micro")

    def worker():
        for _ in range(n):
            req = res.request()
            yield req
            yield 1.0
            res.release(req)

    sim.process(worker())
    t0 = time.perf_counter()
    sim.run()
    return _rate(n, time.perf_counter() - t0)


def run_all(n: int | None = None) -> dict:
    n = scaled(N) if n is None else n
    results = {
        "n_ops": n,
        "resumes_per_sec": bench_scalar_resumes(n),
        "timeouts_per_sec": bench_timeout_events(n),
        "events_per_sec": bench_event_wakeups(n),
        "store_hops_per_sec": bench_store_hops(n),
        "resource_grants_per_sec": bench_resource_grants(n),
    }
    results["fastpath_speedup"] = (
        results["resumes_per_sec"] / results["timeouts_per_sec"]
    )
    return results


def emit_json(results: dict) -> None:
    outdir = results_dir()
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / "BENCH_engine.json"
    path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {path}")


def test_engine_micro():
    results = run_all()
    for key, value in results.items():
        print(f"{key:>24}: {value:,.0f}" if "per_sec" in key
              else f"{key:>24}: {value}")
    emit_json(results)
    # The fast path must actually be faster than the Timeout path.
    assert results["resumes_per_sec"] > results["timeouts_per_sec"]


if __name__ == "__main__":
    test_engine_micro()
