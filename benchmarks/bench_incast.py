"""Incast benchmark — N→1 fan-in under receiver-side fabric contention.

Sweeps the sender count (N ∈ {2, 4, 8, 16}) for a bypass (BP) and a CoRD
(CD) dataplane, all senders streaming RDMA writes at one receiver host.
With the receiver-side contention model on (the default for >2-host
clusters), all flows share the receiver's switch output port, so the
aggregate receive rate caps at one link's bandwidth and per-flow goodput
falls as 1/N.  The sweep also runs one point with the legacy
source-port-only fabric (``rx_contention=False``) to expose the modeling
bug this layer fixes — N links' worth of aggregate receive bandwidth —
and one point with a bounded switch buffer to exercise tail drops through
the RC retransmit machinery.

Results are recorded into ``results/BENCH_incast.json`` (smoke-scale runs
must point ``REPRO_INCAST_JSON`` somewhere explicitly, mirroring the
``BENCH_figures.json`` policy); ``tools/check_incast.py`` gates the
invariants in CI.

Shape checks:

- every contention-on aggregate rate is capped at one link's bandwidth;
- mean per-flow goodput is non-increasing in N (per dataplane);
- unbounded buffers never drop and never retransmit;
- the legacy fabric exceeds one link's bandwidth at N=8 (the bug exists);
- a bounded buffer drops, retransmits recover, and every flow completes;
- DCQCN congestion control recovers the bounded-buffer 16→1 incast:
  ≥80% of the unbounded aggregate goodput and ≥10× fewer tail drops than
  the CC-off run (the congestion-collapse fix, ``--congestion dcqcn``).
"""

import json
import os

import pytest

from repro.analysis import SweepTable, check_between, format_table
from repro.bench_support import (
    bench_scale,
    emit,
    parallel_sweep,
    report_checks,
    results_dir,
    scaled,
)
from repro.hw.profiles import get_profile
from repro.perftest.incast import IncastConfig, run_incast
from repro.units import to_gbit_per_s

SENDERS = [2, 4, 8, 16]
PLANES = [("BP", "bypass"), ("CD", "cord")]
SYSTEM = "L"
SIZE = 64 * 1024
#: Bounded-buffer point: small enough that an 8→1 burst overflows it,
#: large enough that RC retransmits recover within the retry budget.
BOUNDED_BUFFER = 1024 * 1024

INCAST_JSON_ENV = "REPRO_INCAST_JSON"


def _incast_json_path():
    raw = os.environ.get(INCAST_JSON_ENV, "").strip()
    return raw or str(results_dir() / "BENCH_incast.json")


def _point(cfg: IncastConfig):
    return run_incast(cfg)


def _cfg(dataplane: str, senders: int) -> IncastConfig:
    return IncastConfig(
        system=SYSTEM, dataplane=dataplane, senders=senders, size=SIZE,
        msgs_per_sender=scaled(48, minimum=8), window=16,
    )


def _sweep():
    points = [_cfg(kind, n) for _label, kind in PLANES for n in SENDERS]
    # Controls: the legacy source-port-only fabric at N=8, and a bounded
    # switch buffer at N=8 (tail drops + RC retransmit recovery).
    legacy = _cfg("bypass", 8).with_(rx_contention=False)
    bounded = _cfg("bypass", 8).with_(buffer_bytes=BOUNDED_BUFFER)
    # Congestion-control pair: the bounded 16→1 incast with and without
    # DCQCN.  The unbounded reference is the bypass N=16 sweep point.
    cc_off = _cfg("bypass", 16).with_(buffer_bytes=BOUNDED_BUFFER)
    cc_on = cc_off.with_(congestion="dcqcn")
    results = parallel_sweep(_point, points + [legacy, bounded, cc_off, cc_on])
    cc_on_r = results.pop()
    cc_off_r = results.pop()
    bounded_r = results.pop()
    legacy_r = results.pop()
    return points, results, legacy_r, bounded_r, cc_off_r, cc_on_r


def _entry(r) -> dict:
    return {
        "senders": r.config.senders,
        "dataplane": r.config.dataplane,
        "rx_contention": r.config.rx_contention,
        "buffer_bytes": r.config.buffer_bytes,
        "msgs_per_sender": r.config.msgs_per_sender,
        "size": r.config.size,
        "aggregate_gbit": r.aggregate_gbit,
        "per_flow_mean_gbit": r.per_flow_mean_gbit,
        "flow_goodputs_gbit": list(r.flow_goodputs_gbit),
        "rx_queue_peak_bytes": r.rx_queue_peak_bytes,
        "messages_dropped": r.messages_dropped,
        "retransmits": r.retransmits,
        "ack_timeouts": r.ack_timeouts,
        "congestion": r.config.congestion,
        "ecn_marked": r.ecn_marked,
        "cnps": r.cnps,
        "min_rate": r.min_rate,
        "failed_msgs": r.failed_msgs,
    }


def _record(results, legacy_r, bounded_r, cc_ref_r, cc_off_r, cc_on_r) -> None:
    path = _incast_json_path()
    if bench_scale() < 1.0 and not os.environ.get(INCAST_JSON_ENV, "").strip():
        print(f"[bench] not recording incast sweep at scale {bench_scale():g} "
              f"into the committed {path} (set {INCAST_JSON_ENV} to record "
              "smoke runs)")
        return
    link_gbit = to_gbit_per_s(get_profile(SYSTEM).nic.link_bw)
    doc = {
        "system": SYSTEM,
        "link_gbit": link_gbit,
        "scale": bench_scale(),
        "sweep": {},
        "legacy_rx_off": _entry(legacy_r),
        "bounded_buffer": _entry(bounded_r),
        # The congestion-collapse fix at N=16: unbounded reference (the
        # bypass sweep point), bounded CC-off, bounded DCQCN.
        "congestion": {
            "reference": _entry(cc_ref_r),
            "cc_off": _entry(cc_off_r),
            "dcqcn": _entry(cc_on_r),
        },
    }
    it = iter(results)
    for label, _kind in PLANES:
        doc["sweep"][label] = [_entry(next(it)) for _n in SENDERS]
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"[bench] recorded incast sweep -> {path}")


def _report(points, results, legacy_r, bounded_r, cc_off_r, cc_on_r):
    link_gbit = to_gbit_per_s(get_profile(SYSTEM).nic.link_bw)
    agg = SweepTable(f"Incast: aggregate receive rate, {SIZE // 1024} KiB "
                     "writes (Gbit/s)", "N")
    flow = SweepTable("Incast: mean per-flow goodput (Gbit/s)", "N")
    it = iter(results)
    by_label: dict[str, list] = {}
    for label, _kind in PLANES:
        sa = agg.new_series(label)
        sf = flow.new_series(label)
        rs = [next(it) for _n in SENDERS]
        by_label[label] = rs
        for n, r in zip(SENDERS, rs):
            sa.add(str(n), r.aggregate_gbit)
            sf.add(str(n), r.per_flow_mean_gbit)

    parts = []
    for t in (agg, flow):
        h, r = t.rows()
        parts.append(format_table(h, r, t.title))
    parts.append(
        f"legacy fabric (rx_contention off), N=8: "
        f"{legacy_r.aggregate_gbit:.1f} Gbit/s aggregate "
        f"(link is {link_gbit:.0f} Gbit/s)\n"
        f"bounded buffer ({BOUNDED_BUFFER // 1024} KiB), N=8: "
        f"{bounded_r.aggregate_gbit:.1f} Gbit/s, "
        f"{bounded_r.messages_dropped} drops, "
        f"{bounded_r.retransmits} retransmits"
    )
    cc_ref_r = by_label["BP"][SENDERS.index(16)]
    parts.append(
        f"congestion control, N=16, bounded {BOUNDED_BUFFER // 1024} KiB:\n"
        f"  unbounded reference: {cc_ref_r.aggregate_gbit:.1f} Gbit/s\n"
        f"  CC off:  {cc_off_r.aggregate_gbit:.1f} Gbit/s, "
        f"{cc_off_r.messages_dropped} drops, "
        f"{cc_off_r.failed_msgs} failed msgs\n"
        f"  DCQCN:   {cc_on_r.aggregate_gbit:.1f} Gbit/s "
        f"({cc_on_r.aggregate_gbit / cc_ref_r.aggregate_gbit:.0%} of "
        f"reference), {cc_on_r.messages_dropped} drops "
        f"({cc_off_r.messages_dropped / max(cc_on_r.messages_dropped, 1):.0f}x "
        f"fewer), {cc_on_r.ecn_marked} ECN marks, {cc_on_r.cnps} CNPs"
    )
    text = "\n\n".join(parts)

    checks = []
    for label, _kind in PLANES:
        rs = by_label[label]
        worst = max(r.aggregate_gbit for r in rs)
        checks.append(check_between(
            f"{label}: aggregate receive rate capped at one link",
            worst, 0.0, link_gbit * 1.02))
        means = [r.per_flow_mean_gbit for r in rs]
        checks.append(check_between(
            f"{label}: per-flow goodput non-increasing in N",
            1.0 if all(a >= b * 0.99 for a, b in zip(means, means[1:]))
            else 0.0, 1.0, 1.0))
        checks.append(check_between(
            f"{label}: unbounded buffers never drop",
            float(sum(r.messages_dropped + r.retransmits for r in rs)),
            0.0, 0.0))
    checks.append(check_between(
        "legacy rx-off fabric exceeds one link at N=8 (the bug)",
        legacy_r.aggregate_gbit, link_gbit * 2.0, float("inf")))
    checks.append(check_between(
        "bounded buffer tail-drops (drops > 0)",
        float(bounded_r.messages_dropped), 1.0, float("inf")))
    checks.append(check_between(
        "bounded-buffer drops recover via retransmit",
        float(bounded_r.retransmits), float(bounded_r.messages_dropped),
        float("inf")))
    # The congestion-collapse fix.  Thresholds are scale-aware: the smoke
    # workload (8 msgs/sender) ends while DCQCN's conservative start is
    # still ramping, so it sits right at the full-scale bar.
    full = bench_scale() >= 1.0
    rec_floor, red_floor = (0.8, 10.0) if full else (0.75, 8.0)
    checks.append(check_between(
        f"DCQCN recovers >={rec_floor:.0%} of unbounded goodput at N=16",
        cc_on_r.aggregate_gbit / cc_ref_r.aggregate_gbit,
        rec_floor, float("inf")))
    checks.append(check_between(
        f"DCQCN cuts tail drops >={red_floor:.0f}x vs CC-off at N=16",
        cc_off_r.messages_dropped / max(cc_on_r.messages_dropped, 1),
        red_floor, float("inf")))
    checks.append(check_between(
        "DCQCN run completes every message (no RETRY_EXC_ERR)",
        float(cc_on_r.failed_msgs), 0.0, 0.0))
    checks.append(check_between(
        "DCQCN loop engaged (ECN marks and CNPs observed)",
        float(min(cc_on_r.ecn_marked, cc_on_r.cnps)), 1.0, float("inf")))
    emit("incast_fan_in", text + "\n" + report_checks("incast", checks))
    _record(results, legacy_r, bounded_r, cc_ref_r, cc_off_r, cc_on_r)


@pytest.mark.benchmark(group="incast")
def test_incast_fan_in(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(*results)


def main():
    _report(*_sweep())


if __name__ == "__main__":
    main()
