"""Canonical state fingerprints for explicit-state exploration.

The explorer dedups schedules by hashing the *protocol-relevant* state at
each choice point: two schedules that reach the same fingerprint have the
same default continuation and the same set of untaken siblings, so one of
them can be pruned.  A fingerprint folds together:

- per-QP protocol state (state machine, PSN space, outstanding/reorder/
  replay-cache windows, occupancy, retry counts — epochs and other
  monotone allocators are deliberately excluded, they never recur);
- CQ contents and arming;
- the pending event heap in *relative* time (``t - now``), tagged by the
  stable :func:`~repro.sanitize.runtime._describe_event` labels plus each
  suspended process's generator instruction offset — the positional order
  of equal-key records preserves the FIFO tie order that decides default
  dispatch;
- every registered component state provider (NIC queue depths, switch
  ports), the RNG stream positions, fabric port occupancy and the
  remaining fault budget.

Suspended-generator *locals* are approximated by the instruction offset
only; for the small closed scenarios the explorer drives, locals are a
function of the fingerprinted component state, so this is exact in
practice — and dedup can be disabled outright (``Explorer(dedup=False)``)
to fall back to pure schedule enumeration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.sanitize.runtime import _describe_event
from repro.verbs.qp import QueuePair

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.fabric import Fabric
    from repro.sim.engine import Simulator
    from repro.verbs.cq import CompletionQueue
    from repro.verify.choice import ChoiceFaultInjector


def qp_signature(qp: QueuePair) -> tuple:
    """Protocol-relevant QP state (no monotone counters, no epochs)."""
    return (
        qp.qpn,
        qp.state.value,
        qp.sq_psn,
        qp.expected_psn,
        qp.sq_outstanding,
        tuple(sorted((psn, wr.wr_id) for psn, wr in qp.outstanding.items())),
        tuple(sorted(qp.reorder)),
        tuple(sorted(qp.atomic_cache.items())),
        tuple(sorted(qp.retx_retries.items())),
        tuple(sorted(qp.retx_epoch)),  # which PSNs have an armed timer
        tuple(wr.wr_id for wr in qp.rq),
    )


def cq_signature(cq: "CompletionQueue") -> tuple:
    return (
        cq.name,
        cq.armed,
        tuple((e.wr_id, e.status.value, e.qp_num) for e in cq.entries),
    )


def queue_signature(sim: "Simulator") -> tuple:
    """Pending heap in relative time with stable event tags.

    Sorting by the full ``(t, prio, seq)`` key then *dropping* ``seq``
    keeps the FIFO order of ties as positional order while erasing the
    monotone sequence numbers that would keep any state from recurring.
    """
    now = sim.now
    out = []
    for when, prio, _seq, event in sorted(sim._queue, key=lambda r: r[:3]):
        tag = _describe_event(event)
        process = getattr(event, "process", None)
        gen = getattr(process, "generator", None) if process is not None \
            else None
        frame = getattr(gen, "gi_frame", None)
        pos = frame.f_lasti if frame is not None else -1
        out.append((when - now, prio, tag, pos))
    return tuple(out)


def fabric_signature(fabric: Optional["Fabric"]) -> tuple:
    if fabric is None:
        return ()
    ports = tuple(
        (hid, len(res.users), len(res.queue))
        for hid, res in sorted(fabric._tx_ports.items())
    )
    rx = tuple(
        (hid, port.queued_bytes, len(port.resource.users),
         len(port.resource.queue))
        for hid, port in sorted(fabric._rx_ports.items())
    )
    return (ports, rx)


def fingerprint(
    sim: "Simulator",
    qps: Iterable[QueuePair] = (),
    cqs: Iterable["CompletionQueue"] = (),
    fabric: Optional["Fabric"] = None,
    injector: Optional["ChoiceFaultInjector"] = None,
) -> tuple:
    """One hashable canonical state; see the module docstring."""
    return (
        tuple(qp_signature(qp) for qp in qps),
        tuple(cq_signature(cq) for cq in cqs),
        queue_signature(sim),
        sim.component_state(),
        sim.rng.stream_states(),
        fabric_signature(fabric),
        injector.budget if injector is not None else -1,
    )
