"""Runtime RC-protocol invariant monitors (PROTO101–PROTO107).

A :class:`ProtocolMonitor` attaches to a :class:`~repro.sim.engine.Simulator`
(``Simulator(monitors=True)``, ``REPRO_VERIFY_MONITORS=1``, or
``sim.attach_monitor``) and observes the verbs/NIC layers through a fixed
set of hook sites, each costing one ``is None`` branch when no monitor is
attached (the same discipline as telemetry/trace/fault hooks — PROTO004
lints the sites).  Monitors only *observe*: attaching one never changes
simulation timing or results.

Invariants checked, in sanitizer style (rule ids match
:mod:`repro.sanitize.findings`):

- **PROTO101** — completion discipline: every signaled WR completes
  exactly once; no CQE for a WR that was never posted or already
  completed; no success CQE for an unsignaled send; nothing signaled is
  still pending at :meth:`finalize`.
- **PROTO102** — responder PSN discipline: ``expected_psn`` only moves
  forward (24-bit serial order), and a positive ACK is only ever sent
  for a PSN the responder has already accepted.
- **PROTO103** — QP state machine: transitions follow the legal table,
  and the state never changes outside :meth:`QueuePair.modify` (a shadow
  copy is compared at every hook).
- **PROTO104** — error-flush discipline: ``WR_FLUSH_ERR`` CQEs appear
  only while the QP is in ERROR, recvs flush before sends, sends flush
  in SQ (circular-PSN) order, and everything in flight at the ERROR
  transition eventually flushes.
- **PROTO105** — bounded recovery: no PSN is retransmitted more than
  ``max(retry_cnt, rnr_retries)`` times.
- **PROTO106** — atomic exactly-once: every response for one
  ``(qp, psn)`` atomic carries the same original value (replays must
  come from the cache, never from re-execution).
- **PROTO107** — SQ occupancy: ``0 <= sq_outstanding <= sq_depth``.

In strict mode the first violation raises
:class:`~repro.errors.ProtocolViolation`; in collect mode violations
accumulate as :class:`~repro.sanitize.findings.Finding` records
(``source="monitor"``) for the CLI/CI to report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ProtocolViolation
from repro.sanitize.findings import Finding
from repro.verbs.qp import _VALID_TRANSITIONS, QPState, QueuePair
from repro.verbs.wr import CQE, Psn, RecvWR, SendWR, WCStatus, WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.srq import SharedReceiveQueue

#: Key identifying one QP across the cluster.
QpKey = tuple[int, int]  # (host_id, qpn)


class ProtocolMonitor:
    """Observe-only RC invariant checker; see the module docstring."""

    def __init__(self, sim: "Simulator", strict: bool = True) -> None:
        self.sim = sim
        self.strict = strict
        self.findings: list[Finding] = []
        self._qps: dict[QpKey, QueuePair] = {}
        self._qp_key: dict[int, QpKey] = {}          # id(qp) -> key
        self._cq_host: dict[int, int] = {}           # id(cq) -> host_id
        self._shadow: dict[QpKey, QPState] = {}
        #: wr_id -> FIFO of ``signaled`` flags for not-yet-completed sends.
        self._send_live: dict[QpKey, dict[int, list[bool]]] = {}
        self._recv_live: dict[QpKey, dict[int, int]] = {}
        self._srq_live: dict[int, dict[int, int]] = {}  # id(srq) -> wr_id -> n
        self._expected: dict[QpKey, int] = {}
        #: Snapshot of the SQ flush order taken at the ERROR transition.
        self._flush_due: dict[QpKey, list[int]] = {}
        self._flush_done: dict[QpKey, int] = {}
        self._atomic_vals: dict[tuple[QpKey, int], int] = {}

    # -- reporting ---------------------------------------------------------------

    def _report(self, rule: str, message: str) -> None:
        finding = Finding(rule=rule, path="<runtime>", line=0,
                          message=message, source="monitor")
        self.findings.append(finding)
        if self.strict:
            raise ProtocolViolation(finding.text())

    def _key(self, qp: QueuePair) -> Optional[QpKey]:
        return self._qp_key.get(id(qp))

    # -- cross-cutting shadow checks --------------------------------------------

    def _check_qp(self, qp: QueuePair) -> None:
        key = self._qp_key.get(id(qp))
        if key is None:
            return
        shadow = self._shadow.get(key)
        if shadow is not None and qp.state is not shadow:
            # Report once per out-of-band change, then resync so collect
            # mode doesn't repeat the same finding at every later hook.
            self._shadow[key] = qp.state
            self._report(
                "PROTO103",
                f"QP {key} state changed outside modify(): monitor saw "
                f"{shadow.value}, QP is in {qp.state.value}",
            )
        if not 0 <= qp.sq_outstanding <= qp.sq_depth:
            self._report(
                "PROTO107",
                f"QP {key} sq_outstanding={qp.sq_outstanding} outside "
                f"[0, {qp.sq_depth}]",
            )

    # -- registration ------------------------------------------------------------

    def register_qp(self, host_id: int, qp: QueuePair) -> None:
        key = (host_id, qp.qpn)
        self._qps[key] = qp
        self._qp_key[id(qp)] = key
        self._cq_host[id(qp.send_cq)] = host_id
        self._cq_host[id(qp.recv_cq)] = host_id
        self._shadow[key] = qp.state
        self._expected[key] = qp.expected_psn
        self._send_live[key] = {}
        self._recv_live[key] = {}
        if qp.srq is not None:
            self._srq_live.setdefault(id(qp.srq), {})

    # -- posting hooks -----------------------------------------------------------

    def on_post_send(self, qp: QueuePair, wr: SendWR, psn: int) -> None:
        self._check_qp(qp)
        key = self._key(qp)
        if key is not None:
            self._send_live[key].setdefault(wr.wr_id, []).append(
                bool(wr.signaled)
            )

    def on_post_recv(self, qp: QueuePair, wr: RecvWR) -> None:
        key = self._key(qp)
        if key is not None:
            live = self._recv_live[key]
            live[wr.wr_id] = live.get(wr.wr_id, 0) + 1

    def on_post_srq_recv(self, srq: "SharedReceiveQueue", wr: RecvWR) -> None:
        live = self._srq_live.setdefault(id(srq), {})
        live[wr.wr_id] = live.get(wr.wr_id, 0) + 1

    # -- state machine -----------------------------------------------------------

    def on_qp_transition(
        self, qp: QueuePair, old: QPState, new: QPState
    ) -> None:
        key = self._key(qp)
        if key is None:
            return
        shadow = self._shadow.get(key)
        if shadow is not None and old is not shadow:
            self._report(
                "PROTO103",
                f"QP {key} transition {old.value} -> {new.value} but the "
                f"monitor last saw {shadow.value}: a state write bypassed "
                "modify()",
            )
        if new not in _VALID_TRANSITIONS[old]:
            self._report(
                "PROTO103",
                f"QP {key} illegal transition {old.value} -> {new.value}",
            )
        self._shadow[key] = new
        if new is QPState.ERROR:
            # The flush contract: recvs first, then sends in SQ order —
            # i.e. by circular distance from the next-unassigned sq_psn.
            base = qp.sq_psn
            self._flush_due[key] = [
                wr.wr_id for _psn, wr in sorted(
                    qp.outstanding.items(),
                    key=lambda kv: Psn.delta(kv[0], base),
                )
            ]
            self._flush_done[key] = 0
        elif new is QPState.RESET:
            # RESET discards silently (no CQEs) and zeroes the PSN space:
            # mirror the model so stale expectations don't misfire later.
            self._send_live[key] = {}
            self._recv_live[key] = {}
            self._flush_due.pop(key, None)
            self._flush_done.pop(key, None)
            self._expected[key] = 0

    # -- responder discipline ----------------------------------------------------

    def on_responder_update(self, qp: QueuePair) -> None:
        self._check_qp(qp)
        key = self._key(qp)
        if key is None:
            return
        prev = self._expected.get(key)
        new = qp.expected_psn
        if prev is not None and Psn.cmp(new, prev) < 0:
            self._report(
                "PROTO102",
                f"QP {key} expected_psn rewound: {prev} -> {new}",
            )
        self._expected[key] = new

    def on_ack_sent(self, qp: QueuePair, ack: WireMessage) -> None:
        self._check_qp(qp)
        key = self._key(qp)
        if key is None or ack.kind != "ack":
            return
        if Psn.cmp(ack.psn, qp.expected_psn) >= 0:
            self._report(
                "PROTO102",
                f"QP {key} sent a positive ACK for PSN {ack.psn} but has "
                f"only accepted up to {qp.expected_psn} (exclusive)",
            )

    # -- recovery ----------------------------------------------------------------

    def on_retransmit(self, qp: QueuePair, psn: int, retries: int) -> None:
        self._check_qp(qp)
        key = self._key(qp)
        bound = max(qp.retry_cnt, qp.rnr_retries)
        if retries > bound:
            self._report(
                "PROTO105",
                f"QP {key} PSN {psn} retransmitted {retries} times, bound "
                f"is max(retry_cnt={qp.retry_cnt}, "
                f"rnr_retries={qp.rnr_retries}) = {bound}",
            )

    def on_atomic_response(self, qp: QueuePair, psn: int, value: int) -> None:
        key = self._key(qp)
        if key is None:
            return
        vkey = (key, psn)
        prev = self._atomic_vals.get(vkey)
        if prev is None:
            self._atomic_vals[vkey] = value
        elif prev != value:
            self._report(
                "PROTO106",
                f"QP {key} atomic PSN {psn} replayed with value {value}, "
                f"original response was {prev}: the RMW re-executed",
            )

    # -- completions -------------------------------------------------------------

    def on_cqe(self, cq: "CompletionQueue", cqe: CQE) -> None:
        host = self._cq_host.get(id(cq))
        if host is None:
            return  # CQ outside any registered QP (raw unit-test rigs)
        key = (host, cqe.qp_num)
        qp = self._qps.get(key)
        if qp is None:
            return
        self._check_qp(qp)
        sends = self._send_live[key]
        recvs = self._recv_live[key]
        is_send = cq is qp.send_cq
        is_recv = cq is qp.recv_cq
        if is_send and is_recv:
            # Shared CQ: disambiguate by live membership.
            is_send = cqe.wr_id in sends and bool(sends[cqe.wr_id])
            is_recv = not is_send
        if is_send:
            self._on_send_cqe(key, qp, cqe, sends)
        else:
            self._on_recv_cqe(key, qp, cqe, recvs)

    def _on_send_cqe(
        self, key: QpKey, qp: QueuePair, cqe: CQE, sends: dict[int, list[bool]]
    ) -> None:
        if cqe.status is WCStatus.WR_FLUSH_ERR:
            if self._shadow.get(key) is not QPState.ERROR:
                self._report(
                    "PROTO104",
                    f"QP {key} flush CQE for send wr_id={cqe.wr_id} while "
                    f"not in ERROR (state "
                    f"{self._shadow.get(key, QPState.RESET).value})",
                )
            due = self._flush_due.get(key)
            if due:
                if cqe.wr_id == due[0]:
                    due.pop(0)
                    self._flush_done[key] = self._flush_done.get(key, 0) + 1
                elif cqe.wr_id in due:
                    self._report(
                        "PROTO104",
                        f"QP {key} send flush out of SQ order: got "
                        f"wr_id={cqe.wr_id}, expected wr_id={due[0]}",
                    )
                    due.remove(cqe.wr_id)
                    self._flush_done[key] = self._flush_done.get(key, 0) + 1
                # A flush CQE not in the snapshot is a straggler WQE that
                # was still in the TX pipeline at the transition: legal.
        stack = sends.get(cqe.wr_id)
        if not stack:
            self._report(
                "PROTO101",
                f"QP {key} send CQE for wr_id={cqe.wr_id} "
                f"({cqe.status.value}) but no such send is in flight "
                "(never posted, or already completed)",
            )
            return
        signaled = stack.pop(0)
        if not stack:
            del sends[cqe.wr_id]
        if cqe.status is WCStatus.SUCCESS and not signaled:
            self._report(
                "PROTO101",
                f"QP {key} success CQE for unsignaled send "
                f"wr_id={cqe.wr_id}",
            )

    def _on_recv_cqe(
        self, key: QpKey, qp: QueuePair, cqe: CQE, recvs: dict[int, int]
    ) -> None:
        if cqe.status is WCStatus.WR_FLUSH_ERR:
            if self._shadow.get(key) is not QPState.ERROR:
                self._report(
                    "PROTO104",
                    f"QP {key} flush CQE for recv wr_id={cqe.wr_id} while "
                    "not in ERROR",
                )
            if self._flush_done.get(key, 0) > 0:
                self._report(
                    "PROTO104",
                    f"QP {key} recv wr_id={cqe.wr_id} flushed after send "
                    "flushes began: recvs must flush first",
                )
        n = recvs.get(cqe.wr_id, 0)
        if n > 0:
            if n == 1:
                del recvs[cqe.wr_id]
            else:
                recvs[cqe.wr_id] = n - 1
            return
        if qp.srq is not None:
            pool = self._srq_live.get(id(qp.srq), {})
            m = pool.get(cqe.wr_id, 0)
            if m > 0:
                if m == 1:
                    del pool[cqe.wr_id]
                else:
                    pool[cqe.wr_id] = m - 1
                return
        self._report(
            "PROTO101",
            f"QP {key} recv CQE for wr_id={cqe.wr_id} ({cqe.status.value}) "
            "but no such recv is posted (double or phantom completion)",
        )

    # -- end-of-run accounting ---------------------------------------------------

    def finalize(self) -> None:
        """End-of-run liveness checks: call once the simulation is idle.

        Anything *signaled* still pending is a lost completion; anything
        snapshotted at an ERROR transition that never flushed is a flush
        contract breach.  (Un-signaled sends and idle posted recvs on a
        healthy QP are legitimately allowed to sit forever.)
        """
        for key, qp in sorted(self._qps.items()):
            self._check_qp(qp)
            pending = sorted(
                wr_id for wr_id, stack in self._send_live[key].items()
                if any(stack)
            )
            if pending:
                self._report(
                    "PROTO101",
                    f"QP {key} signaled sends never completed: "
                    f"wr_ids={pending}",
                )
            due = self._flush_due.get(key)
            if due:
                self._report(
                    "PROTO104",
                    f"QP {key} entered ERROR but {len(due)} outstanding "
                    f"sends never flushed: wr_ids={sorted(due)}",
                )
            if self._shadow.get(key) is QPState.ERROR and self._recv_live[key]:
                self._report(
                    "PROTO104",
                    f"QP {key} in ERROR with unflushed recvs: "
                    f"wr_ids={sorted(self._recv_live[key])}",
                )
