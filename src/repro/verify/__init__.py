"""Protocol verifier: model checker, invariant monitors, lint rulepack.

Three layers over the same RC protocol contract:

- :mod:`repro.verify.explorer` — a small-scope explicit-state model
  checker that exhausts schedule and fault nondeterminism over the tiny
  worlds in :mod:`repro.verify.scenarios`;
- :mod:`repro.verify.monitors` — runtime invariant monitors (PROTO101–
  PROTO107) attachable to any simulation;
- the PROTO001–PROTO004 static rules in :mod:`repro.sanitize.lint`.

``repro verify explore|monitors|lint`` is the CLI surface;
:mod:`repro.verify.mutants` holds the seeded bugs that prove the stack
actually catches violations.
"""

from repro.verify.choice import (
    Chooser,
    ChoiceFaultInjector,
    DROPPABLE_KINDS,
    ScheduleDivergence,
    ScriptedChooser,
)
from repro.verify.explorer import (
    Counterexample,
    Explorer,
    ExploreResult,
    explore_all,
)
from repro.verify.hashing import fingerprint
from repro.verify.monitors import ProtocolMonitor
from repro.verify.mutants import MUTANTS, Mutant
from repro.verify.scenarios import SCENARIOS, Scenario, ScenarioSpec

__all__ = [
    "Chooser",
    "ChoiceFaultInjector",
    "Counterexample",
    "DROPPABLE_KINDS",
    "Explorer",
    "ExploreResult",
    "MUTANTS",
    "Mutant",
    "ProtocolMonitor",
    "SCENARIOS",
    "Scenario",
    "ScenarioSpec",
    "ScheduleDivergence",
    "ScriptedChooser",
    "explore_all",
    "fingerprint",
]
