"""Explicit-state DFS over schedule and fault nondeterminism.

The :class:`Explorer` runs one :class:`~repro.verify.scenarios.Scenario`
to completion once per *schedule* — a tuple of choice indices answering,
in order, every choice point the run encounters (same-timestamp dispatch
ties and budgeted drop decisions, in one shared numbering).  Enumeration
is iterative-deepening-free DFS over prefixes:

1. run the empty prefix (the default schedule: every answer 0);
2. from the recorded ``(n, chosen)`` trail, enqueue every untaken sibling
   ``prefix[:d] + (alt,)`` for ``alt`` in ``chosen+1 .. n-1`` at every
   depth ``d`` at or past the forced prefix;
3. pop the next prefix (LIFO, so exploration is depth-first) and repeat
   until the frontier drains or ``max_schedules`` trips.

With dedup enabled, a canonical :func:`~repro.verify.hashing.fingerprint`
of the pre-choice state is taken at every *free* engine-loop choice point
(never at forced-prefix depths — those states were recorded by ancestor
runs — and never at fault choice points, which occur mid-dispatch where a
suspended generator holds unfingerprinted locals).  A repeated fingerprint
means the entire subtree was already explored from an identical state, so
the run is abandoned; siblings discovered before the abandonment are still
expanded.

Any :class:`~repro.errors.ProtocolViolation` (strict monitors are always
attached) or crash becomes a :class:`Counterexample` carrying the exact
schedule.  :meth:`Explorer.replay` re-runs a schedule with tracing on and
writes two artifacts: the Chrome trace of the failing run and a JSON
description of the schedule, so a human can load the interleaving in a
trace viewer and see the violation happen.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ProtocolViolation, ReproError
from repro.telemetry.export import chrome_trace
from repro.verify.choice import (
    ChoiceFaultInjector,
    ScheduleDivergence,
    ScriptedChooser,
)
from repro.verify.hashing import fingerprint
from repro.verify.monitors import ProtocolMonitor
from repro.verify.scenarios import Scenario, ScenarioSpec


class _Pruned(Exception):
    """Internal: abandon a run whose state was already explored."""


@dataclass
class Counterexample:
    """A schedule that violates an invariant, plus how it violated it."""

    scenario: str
    schedule: tuple[int, ...]
    rule: str
    message: str
    trace_path: str = ""
    schedule_path: str = ""


@dataclass
class ExploreResult:
    scenario: str
    schedules_run: int = 0
    pruned: int = 0
    max_depth: int = 0
    exhausted: bool = False  # frontier drained (vs. max_schedules tripped)
    counterexample: Optional[Counterexample] = None
    #: Distinct drop choice-point labels seen (coverage evidence).
    fault_labels: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return self.counterexample is None


_RULE_RE = re.compile(r"\bPROTO\d{3}\b")


def _rule_of(message: str) -> str:
    m = _RULE_RE.search(message)
    return m.group(0) if m else "CRASH"


class Explorer:
    """Exhaustively explore one scenario's schedule/fault tree."""

    def __init__(
        self,
        spec: ScenarioSpec,
        max_schedules: int = 20000,
        dedup: bool = True,
        artifacts_dir: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.max_schedules = max_schedules
        self.dedup = dedup
        self.artifacts_dir = artifacts_dir

    # -- single run --------------------------------------------------------------

    def _build(self, prefix: tuple[int, ...], seen: Optional[set],
               trace: bool = False) -> tuple[Scenario, ScriptedChooser,
                                             Optional[ChoiceFaultInjector],
                                             ProtocolMonitor]:
        scen = self.spec(trace=trace)
        monitor = ProtocolMonitor(scen.sim, strict=True)
        scen.sim.attach_monitor(monitor)
        scen.prepare()

        injector: Optional[ChoiceFaultInjector] = None
        holder: list[ChoiceFaultInjector] = []

        def observer(depth: int, n: int,
                     front: Sequence[object]) -> None:
            if seen is None or depth < len(prefix):
                return
            fp = fingerprint(scen.sim, scen.qps, scen.cqs, scen.fabric,
                             holder[0] if holder else None)
            if fp in seen:
                raise _Pruned()
            seen.add(fp)

        chooser = ScriptedChooser(prefix, observer=None if trace else observer)
        scen.sim.attach_chooser(chooser)
        if self.spec.drop_budget > 0:
            injector = ChoiceFaultInjector(chooser,
                                           budget=self.spec.drop_budget)
            holder.append(injector)
            scen.fabric.inject_faults(injector)
        return scen, chooser, injector, monitor

    def _run_one(
        self, prefix: tuple[int, ...], seen: Optional[set],
        result: ExploreResult,
    ) -> tuple[ScriptedChooser, Optional[Counterexample], bool]:
        scen, chooser, injector, monitor = self._build(prefix, seen)
        pruned = False
        cex: Optional[Counterexample] = None
        try:
            scen.go()
            monitor.finalize()
        except _Pruned:
            pruned = True
        except ScheduleDivergence:
            raise
        except ProtocolViolation as exc:
            cex = Counterexample(
                scenario=self.spec.name, schedule=chooser.chosen(),
                rule=_rule_of(str(exc)), message=str(exc),
            )
        except ReproError as exc:
            cex = Counterexample(
                scenario=self.spec.name, schedule=chooser.chosen(),
                rule="CRASH", message=f"{type(exc).__name__}: {exc}",
            )
        if injector is not None and injector.drops:
            result.fault_labels.add(f"drops={injector.drops}")
        return chooser, cex, pruned

    # -- exploration -------------------------------------------------------------

    def explore(self) -> ExploreResult:
        """DFS the schedule tree; stop at the first counterexample."""
        result = ExploreResult(scenario=self.spec.name)
        seen: Optional[set] = set() if self.dedup else None
        frontier: list[tuple[int, ...]] = [()]
        while frontier and result.schedules_run < self.max_schedules:
            prefix = frontier.pop()
            chooser, cex, pruned = self._run_one(prefix, seen, result)
            result.schedules_run += 1
            result.pruned += 1 if pruned else 0
            trail = chooser.trail
            result.max_depth = max(result.max_depth, len(trail))
            # Enqueue untaken siblings at every free depth this run reached.
            for d in range(len(prefix), len(trail)):
                n, chosen = trail[d]
                if n < 2 or chosen + 1 >= n:
                    continue
                base = tuple(c for (_m, c) in trail[:d])
                for alt in range(chosen + 1, n):
                    frontier.append(base + (alt,))
            if cex is not None:
                if self.artifacts_dir:
                    self.replay(cex)
                result.counterexample = cex
                return result
        result.exhausted = not frontier
        return result

    # -- counterexample replay ---------------------------------------------------

    def replay(self, cex: Counterexample) -> None:
        """Re-run a counterexample schedule with tracing; write artifacts."""
        assert self.artifacts_dir is not None
        os.makedirs(self.artifacts_dir, exist_ok=True)
        scen, chooser, _injector, monitor = self._build(
            cex.schedule, seen=None, trace=True
        )
        violation = ""
        try:
            scen.go()
            monitor.finalize()
        except ReproError as exc:
            violation = str(exc)
        stem = os.path.join(self.artifacts_dir,
                            f"counterexample_{self.spec.name}")
        cex.trace_path = stem + ".trace.json"
        with open(cex.trace_path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(scen.sim.trace), fh)
        cex.schedule_path = stem + ".schedule.json"
        with open(cex.schedule_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "scenario": cex.scenario,
                    "schedule": list(cex.schedule),
                    "rule": cex.rule,
                    "message": cex.message,
                    "replay_violation": violation,
                    "choice_points": [
                        {"depth": i, "arity": n, "chosen": c}
                        for i, (n, c) in enumerate(chooser.trail)
                    ],
                },
                fh, indent=2,
            )


def explore_all(
    specs: Optional[list[ScenarioSpec]] = None,
    max_schedules: int = 20000,
    dedup: bool = True,
    artifacts_dir: Optional[str] = None,
) -> list[ExploreResult]:
    """Explore every (or the given) scenario; collect per-scenario results."""
    from repro.verify.scenarios import SCENARIOS

    if specs is None:
        specs = list(SCENARIOS.values())
    return [
        Explorer(spec, max_schedules=max_schedules, dedup=dedup,
                 artifacts_dir=artifacts_dir).explore()
        for spec in specs
    ]
