"""Hand-seeded protocol mutants proving the verifier has teeth.

Each mutant is a small, realistic protocol bug — the kind a refactor of
the RC machinery could plausibly introduce — applied as a reversible
monkeypatch under a context manager.  ``tools/check_verify.py`` runs the
explorer over each mutant's target scenarios and fails the build unless
**every** mutant produces a counterexample (and the unmutated tree
explores clean): a verifier that cannot catch these is decoration, not
verification.

The patches target *simulation* classes only and always restore the
original attributes on exit, so mutants compose with pytest and never
leak between runs.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass
from typing import Callable, Generator, Iterator

from repro.hw.nic import Nic
from repro.verbs.qp import QPState, QueuePair
from repro.verbs.wr import CQE, Psn, SendWR, WCStatus, WireMessage


@dataclass(frozen=True)
class Mutant:
    """One seeded bug: how to apply it and what must catch it."""

    name: str
    description: str
    rule: str  # the PROTO rule expected to flag it
    scenarios: tuple[str, ...]  # scenario names whose exploration catches it
    apply: Callable[[], "contextlib.AbstractContextManager[None]"]


@contextlib.contextmanager
def _patched(owner: type, attr: str, repl: Callable) -> Iterator[None]:
    orig = getattr(owner, attr)
    setattr(owner, attr, repl)
    try:
        yield
    finally:
        setattr(owner, attr, orig)


# -- M1: entering ERROR silently drops the SQ instead of flushing it ----------

@contextlib.contextmanager
def _skip_error_flush() -> Iterator[None]:
    def bad(self: QueuePair) -> None:
        # "Optimized" flush that forgets the send queue: consumers waiting
        # on signaled sends hang forever.
        from repro.verbs.wr import CQE, Opcode, WCStatus

        for rwr in self.rq:
            self.recv_cq.push(CQE(
                wr_id=rwr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                opcode=Opcode.SEND, byte_len=0, qp_num=self.qpn))
        self.rq.clear()
        self.outstanding.clear()
        self.retx_retries.clear()
        self.retx_epoch.clear()
        self.sq_outstanding = 0

    with _patched(QueuePair, "_flush_with_errors", bad):
        yield


# -- M2: responder ACKs one PSN ahead of what it accepted ---------------------

@contextlib.contextmanager
def _ack_wrong_psn() -> Iterator[None]:
    orig = Nic._send_ack

    def bad(self: Nic, qp: QueuePair, request: WireMessage, kind: str,
            status: WCStatus = WCStatus.SUCCESS,
            ) -> "Generator[object, object, None]":
        shifted = dataclasses.replace(request, psn=Psn.next(request.psn))
        yield from orig(self, qp, shifted, kind, status)

    with _patched(Nic, "_send_ack", bad):
        yield


# -- M3: duplicate atomics re-execute instead of replaying the cache ----------

@contextlib.contextmanager
def _atomic_reexec() -> Iterator[None]:
    def bad(self, qp: QueuePair, msg: WireMessage) -> None:
        cached = qp.atomic_cache.get(msg.psn)
        if cached is not None:
            # Re-run the RMW: the "original" value returned to the retry
            # now includes the first execution's add — a lost update bug.
            add = msg.atomic[1] if msg.atomic else 1
            self.sim.spawn(self._exec_atomic_resp(qp, msg, cached + add),
                           name=self._ex_atomic_name)

    with _patched(Nic, "_replay_atomic", bad):
        yield


# -- M4: acked WQEs resurrected in the outstanding window ---------------------

@contextlib.contextmanager
def _double_complete() -> Iterator[None]:
    orig = Nic._handle_response

    def bad(self: Nic, msg: WireMessage,
            ) -> "Generator[object, object, None]":
        qp = self._qps.get(msg.dst_qpn)
        wr = psn = None
        if qp is not None and msg.kind == "ack" and msg.token is not None:
            _qpn, psn = msg.token
            wr = qp.outstanding.get(psn)
        yield from orig(self, msg)
        if (wr is not None and qp is not None
                and psn not in qp.outstanding
                and qp.state is QPState.RTS):
            # Stale bookkeeping: the completed WQE creeps back into the
            # window, so an ERROR flush completes it a second time.
            qp.outstanding[psn] = wr
            qp.sq_outstanding += 1

    with _patched(Nic, "_handle_response", bad):
        yield


# -- M5: retry exhaustion errors the QP by direct state write -----------------

@contextlib.contextmanager
def _direct_state_write() -> Iterator[None]:
    def bad(self: Nic, qp: QueuePair, wr: "SendWR",
            ) -> "Generator[object, object, None]":
        if qp.state not in (QPState.ERROR, QPState.RESET):
            # Bypasses modify(): no legality check, no flush, and the
            # monitor's shadow state goes stale until the next hook.
            qp._state = QPState.ERROR  # sim: allow-qp-state-write(seeded mutant M5)
        yield from self._post_cqe(
            qp.send_cq,
            CQE(wr_id=wr.wr_id, status=WCStatus.RETRY_EXC_ERR,
                opcode=wr.opcode, byte_len=wr.length, qp_num=qp.qpn,
                span=wr.span),
        )

    with _patched(Nic, "_complete_retry_exhausted", bad):
        yield


# -- M6: the ACK timer never gives up (unbounded retransmission) --------------

@contextlib.contextmanager
def _retransmit_forever() -> Iterator[None]:
    def bad(self: Nic, token: tuple) -> None:
        qp, psn, epoch = token
        if qp.retx_epoch.get(psn) != epoch:
            return
        wr = qp.outstanding.get(psn)
        if wr is None or qp.state is not QPState.RTS:
            qp.retx_epoch.pop(psn, None)
            return
        self.counters.ack_timeouts += 1
        retries = qp.retx_retries.get(psn, 0)
        # The retry_cnt check is gone: every timeout retransmits.
        qp.retx_retries[psn] = retries + 1
        self._queue_retransmit(qp, wr, psn, retries + 1)

    with _patched(Nic, "_ack_timer_fired", bad):
        yield


# -- M7: ERROR flush emits sends newest-first ---------------------------------

@contextlib.contextmanager
def _flush_reverse() -> Iterator[None]:
    def bad(self: QueuePair) -> None:
        from repro.verbs.wr import CQE, Opcode, WCStatus

        for rwr in self.rq:
            self.recv_cq.push(CQE(
                wr_id=rwr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                opcode=Opcode.SEND, byte_len=0, qp_num=self.qpn))
        self.rq.clear()
        base = self.sq_psn
        for _psn, swr in sorted(
            self.outstanding.items(),
            key=lambda kv: Psn.delta(kv[0], base),
            reverse=True,  # newest-first: violates SQ flush order
        ):
            self.send_cq.push(CQE(
                wr_id=swr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                opcode=swr.opcode, byte_len=0, qp_num=self.qpn))
        self.outstanding.clear()
        self.reorder.clear()
        self.retx_retries.clear()
        self.retx_epoch.clear()
        self.sq_outstanding = 0

    with _patched(QueuePair, "_flush_with_errors", bad):
        yield


# -- M8: accepting a message steps expected_psn backwards ---------------------

@contextlib.contextmanager
def _expected_psn_rewind() -> Iterator[None]:
    def bad(self, qp: QueuePair) -> None:
        qp.expected_psn = Psn.add(qp.expected_psn, -1)

    with _patched(Nic, "_advance_expected_psn", bad):
        yield


MUTANTS: dict[str, Mutant] = {
    m.name: m
    for m in (
        Mutant("skip_error_flush",
               "ERROR transition drops the SQ instead of flushing it",
               "PROTO101", ("flush_order", "retry_exhaustion"),
               _skip_error_flush),
        Mutant("ack_wrong_psn",
               "responder ACKs one PSN past what it accepted",
               "PROTO102", ("two_sends",), _ack_wrong_psn),
        Mutant("atomic_reexec",
               "duplicate atomics re-execute the RMW instead of replaying",
               "PROTO106", ("atomic_replay",), _atomic_reexec),
        Mutant("double_complete",
               "acked WQEs resurrected, so an ERROR flush completes twice",
               "PROTO101", ("flush_order",), _double_complete),
        Mutant("direct_state_write",
               "retry exhaustion writes qp._state directly, bypassing modify",
               "PROTO103", ("retry_exhaustion",), _direct_state_write),
        Mutant("retransmit_forever",
               "ACK timeout retransmits without a retry_cnt bound",
               "PROTO105", ("retry_exhaustion",), _retransmit_forever),
        Mutant("flush_reverse",
               "ERROR flush emits send CQEs newest-first",
               "PROTO104", ("flush_order",), _flush_reverse),
        Mutant("expected_psn_rewind",
               "responder steps expected_psn backwards on accept",
               "PROTO102", ("two_sends",), _expected_psn_rewind),
    )
}
