"""Small closed scenarios for exhaustive schedule exploration.

Each scenario is a *tiny* RC world — one connected QP pair, two to four
work requests, optionally a bounded drop budget — chosen so the full tree
of same-timestamp dispatch interleavings and drop decisions stays in the
thousands of schedules.  Small scopes are the point: protocol bugs in
ordering, retransmission and flush logic almost always have minimal
witnesses with one or two in-flight messages (the small-scope hypothesis),
so exhausting a tiny world buys more confidence per CPU-second than
sampling a big one.

A scenario factory builds a **fresh** simulator per call (the explorer
re-runs it once per schedule) and splits setup into two stages:

- :meth:`Scenario.prepare` runs the connection handshake with *default*
  scheduling, so the choice tree starts at the interesting part — the
  data-plane work — not at thousands of identical handshake ties;
- :meth:`Scenario.go` posts the work and runs the simulator to idle.
  It never block-waits on completions: under a seeded mutant the
  completions may legitimately never come, and the run must still
  terminate so the monitor's :meth:`finalize` can flag what is missing.

The monitor must be attached *before* ``prepare`` (QP registration hooks
fire during creation); the chooser and fault injector go in *after*
``prepare`` and before ``go``.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.cluster.builder import build_pair
from repro.cluster.fabric import Fabric
from repro.core.endpoint import Endpoint, make_rc_pair
from repro.hw.profiles import SYSTEM_L
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.units import us
from repro.verbs.qp import QPState
from repro.verbs.wr import Opcode, RecvWR, SendWR


#: Scenario bodies and setup stages are simulation generators.
SimGen = Generator[object, object, None]
#: ``body(sim, a, b)`` posts the scenario's work requests.
Body = Callable[[Simulator, Endpoint, Endpoint], SimGen]


def _recv(ep: Endpoint, wr_id: int) -> RecvWR:
    return RecvWR(wr_id=wr_id, addr=ep.buf.addr, length=ep.buf.length,
                  lkey=ep.mr.lkey)


def _send(ep: Endpoint, wr_id: int, nbytes: int = 1024) -> SendWR:
    return SendWR(wr_id=wr_id, opcode=Opcode.SEND, addr=ep.buf.addr,
                  length=nbytes, lkey=ep.mr.lkey)


class Scenario:
    """One prepared world: simulator, fabric, endpoints, and a body."""

    def __init__(self, name: str, sim: Simulator, fabric: Fabric,
                 setup: Callable[["Scenario"], SimGen], body: Body) -> None:
        self.name = name
        self.sim = sim
        self.fabric = fabric
        self._setup = setup
        self._body = body
        self.endpoints: tuple[Endpoint, Endpoint] = ()  # type: ignore[assignment]
        self.qps: list = []
        self.cqs: list = []

    def prepare(self) -> None:
        """Run the RC handshake under default scheduling."""
        self.sim.run(self.sim.process(self._setup(self)))

    def go(self) -> None:
        """Post the scenario's work and run the simulator to idle."""
        self.sim.process(self._body(self.sim, *self.endpoints))
        self.sim.run(None)


#: ``tune(a, b)`` runs right after the handshake, inside the sim.
Tune = Optional[Callable[[Endpoint, Endpoint], None]]


def _pair_factory(name: str, body: Body, *, drop_budget: int = 0,
                  tune: Tune = None) -> "ScenarioSpec":
    def factory(trace: bool = False) -> Scenario:
        sim = Simulator(seed=0, trace=Trace(enabled=True) if trace else None)
        fabric, host_a, host_b = build_pair(sim, SYSTEM_L)

        def setup(scen: Scenario) -> SimGen:
            a, b = yield from make_rc_pair(host_a, host_b, "bypass", "bypass")
            if tune is not None:
                tune(a, b)
            scen.endpoints = (a, b)
            scen.qps = [a.qp, b.qp]
            scen.cqs = [a.send_cq, a.recv_cq, b.send_cq, b.recv_cq]

        return Scenario(name, sim, fabric, setup, body)

    return ScenarioSpec(name=name, factory=factory, drop_budget=drop_budget)


class ScenarioSpec:
    """A named factory plus the drop budget its exploration should use."""

    def __init__(self, name: str, factory: Callable[[bool], Scenario],
                 drop_budget: int) -> None:
        self.name = name
        self.factory = factory
        self.drop_budget = drop_budget

    def __call__(self, trace: bool = False) -> Scenario:
        return self.factory(trace)


# --------------------------------------------------------------------------
# Scenario bodies
# --------------------------------------------------------------------------

def _two_sends(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """Two signaled sends into two posted recvs; lossless."""
    for i in (101, 102):
        yield from b.post_recv(_recv(b, i))
    for i in (1, 2):
        yield from a.post_send(_send(a, i))


def _pipelined_sends(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """Four back-to-back sends keep several PSNs in flight at once."""
    for i in (101, 102, 103, 104):
        yield from b.post_recv(_recv(b, i))
    for i in (1, 2, 3, 4):
        yield from a.post_send(_send(a, i, nbytes=4096))


def _retry_exhaustion(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """Two sends under a 2-drop budget with retry_cnt=1: some schedules
    drive the requester into RETRY_EXC_ERR and a full SQ flush."""
    for i in (101, 102):
        yield from b.post_recv(_recv(b, i))
    for i in (1, 2):
        yield from a.post_send(_send(a, i))


def _tune_tight_retries(a: Endpoint, b: Endpoint) -> None:
    a.qp.retry_cnt = 1
    a.qp.rnr_retries = 1


def _atomic_wr(a: Endpoint, b: Endpoint, wr_id: int,
               compare_add: int = 1) -> SendWR:
    return SendWR(wr_id=wr_id, opcode=Opcode.ATOMIC_FETCH_ADD,
                  addr=a.buf.addr, length=8, lkey=a.mr.lkey,
                  remote_addr=b.buf.addr, rkey=b.mr.rkey,
                  compare_add=compare_add)


def _atomic_replay(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """Two fetch-adds under a 1-drop budget: dropping the atomic response
    forces a retransmit the responder must answer from its replay cache
    (re-executing would double-increment — PROTO106's whole reason)."""
    b.buf.write(0, (5).to_bytes(8, "little"))
    for i in (1, 2):
        yield from a.post_send(_atomic_wr(a, b, i))


def _rnr_retry(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """Send arrives before any recv is posted: RNR NAK, backoff, retry."""
    yield from a.post_send(_send(a, 1))
    yield sim.timeout(us(20))
    yield from b.post_recv(_recv(b, 101))


def _flush_order(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """One small send that completes, then two large ones still in flight
    when a killer process errors the QP: the ERROR flush runs with a mix
    of completed / in-flight / never-fetched WQEs."""
    for i in (101, 102, 103):
        yield from b.post_recv(_recv(b, i))
    yield from a.post_recv(_recv(a, 201))

    def killer() -> SimGen:
        yield sim.timeout(us(6))
        if a.qp.state is QPState.RTS:
            a.qp.modify(QPState.ERROR)

    sim.process(killer())
    yield from a.post_send(_send(a, 1, nbytes=1024))
    for i in (2, 3):
        yield from a.post_send(_send(a, i, nbytes=65536))


def _read_drop(sim: Simulator, a: Endpoint, b: Endpoint) -> SimGen:
    """One RDMA READ under a 1-drop budget: losing the request or the
    response exercises the read retransmit path."""
    b.buf.write(0, bytes(range(16)))
    wr = SendWR(wr_id=1, opcode=Opcode.RDMA_READ, addr=a.buf.addr,
                length=256, lkey=a.mr.lkey, remote_addr=b.buf.addr,
                rkey=b.mr.rkey)
    yield from a.post_send(wr)


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        _pair_factory("two_sends", _two_sends),
        _pair_factory("pipelined_sends", _pipelined_sends),
        _pair_factory("retry_exhaustion", _retry_exhaustion,
                      drop_budget=2, tune=_tune_tight_retries),
        _pair_factory("atomic_replay", _atomic_replay,
                      drop_budget=1, tune=_tune_tight_retries),
        _pair_factory("rnr_retry", _rnr_retry),
        _pair_factory("flush_order", _flush_order),
        _pair_factory("read_drop", _read_drop,
                      drop_budget=1, tune=_tune_tight_retries),
    )
}
