"""Deterministic choice points for small-scope model checking.

The engine's default dispatch order breaks ``(time, priority)`` ties by
heap-insertion sequence — one arbitrary-but-fixed interleaving out of the
many a real system could exhibit.  A :class:`Chooser` attached via
``sim.attach_chooser`` turns every such tie (and every bounded fault
decision) into an explicit *choice point*: the engine hands over the tied
front and the chooser picks which record dispatches.  Index 0 everywhere
reproduces the default schedule bit-for-bit, so the explored space is a
strict superset of what every test and golden already runs.

:class:`ScriptedChooser` is the replay vehicle the explorer drives: it
follows a forced prefix of choices, answers 0 (default) beyond it, and
records the full ``(n, chosen)`` trail so the explorer can enumerate the
untaken siblings of this schedule.

:class:`ChoiceFaultInjector` folds *fault* nondeterminism into the same
trail: it exposes the :mod:`repro.faults` injector interface to the
fabric, but instead of drawing drops from an RNG it asks the chooser a
binary keep/drop question per eligible message, bounded by a drop budget.
Attaching it makes ``fabric.lossy`` true, so the RC ACK-timeout machinery
arms exactly as it would under a real fault plan.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import SimulationError

#: Message kinds eligible for exploration drops: everything that travels
#: (requests *and* responses — losing an ACK or an atomic response is how
#: the duplicate-replay paths get exercised), except the socket path.
DROPPABLE_KINDS = frozenset({
    "send", "write", "read_req", "atomic",
    "ack", "nak_rnr", "read_resp", "atomic_resp",
})


class ScheduleDivergence(SimulationError):
    """A scripted choice prefix no longer matches the run it was recorded
    from — the simulation is not deterministic under replay (a bug in
    itself), or the prefix belongs to a different scenario/mutant."""


class Chooser:
    """Base chooser: always picks the default (insertion-order) record.

    ``choose`` is called by the engine loop *between* event dispatches
    with the tied heap-record front; ``choose_fault`` is called by
    :class:`ChoiceFaultInjector` *inside* a dispatch.  The split matters
    to the explorer: state fingerprints are only sound between dispatches
    (no generator is suspended mid-mutation), so only ``choose`` sites
    are eligible for seen-state pruning.
    """

    def choose(self, n: int, front: Sequence[object]) -> int:
        return 0

    def choose_fault(self, n: int, label: str) -> int:
        return 0


class ScriptedChooser(Chooser):
    """Replay a choice prefix, default beyond it, record the whole trail.

    Parameters
    ----------
    prefix:
        Choice indices to force, in choice-point order.  Schedule and
        fault choices share one numbering (they interleave exactly as
        they occur), so a prefix addresses both uniformly.
    observer:
        Optional ``observer(depth, n, front)`` called before each
        *schedule* choice (never for fault choices — see
        :class:`Chooser`); the explorer uses it to fingerprint-prune.
        It may raise to abandon the run.
    """

    def __init__(
        self,
        prefix: Sequence[int] = (),
        observer: Optional[Callable[[int, int, Sequence[object]], None]] = None,
    ) -> None:
        self.prefix = tuple(prefix)
        #: ``(n, chosen)`` per choice point, in order.
        self.trail: list[tuple[int, int]] = []
        self.observer = observer

    def _pick(self, n: int) -> int:
        depth = len(self.trail)
        chosen = self.prefix[depth] if depth < len(self.prefix) else 0
        if not 0 <= chosen < n:
            raise ScheduleDivergence(
                f"choice {depth}: scripted index {chosen} out of range "
                f"for a {n}-way choice point"
            )
        self.trail.append((n, chosen))
        return chosen

    def choose(self, n: int, front: Sequence[object]) -> int:
        if self.observer is not None:
            self.observer(len(self.trail), n, front)
        return self._pick(n)

    def choose_fault(self, n: int, label: str) -> int:
        return self._pick(n)

    def chosen(self) -> tuple[int, ...]:
        """The schedule this run followed, as a replayable prefix."""
        return tuple(c for (_n, c) in self.trail)


class ChoiceFaultInjector:
    """Budgeted message drops decided by the chooser (not an RNG).

    Mirrors the :class:`repro.faults.FaultInjector` interface the fabric
    consumes (``on_transmit`` / ``recv_paused`` / ``snapshot``), so it is
    attached with ``fabric.inject_faults(injector)``.  Each eligible
    transmit while budget remains becomes a binary choice point: 0 keeps
    the message (default — a zero-drop run is the lossless baseline),
    1 drops it and spends one unit of budget.
    """

    def __init__(
        self,
        chooser: Chooser,
        budget: int = 1,
        kinds: frozenset = DROPPABLE_KINDS,
    ) -> None:
        self.chooser = chooser
        self.budget = budget
        self.kinds = kinds
        self.drops = 0

    def on_transmit(
        self,
        src: int,
        dst: int,
        now: float,
        kind: str,
        nbytes: int,
        propagation_ns: float,
    ) -> Optional[float]:
        """None = drop the message; a float = extra delay (always 0 here)."""
        if self.budget > 0 and kind in self.kinds:
            if self.chooser.choose_fault(2, f"drop:{kind}:{src}->{dst}") == 1:
                self.budget -= 1
                self.drops += 1
                return None
        return 0.0

    def recv_paused(self, host: int, now: float) -> bool:
        return False

    def snapshot(self) -> dict[str, object]:
        return {"budget": self.budget, "drops": self.drops}
