"""CoRD: Converged RDMA Dataplane — full-system simulation reproduction.

Top-level convenience re-exports; see the subpackages for the real API:

- :mod:`repro.sim` — discrete-event engine
- :mod:`repro.hw` — hardware models and testbed profiles
- :mod:`repro.verbs` — ibverbs-style RDMA stack
- :mod:`repro.kernel` — OS model (interrupts, sockets, IPoIB)
- :mod:`repro.core` — the paper's contribution: bypass vs CoRD dataplanes
  and the CoRD policy framework
- :mod:`repro.cluster` — hosts and fabric
- :mod:`repro.perftest` — microbenchmarks (figs. 1/3/4/5)
- :mod:`repro.mpi` / :mod:`repro.npb` — MPI and NAS benchmarks (fig. 6)
- :mod:`repro.storage` — the paper's §6 outlook applied to NVMe queues
"""

__version__ = "1.0.0"

from repro.sim import Simulator  # noqa: F401  (canonical entry point)
