"""Command-line interface: perftest-style tools over the simulator.

Examples::

    python -m repro lat  --system L --op send --size 4096 --client cord
    python -m repro bw   --system A --transport UD --sweep
    python -m repro npb  --bench IS CG --ranks 16 --transports bypass cord ipoib
    python -m repro profiles
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import format_table
from repro.faults import parse_fault_spec
from repro.hw.profiles import PROFILES
from repro.npb import NpbConfig, run_npb
from repro.npb.runner import DEFAULT_SUITE
from repro.perftest.runner import PerftestConfig, default_sizes, run_bw, run_lat
from repro.perftest.techniques import Techniques
from repro.units import pretty_size


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--system", choices=sorted(PROFILES), default="L")
    p.add_argument("--transport", choices=["RC", "UD"], default="RC")
    p.add_argument("--op", choices=["send", "read", "write"], default="send")
    p.add_argument("--client", choices=["bypass", "cord"], default="bypass")
    p.add_argument("--server", choices=["bypass", "cord"], default="bypass")
    p.add_argument("--size", type=int, default=4096)
    p.add_argument("--iters", type=int, default=None)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--sweep", action="store_true",
                   help="sweep the perftest size ladder instead of one size")
    p.add_argument("--no-zero-copy", action="store_true")
    p.add_argument("--no-kernel-bypass", action="store_true")
    p.add_argument("--no-polling", action="store_true")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault-injection spec, e.g. 'loss=0.01' or "
                        "'loss=0.005,flap=1e6:2e6,pause=1:5e5:8e5' "
                        "(see repro.faults.parse_fault_spec)")
    p.add_argument("--fast-forward", dest="fast_forward", default=None,
                   action="store_true",
                   help="skip provably periodic steady-state loop cycles "
                        "(bit-identical results; also REPRO_FASTFORWARD=1)")
    p.add_argument("--no-fast-forward", dest="fast_forward",
                   action="store_false",
                   help="force fast-forward off, overriding REPRO_FASTFORWARD")


def _config(args, default_iters: int) -> PerftestConfig:
    tech = Techniques(
        zero_copy=not args.no_zero_copy,
        kernel_bypass=not args.no_kernel_bypass,
        polling=not args.no_polling,
    )
    faults = parse_fault_spec(args.faults) if args.faults else None
    return PerftestConfig(
        system=args.system, transport=args.transport, op=args.op,
        client=args.client, server=args.server,
        iters=args.iters or default_iters, techniques=tech, seed=args.seed,
        faults=faults, fastforward=args.fast_forward,
    )


def cmd_lat(args) -> int:
    cfg = _config(args, default_iters=200)
    sizes = default_sizes() if args.sweep else [args.size]
    rows = []
    for size in sizes:
        r = run_lat(cfg, size)
        rows.append([pretty_size(size), f"{r.avg_us:.3f}", f"{r.p50_ns / 1e3:.3f}",
                     f"{r.p99_ns / 1e3:.3f}"])
    print(format_table(
        ["size", "avg us", "p50 us", "p99 us"], rows,
        title=f"{cfg.label} latency on system {cfg.system} ({cfg.techniques.label})",
    ))
    return 0


def cmd_bw(args) -> int:
    cfg = _config(args, default_iters=1200)
    sizes = default_sizes() if args.sweep else [args.size]
    rows = []
    for size in sizes:
        if cfg.transport == "UD" and size > 4096:
            continue
        r = run_bw(cfg, size)
        rows.append([pretty_size(size), f"{r.gbit_per_s:.2f}",
                     f"{r.msg_rate_per_s / 1e6:.3f}"])
    print(format_table(
        ["size", "Gbit/s", "Mmsg/s"], rows,
        title=f"{cfg.label} bandwidth on system {cfg.system} ({cfg.techniques.label})",
    ))
    return 0


def _rx_contention_arg(args):
    """Map --rx-contention/--rx-buffer-bytes to a build_cluster argument."""
    from repro.hw.profiles import RxContentionProfile

    if args.rx_buffer_bytes is not None:
        return RxContentionProfile(buffer_bytes=args.rx_buffer_bytes)
    return {"auto": "auto", "on": True, "off": False}[args.rx_contention]


def cmd_npb(args) -> int:
    rx_contention = _rx_contention_arg(args)
    rows = []
    for name in args.bench:
        cfg = NpbConfig(name=name, klass=args.klass, ranks=args.ranks,
                        iter_scale=args.iter_scale)
        results = {}
        for transport in args.transports:
            results[transport] = run_npb(cfg, transport=transport,
                                         system=args.system, seed=args.seed,
                                         hosts_n=args.hosts,
                                         rx_contention=rx_contention)
        base = results[args.transports[0]]
        row = [name, f"{base.per_iter_ns / 1e6:.3f}"]
        for transport in args.transports:
            row.append(f"{results[transport].elapsed_ns / base.elapsed_ns:.3f}")
        rows.append(row)
    header = ["bench", f"{args.transports[0]} ms/iter"] + [
        f"{t} rel" for t in args.transports
    ]
    print(format_table(header, rows,
                       title=f"NPB class {args.klass}, {args.ranks} ranks, "
                             f"{args.hosts} hosts, system {args.system}"))
    return 0


def cmd_incast(args) -> int:
    """N→1 incast: many senders stream RDMA writes at one receiver."""
    from repro.perftest.incast import IncastConfig, run_incast

    rows = []
    for n in args.senders:
        cfg = IncastConfig(
            system=args.system, dataplane=args.dataplane, senders=n,
            size=args.size, msgs_per_sender=args.msgs, window=args.window,
            seed=args.seed, rx_contention=args.rx_contention != "off",
            buffer_bytes=args.rx_buffer_bytes, congestion=args.congestion,
        )
        r = run_incast(cfg)
        rows.append([
            str(n), f"{r.aggregate_gbit:.2f}", f"{r.per_flow_mean_gbit:.2f}",
            pretty_size(r.rx_queue_peak_bytes), str(r.messages_dropped),
            str(r.retransmits), str(r.ecn_marked), str(r.cnps),
        ])
    print(format_table(
        ["senders", "aggregate Gbit/s", "per-flow Gbit/s", "peak rxq",
         "drops", "retransmits", "ecn marks", "cnps"],
        rows,
        title=f"{args.dataplane} incast on system {args.system}, "
              f"{pretty_size(args.size)} x {args.msgs} msgs/sender "
              f"(rx_contention {'off' if args.rx_contention == 'off' else 'on'}"
              f", congestion {args.congestion})",
    ))
    return 0


def _warn_dropped(trace) -> None:
    """Loud stderr warning when the trace ring evicted records: spans are
    then partially missing and any attribution over them is suspect."""
    if trace.dropped:
        print(
            f"WARNING: trace ring buffer dropped {trace.dropped} records "
            f"(max_records={trace.max_records}) — spans are truncated and "
            "stage attribution over this trace would be incomplete; "
            "raise the cap or trace fewer iterations",
            file=sys.stderr,
        )


def cmd_attribute(args) -> int:
    """Blame-tree attribution of one measurement: queueing vs service per
    stage, per-op residual accounting, optional critical path + flamegraph."""
    import json

    from repro.analysis.critpath import critical_path, format_path
    from repro.perftest.runner import run_attributed
    from repro.telemetry import attribute_spans, aggregate, build_spans, folded_stacks

    if args.sweep:
        print("attribute runs a single size; drop --sweep", file=sys.stderr)
        return 2
    kind = args.kind
    cfg = _config(args, default_iters=80 if kind == "lat" else 150)
    cfg = cfg.with_(warmup=args.warmup if args.warmup is not None
                    else (12 if kind == "lat" else 30),
                    window=args.window)
    _result, sim, _pair = run_attributed(cfg, args.size, kind)
    _warn_dropped(sim.trace)

    spans = build_spans(sim.trace, op="post_send")
    incomplete = sum(1 for s in spans if not s.complete)
    blames = attribute_spans(spans)
    if not blames:
        print("no complete spans recorded — nothing to attribute",
              file=sys.stderr)
        return 1
    tables = aggregate(blames, incomplete=incomplete)

    out_lines = []
    for table in tables:
        header, rows = table.rows()
        out_lines.append(format_table(
            header, rows,
            title=f"{cfg.label} {kind} attribution, {pretty_size(table.size)} "
                  f"on system {cfg.system} ({cfg.techniques.label}): "
                  f"{table.ops} ops",
        ))
        mean_total = table.total_latency_ns / table.ops if table.ops else 0.0
        out_lines.append(
            f"mean op latency {mean_total:.1f} ns; residual "
            f"{table.residual_ns:.1f} ns total; every op ≥ "
            f"{table.explained_min * 100:.1f}% explained by named stages"
            + (f"; {incomplete} incomplete spans excluded" if incomplete else "")
        )
    if args.tree is not None:
        idx = max(0, min(args.tree, len(blames) - 1))
        out_lines.append("\n".join(blames[idx].tree_lines()))
    if args.critical_path:
        out_lines.append(format_path(critical_path(blames)))
    _emit_text("\n\n".join(out_lines), args.output)

    if args.json:
        doc = {
            "config": {
                "system": cfg.system, "transport": cfg.transport,
                "op": cfg.op, "client": cfg.client, "server": cfg.server,
                "size": args.size, "kind": kind, "iters": cfg.iters,
                "warmup": cfg.warmup, "window": cfg.window,
                "seed": cfg.seed, "techniques": cfg.techniques.label,
            },
            "dropped": sim.trace.dropped,
            "incomplete_spans": incomplete,
            "tables": [t.snapshot() for t in tables],
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.flamegraph:
        lines = folded_stacks(blames=blames)
        with open(args.flamegraph, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"wrote {args.flamegraph} ({len(lines)} stacks)",
              file=sys.stderr)

    worst = min(t.explained_min for t in tables)
    if worst < 0.95:
        print(f"FAIL: only {worst * 100:.1f}% of some op's latency is "
              "explained by named stages (< 95%)", file=sys.stderr)
        return 1
    return 0


def _emit_text(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
    else:
        print(text)


def _run_traced_pair(args, iters: int = 1, telemetry: bool = False,
                     sanitize: Optional[bool] = None):
    """Run ``iters`` traced RC sends; returns (sim, host_a, host_b)."""
    from repro.cluster import build_pair
    from repro.core.endpoint import make_rc_pair
    from repro.hw.profiles import get_profile
    from repro.sim import Simulator
    from repro.sim.trace import Trace
    from repro.verbs.wr import Opcode, RecvWR, SendWR

    sim = Simulator(seed=args.seed, trace=Trace(enabled=True),
                    sanitize=sanitize)
    if telemetry:
        sim.telemetry.enabled = True
    _fabric, host_a, host_b = build_pair(sim, get_profile(args.system))

    def main_proc():
        a, b = yield from make_rc_pair(host_a, host_b, args.client, args.server)
        sim.trace.clear()  # drop setup noise; trace just the messages
        for i in range(iters):
            yield from b.post_recv(RecvWR(wr_id=i + 1, addr=b.buf.addr,
                                          length=b.buf.length, lkey=b.mr.lkey))
            yield from a.post_send(SendWR(wr_id=i + 1, opcode=Opcode.SEND,
                                          addr=a.buf.addr, length=args.size,
                                          lkey=a.mr.lkey))
            yield from b.wait_recv()
            yield from a.wait_send()

    sim.run(sim.process(main_proc()))
    sim.run()
    return sim, host_a, host_b


def cmd_trace(args) -> int:
    """Run traced sends; print a timeline or export the trace."""
    import json

    from repro.analysis import format_timeline, message_timeline
    from repro.telemetry import chrome_trace, folded_stacks, jsonl_lines

    sim, _host_a, _host_b = _run_traced_pair(args, iters=args.iters)
    _warn_dropped(sim.trace)

    if args.format == "chrome":
        _emit_text(json.dumps(chrome_trace(sim.trace)), args.output)
        return 0
    if args.format == "jsonl":
        _emit_text("\n".join(jsonl_lines(sim.trace)), args.output)
        return 0
    if args.format == "folded":
        _emit_text("\n".join(folded_stacks(sim.trace)), args.output)
        return 0
    header = (f"life of one {args.size} B RC send, "
              f"{args.client}->{args.server}, system {args.system}:\n")
    _emit_text(header + "\n" + format_timeline(message_timeline(sim.trace)),
               args.output)
    return 0


def cmd_metrics(args) -> int:
    """Run a short telemetry-enabled exchange and dump the metrics snapshot."""
    import json

    from repro.telemetry import metrics_snapshot

    sim, host_a, host_b = _run_traced_pair(args, iters=args.iters, telemetry=True)
    snap = metrics_snapshot(sim, hosts=[host_a, host_b])
    _emit_text(json.dumps(snap, indent=2, sort_keys=True, default=str),
               args.output)
    return 0


def cmd_sanitize_lint(args) -> int:
    """Run the SIM001–SIM006 determinism linter; exit 1 on findings."""
    from repro.sanitize import format_json, format_text, run_lint

    findings = run_lint(paths=args.paths or None, root=args.root,
                        rules=args.rules)
    text = format_json(findings) if args.format == "json" else \
        format_text(findings)
    _emit_text(text, args.output)
    return 1 if findings else 0


def cmd_sanitize_run(args) -> int:
    """Run a short exchange with runtime sanitizers on; exit 1 on findings."""
    from repro.sanitize import findings_of, format_json, format_text

    sim, _host_a, _host_b = _run_traced_pair(args, iters=args.iters,
                                             sanitize=True)
    findings = findings_of(sim)
    text = format_json(findings) if args.format == "json" else \
        format_text(findings)
    _emit_text(text, args.output)
    return 1 if findings else 0


def cmd_verify_lint(args) -> int:
    """Run the PROTO001–PROTO004 protocol lint rules; exit 1 on findings."""
    from repro.sanitize import format_json, format_text, run_lint
    from repro.sanitize.findings import PROTO_LINT_RULES

    findings = run_lint(paths=args.paths or None, root=args.root,
                        rules=args.rules or list(PROTO_LINT_RULES))
    text = format_json(findings) if args.format == "json" else \
        format_text(findings)
    _emit_text(text, args.output)
    return 1 if findings else 0


def _verify_specs(names):
    from repro.verify import SCENARIOS

    if not names:
        return list(SCENARIOS.values())
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(SCENARIOS))})")
    return [SCENARIOS[n] for n in names]


def cmd_verify_monitors(args) -> int:
    """Run scenarios under the PROTO1xx monitors; exit 1 on violations."""
    import json

    from repro.sanitize import format_json, format_text
    from repro.verify import ProtocolMonitor

    all_findings = []
    lines = []
    for spec in _verify_specs(args.scenario):
        scen = spec()
        monitor = ProtocolMonitor(scen.sim, strict=False)
        scen.sim.attach_monitor(monitor)
        scen.prepare()
        scen.go()
        monitor.finalize()
        all_findings.extend(monitor.findings)
        lines.append(f"{scen.name}: {len(monitor.findings)} violation(s), "
                     f"idle at {scen.sim.now:.0f} ns")
    if args.format == "json":
        payload = json.loads(format_json(all_findings))
        text = json.dumps({"scenarios": lines, "findings": payload}, indent=2)
    else:
        text = "\n".join(lines) + "\n" + format_text(all_findings)
    _emit_text(text, args.output)
    return 1 if all_findings else 0


def cmd_verify_explore(args) -> int:
    """Exhaustively explore scenario schedules; exit 1 on a counterexample."""
    import contextlib
    import json

    from repro.verify import MUTANTS, Explorer

    specs = _verify_specs(args.scenario)
    if args.mutant and args.mutant not in MUTANTS:
        raise SystemExit(f"unknown mutant: {args.mutant} "
                         f"(known: {', '.join(sorted(MUTANTS))})")
    mutant_cm = MUTANTS[args.mutant].apply() if args.mutant else \
        contextlib.nullcontext()
    results = []
    with mutant_cm:
        for spec in specs:
            explorer = Explorer(spec, max_schedules=args.max_schedules,
                                dedup=not args.no_dedup,
                                artifacts_dir=args.artifacts)
            results.append(explorer.explore())

    bad = [r for r in results if not r.ok]
    if args.format == "json":
        text = json.dumps([
            {
                "scenario": r.scenario, "schedules_run": r.schedules_run,
                "pruned": r.pruned, "max_depth": r.max_depth,
                "exhausted": r.exhausted, "ok": r.ok,
                "counterexample": None if r.ok else {
                    "schedule": list(r.counterexample.schedule),
                    "rule": r.counterexample.rule,
                    "message": r.counterexample.message,
                    "trace": r.counterexample.trace_path,
                    "artifact": r.counterexample.schedule_path,
                },
            }
            for r in results
        ], indent=2)
    else:
        lines = []
        for r in results:
            status = "clean" if r.ok else \
                f"VIOLATION {r.counterexample.rule}"
            tail = "exhausted" if r.exhausted else "capped"
            lines.append(f"{r.scenario}: {status} — {r.schedules_run} "
                         f"schedule(s), {r.pruned} pruned, depth "
                         f"{r.max_depth}, {tail}")
            if not r.ok:
                lines.append(f"  schedule: {list(r.counterexample.schedule)}")
                lines.append(f"  {r.counterexample.message}")
                if r.counterexample.trace_path:
                    lines.append(f"  trace: {r.counterexample.trace_path}")
        text = "\n".join(lines)
    _emit_text(text, args.output)
    return 1 if bad else 0


def cmd_profiles(_args) -> int:
    rows = []
    for name, prof in sorted(PROFILES.items()):
        rows.append([
            name, prof.cpu.name, str(prof.cpu.cores),
            f"{prof.nic.link_bw * 8:.0f}",
            f"{prof.syscall_cost():.0f}",
            f"{prof.cord_op_cost():.0f}",
            "on" if prof.turbo_enabled else "off",
            "yes" if prof.cord_inline_supported else "no",
        ])
    print(format_table(
        ["profile", "cpu", "cores", "Gbit/s", "syscall ns", "CoRD op ns",
         "turbo", "CoRD inline"],
        rows, title="calibrated system profiles",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CoRD reproduction command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lat = sub.add_parser("lat", help="perftest-style latency test")
    _add_common(p_lat)
    p_lat.set_defaults(func=cmd_lat)

    p_bw = sub.add_parser("bw", help="perftest-style bandwidth test")
    _add_common(p_bw)
    p_bw.set_defaults(func=cmd_bw)

    p_attr = sub.add_parser(
        "attribute",
        help="blame-tree latency attribution of one measurement",
        description="Run one perftest measurement with full tracing and "
                    "attribute every op's end-to-end latency to named "
                    "stages, split into queueing (waiting behind other "
                    "WQEs/CQEs/the app's poll loop) vs service time.  "
                    "Exits 1 if any op is less than 95% explained.",
    )
    _add_common(p_attr)
    p_attr.add_argument("--kind", choices=["lat", "bw"], default="lat",
                        help="latency ping-pong or windowed bandwidth run")
    p_attr.add_argument("--warmup", type=int, default=None,
                        help="warmup iterations (default 12 lat / 30 bw)")
    p_attr.add_argument("--window", type=int, default=32,
                        help="in-flight window for --kind bw")
    p_attr.add_argument("--tree", type=int, default=None, metavar="N",
                        help="also print the N-th op's full blame tree")
    p_attr.add_argument("--critical-path", action="store_true",
                        help="also print the critical path through coupled "
                             "ops (blocker chain from the last completion)")
    p_attr.add_argument("--json", default=None, metavar="FILE",
                        help="write machine-readable attribution JSON here")
    p_attr.add_argument("--flamegraph", default=None, metavar="FILE",
                        help="write folded stacks (flamegraph.pl/speedscope "
                             "compatible, simulated-ns weights) here")
    p_attr.add_argument("--output", default=None,
                        help="write the human tables to this file")
    p_attr.set_defaults(func=cmd_attribute)

    p_npb = sub.add_parser("npb", help="NPB suite over chosen transports")
    p_npb.add_argument("--bench", nargs="+", choices=DEFAULT_SUITE,
                       default=["IS", "EP", "CG"])
    p_npb.add_argument("--klass", choices=["S", "A", "B", "C", "D"], default="A")
    p_npb.add_argument("--ranks", type=int, default=8)
    p_npb.add_argument("--iter-scale", type=float, default=0.2)
    p_npb.add_argument("--system", choices=sorted(PROFILES), default="A")
    p_npb.add_argument("--transports", nargs="+",
                       choices=["bypass", "cord", "ipoib"],
                       default=["bypass", "cord", "ipoib"])
    p_npb.add_argument("--seed", type=int, default=11)
    p_npb.add_argument("--hosts", type=int, default=2,
                       help="number of hosts ranks are spread over")
    p_npb.add_argument("--rx-contention", choices=["auto", "on", "off"],
                       default="auto",
                       help="receiver-side fabric contention (auto: on for "
                            ">2 hosts)")
    p_npb.add_argument("--rx-buffer-bytes", type=int, default=None,
                       help="bounded switch output-port buffer (implies "
                            "rx contention on; drops feed RC retransmit)")
    p_npb.set_defaults(func=cmd_npb)

    p_incast = sub.add_parser(
        "incast",
        help="N→1 incast sweep (receiver-side contention demo)",
        description="Many senders stream RDMA writes at one receiver.  "
                    "With receiver-side contention on (default), the "
                    "aggregate receive rate caps at one link's bandwidth; "
                    "with --rx-contention off the legacy source-port-only "
                    "fabric absorbs N links' worth (the modeling bug this "
                    "mode exists to show).",
    )
    p_incast.add_argument("--system", choices=sorted(PROFILES), default="L")
    p_incast.add_argument("--dataplane", choices=["bypass", "cord"],
                          default="bypass")
    p_incast.add_argument("--senders", type=int, nargs="+",
                          default=[2, 4, 8, 16])
    p_incast.add_argument("--size", type=int, default=64 * 1024)
    p_incast.add_argument("--msgs", type=int, default=32,
                          help="messages per sender")
    p_incast.add_argument("--window", type=int, default=16,
                          help="per-sender in-flight write window")
    p_incast.add_argument("--seed", type=int, default=7)
    p_incast.add_argument("--rx-contention", choices=["on", "off"],
                          default="on")
    p_incast.add_argument("--rx-buffer-bytes", type=int, default=None,
                          help="bounded switch output-port buffer in bytes "
                               "(default unbounded)")
    p_incast.add_argument("--congestion", choices=["off", "dcqcn"],
                          default="off",
                          help="end-to-end congestion control: ECN marking "
                               "at the switch queue + DCQCN-style sender "
                               "rate limiting (default off)")
    p_incast.set_defaults(func=cmd_incast)

    p_trace = sub.add_parser("trace", help="trace one message's life")
    p_trace.add_argument("--system", choices=sorted(PROFILES), default="L")
    p_trace.add_argument("--client", choices=["bypass", "cord"], default="bypass")
    p_trace.add_argument("--server", choices=["bypass", "cord"], default="bypass")
    p_trace.add_argument("--size", type=int, default=4096)
    p_trace.add_argument("--seed", type=int, default=7)
    p_trace.add_argument("--iters", type=int, default=1,
                         help="number of traced sends")
    p_trace.add_argument("--format",
                         choices=["timeline", "chrome", "jsonl", "folded"],
                         default="timeline",
                         help="timeline: human-readable; chrome: Perfetto-"
                              "loadable trace-event JSON; jsonl: raw records; "
                              "folded: FlameGraph/speedscope folded stacks "
                              "weighted by simulated ns")
    p_trace.add_argument("--output", default=None,
                         help="write to this file instead of stdout")
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="telemetry metrics snapshot of a short exchange"
    )
    p_metrics.add_argument("--system", choices=sorted(PROFILES), default="L")
    p_metrics.add_argument("--client", choices=["bypass", "cord"], default="bypass")
    p_metrics.add_argument("--server", choices=["bypass", "cord"], default="bypass")
    p_metrics.add_argument("--size", type=int, default=4096)
    p_metrics.add_argument("--seed", type=int, default=7)
    p_metrics.add_argument("--iters", type=int, default=8,
                           help="number of sends in the exchange")
    p_metrics.add_argument("--output", default=None,
                           help="write to this file instead of stdout")
    p_metrics.set_defaults(func=cmd_metrics)

    p_san = sub.add_parser(
        "sanitize",
        help="determinism lint + runtime race/RNG sanitizers",
        description="Determinism tooling: `lint` runs the SIM001-SIM006 AST "
                    "rulepack; `run` executes a short RC exchange with the "
                    "runtime sanitizers (SIM101-SIM103) attached.  Both exit "
                    "non-zero when findings remain.",
    )
    san_sub = p_san.add_subparsers(dest="sanitize_command", required=True)

    p_san_lint = san_sub.add_parser("lint", help="run the determinism linter")
    p_san_lint.add_argument("paths", nargs="*",
                            help="files/directories to lint (default: src, "
                                 "benchmarks, tests, tools under --root)")
    p_san_lint.add_argument("--root", default=".",
                            help="repo root for the default lint set")
    p_san_lint.add_argument("--rules", nargs="+", metavar="SIMxxx",
                            default=None,
                            help="only report these rule ids")
    p_san_lint.add_argument("--format", choices=["text", "json"],
                            default="text")
    p_san_lint.add_argument("--output", default=None,
                            help="write to this file instead of stdout")
    p_san_lint.set_defaults(func=cmd_sanitize_lint)

    p_san_run = san_sub.add_parser(
        "run", help="short sanitizer-on simulation (runtime checks)"
    )
    p_san_run.add_argument("--system", choices=sorted(PROFILES), default="L")
    p_san_run.add_argument("--client", choices=["bypass", "cord"],
                           default="bypass")
    p_san_run.add_argument("--server", choices=["bypass", "cord"],
                           default="bypass")
    p_san_run.add_argument("--size", type=int, default=4096)
    p_san_run.add_argument("--seed", type=int, default=7)
    p_san_run.add_argument("--iters", type=int, default=8,
                           help="number of sends in the exchange")
    p_san_run.add_argument("--format", choices=["text", "json"],
                           default="text")
    p_san_run.add_argument("--output", default=None,
                           help="write to this file instead of stdout")
    p_san_run.set_defaults(func=cmd_sanitize_run)

    p_ver = sub.add_parser(
        "verify",
        help="protocol verifier: lint, invariant monitors, model checker",
        description="RC protocol verification: `lint` runs the PROTO001-"
                    "PROTO004 static rules; `monitors` runs the closed "
                    "scenarios under the PROTO101-PROTO107 runtime "
                    "invariant monitors; `explore` exhaustively model-"
                    "checks every schedule/fault interleaving of those "
                    "scenarios.  All exit non-zero when a violation or "
                    "counterexample is found.",
    )
    ver_sub = p_ver.add_subparsers(dest="verify_command", required=True)

    p_ver_lint = ver_sub.add_parser("lint", help="protocol-aware lint rules")
    p_ver_lint.add_argument("paths", nargs="*",
                            help="files/directories to lint (default: src, "
                                 "benchmarks, tests, tools under --root)")
    p_ver_lint.add_argument("--root", default=".",
                            help="repo root for the default lint set")
    p_ver_lint.add_argument("--rules", nargs="+", metavar="PROTOxxx",
                            default=None,
                            help="only report these rule ids "
                                 "(default: PROTO001-PROTO004)")
    p_ver_lint.add_argument("--format", choices=["text", "json"],
                            default="text")
    p_ver_lint.add_argument("--output", default=None,
                            help="write to this file instead of stdout")
    p_ver_lint.set_defaults(func=cmd_verify_lint)

    p_ver_mon = ver_sub.add_parser(
        "monitors", help="run scenarios under the runtime invariant monitors"
    )
    p_ver_mon.add_argument("--scenario", nargs="+", default=None,
                           help="scenario names (default: all)")
    p_ver_mon.add_argument("--format", choices=["text", "json"],
                           default="text")
    p_ver_mon.add_argument("--output", default=None,
                           help="write to this file instead of stdout")
    p_ver_mon.set_defaults(func=cmd_verify_monitors)

    p_ver_exp = ver_sub.add_parser(
        "explore", help="exhaustive small-scope schedule exploration"
    )
    p_ver_exp.add_argument("--scenario", nargs="+", default=None,
                           help="scenario names (default: all)")
    p_ver_exp.add_argument("--max-schedules", type=int, default=20000,
                           help="per-scenario schedule cap")
    p_ver_exp.add_argument("--no-dedup", action="store_true",
                           help="disable canonical-state pruning")
    p_ver_exp.add_argument("--mutant", default=None,
                           help="apply this seeded protocol mutant first "
                                "(teeth check: exploration must then fail)")
    p_ver_exp.add_argument("--artifacts", default=None, metavar="DIR",
                           help="write counterexample trace + schedule "
                                "artifacts to this directory")
    p_ver_exp.add_argument("--format", choices=["text", "json"],
                           default="text")
    p_ver_exp.add_argument("--output", default=None,
                           help="write to this file instead of stdout")
    p_ver_exp.set_defaults(func=cmd_verify_explore)

    p_prof = sub.add_parser("profiles", help="show the calibrated testbeds")
    p_prof.set_defaults(func=cmd_profiles)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
