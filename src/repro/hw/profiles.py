"""Calibrated hardware parameter sets.

The two shipped profiles mirror the paper's testbeds:

- **System L**: 2 nodes, Intel i5-4590 (4 cores, 3.3/3.7 GHz), NVIDIA
  ConnectX-6 Dx RoCE at 100 Gbit/s (motherboard-limited), back-to-back,
  Linux 6.0, KPTI off, Turbo Boost off, processes pinned.
- **System A**: 2 Azure HB120 nodes, AMD EPYC 7V73X (120 vCPUs),
  virtualized ConnectX-6 InfiniBand at 200 Gbit/s, KPTI off, DVFS cannot
  be disabled, syscall costs are larger and noisy (virtualization), and the
  CoRD prototype lacks inline-message support there (paper §5, fig. 5a).

Calibration anchors (paper §2 and §5):

- extra memcpy costs ~140 µs/MiB         -> memcpy_bw ≈ 7.5 GB/s
- baseline small-message bw ≈ 1.4 Gbit/s  -> per-message CPU ≈ 360 ns @64 B
- 32 KiB send: ~370 k msg/s, CoRD degradation ~1 %
- interrupt-driven completion adds a large, size-independent constant
- CoRD per-op overhead ≈ 0.3–0.7 µs/side on L; larger and bimodal on A
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.units import gbit_per_s, gib_per_s


@dataclass(frozen=True)
class CpuProfile:
    """Per-core timing parameters (all times in ns at nominal frequency)."""

    name: str
    cores: int
    nominal_ghz: float
    #: Max single-core turbo relative to nominal (1.0 == turbo off).
    turbo_headroom: float
    #: One user->kernel->user round trip for a null syscall, KPTI off.
    syscall_ns: float
    #: Extra cost KPTI adds to every syscall (CR3 switches + TLB effects).
    kpti_extra_ns: float
    #: Full context switch (schedule out + in), used on blocking waits.
    context_switch_ns: float
    #: Interrupt delivery to handler entry (APIC/vector dispatch).
    irq_entry_ns: float
    #: Interrupt handler body for a NIC completion (reap + wake).
    irq_handler_ns: float
    #: Cost of arming an event channel / entering epoll-style wait.
    block_ns: float
    #: User-level driver: build one WQE and prepare a post (ibverbs fast path).
    post_wqe_ns: float
    #: One ibv_poll_cq call that finds a completion (user space).
    poll_hit_ns: float
    #: One ibv_poll_cq call that finds nothing (user space).
    poll_miss_ns: float
    #: Benchmark/application loop bookkeeping per message.
    loop_overhead_ns: float
    #: EMA window for the DVFS duty-cycle estimate.
    dvfs_window_ns: float = 50_000.0
    #: Idle credit the DVFS model grants per syscall (models the observed
    #: "system calls interact with DVFS" effect, paper §5).
    dvfs_syscall_credit_ns: float = 0.0


@dataclass(frozen=True)
class MemoryProfile:
    """Host memory subsystem."""

    #: Single-threaded memcpy bandwidth (bytes/ns).  7.5 GB/s -> 140 us/MiB.
    memcpy_bw: float
    #: Fixed cost of any copy call (function + cache setup).
    memcpy_overhead_ns: float
    #: Cost to pin + map one 4 KiB page at registration time.
    page_pin_ns: float
    page_size: int = 4096


@dataclass(frozen=True)
class NicProfile:
    """ConnectX-like NIC engine parameters."""

    #: Link bandwidth (bytes/ns).
    link_bw: float
    #: Path MTU (bytes).
    mtu: int
    #: Per-packet wire/NIC overhead folded into serialization (headers,
    #: inter-frame gap, per-packet DMA descriptor work).
    per_packet_ns: float
    #: NIC send-engine occupancy per WQE (doorbell decode + WQE fetch + sched).
    wqe_process_ns: float
    #: NIC receive-engine occupancy per message.
    rx_process_ns: float
    #: PCIe DMA read latency (first byte) — WQE/payload fetch from host RAM.
    dma_read_lat_ns: float
    #: PCIe DMA write latency — payload/CQE delivery into host RAM.
    dma_write_lat_ns: float
    #: PCIe payload bandwidth (bytes/ns); x16 Gen3/4 outruns the link here.
    pcie_bw: float
    #: CPU-side MMIO doorbell write (posted, but store-buffer pressure).
    doorbell_ns: float
    #: Max message payload eligible for inline send (data in WQE).
    inline_threshold: int
    #: ACK turnaround at the responder NIC (RC reliability).
    ack_ns: float
    #: Base RC ACK-timeout: an un-acked PSN retransmits after
    #: ``ack_timeout_ns << retries`` (exponential back-off, computed in
    #: integer nanoseconds and clamped to ``max_ack_timeout_ns``).  Timers
    #: are armed only when a fault layer is attached or a bounded switch
    #: buffer can drop — the fabric is lossless otherwise — so this never
    #: perturbs fault-free runs.
    ack_timeout_ns: float = 100_000.0
    #: Ceiling on the backed-off ACK timeout.  Without a clamp retry 7
    #: waits ``128x`` the base timeout (~12.8 ms of dead air per PSN),
    #: which turns a transient congestion drop into a goodput cliff; real
    #: HCAs bound the timeout field to a few binades.  16x base here.
    max_ack_timeout_ns: float = 1_600_000.0
    #: Send queue depth per QP.
    sq_depth: int = 128
    #: Receive queue depth per QP.
    rq_depth: int = 512
    #: UD max payload = MTU (IB spec); RC segments larger messages.
    grh_bytes: int = 40
    #: Interrupt moderation delay before raising a completion IRQ.
    irq_moderation_ns: float = 0.0


@dataclass(frozen=True)
class RxContentionProfile:
    """Receiver-side fabric contention (opt-in; see ``cluster/fabric.py``).

    When attached to a :class:`~repro.cluster.fabric.Fabric`, every host
    gets an RX ingress port — a capacity-1 serial resource mirroring the
    TX side — fed by a switch output queue with ``buffer_bytes`` of
    buffering.  An N→1 incast then drains at one link's bandwidth instead
    of N links' worth, and a bounded buffer tail-drops overflow into the
    RC retransmit machinery.  The default (``None`` buffer) is an
    unbounded, lossless output queue: contention without drops.
    """

    #: Per switch-output-port buffer in bytes; ``None`` = unbounded.
    buffer_bytes: Optional[int] = None


@dataclass(frozen=True)
class CcProfile:
    """End-to-end congestion control (opt-in; DCQCN-style, Zhu et al.
    SIGCOMM'15).

    Three cooperating pieces, all driven by simulated time and named
    seeded RNG streams only:

    - **ECN marking** at the switch output queue (``cluster/fabric.py``):
      a request admitted while ``queued_bytes`` is at or above
      ``kmax_bytes`` is always marked; between ``kmin_bytes`` and
      ``kmax_bytes`` it is marked with probability rising linearly to
      ``pmax`` (WRED), drawn from the fabric's per-port ECN stream.
    - **CNP generation** at the responder NIC (``hw/nic.py``): an
      ECN-marked RC request triggers a congestion-notification packet
      back to the initiator through the normal TX path, throttled to at
      most one CNP per ``cnp_interval_ns`` per (initiator host, QP).
    - **Rate limiting** at the initiator NIC (``hw/congestion.py``): a
      per-QP DCQCN limiter cuts its rate multiplicatively on each CNP
      (``rate *= 1 - alpha/2``), tracks the congestion estimate ``alpha``
      with gain ``g``, and recovers through fast-recovery / additive /
      hyper increase stages on a ``rate_increase_ns`` timer.  WQE fetch
      is paced by a token bucket refilled at the current rate.  An ACK
      timeout is treated as the strongest congestion signal (a dropped
      message can never carry an ECN mark back): the rate drops to the
      floor, RTO-style, so retransmit waves cannot re-overflow the queue
      that dropped them.

    Entirely opt-in: ``SystemProfile.cc`` is ``None`` on the shipped
    profiles and the NIC/fabric hooks cost one branch when disabled, so
    every committed golden stays bit-identical.

    Defaults are tuned for the 16-into-1 incast on System L (100 Gbit/s
    links, 1 MiB switch buffer ≈ sixteen 64 KiB messages): feedback
    granularity is one *message*, not one MTU packet, and the queue-drain
    delay (~83 µs full) dominates the control loop, so recovery is set
    slower and the floor higher than NIC-firmware DCQCN defaults.
    """

    #: WRED low threshold: below this queue depth nothing is marked.
    kmin_bytes: int = 64 * 1024
    #: WRED high threshold: at or above this everything is marked.
    kmax_bytes: int = 320 * 1024
    #: Marking probability as the queue reaches ``kmax_bytes``.
    pmax: float = 0.5
    #: Min spacing between CNPs per (initiator host, QP) at the responder.
    cnp_interval_ns: float = 4_000.0
    #: Min spacing between successive rate cuts on one limiter (DCQCN's
    #: rate-reduce period): a burst of near-simultaneous CNPs/timeouts
    #: counts as one congestion event.
    cut_interval_ns: float = 50_000.0
    #: EWMA gain for the congestion estimate ``alpha`` (DCQCN's ``g``).
    g: float = 1.0 / 16.0
    #: Period of the alpha-decay timer (runs while alpha is elevated).
    alpha_update_ns: float = 20_000.0
    #: Period of the rate-increase timer (runs while rate < line rate).
    rate_increase_ns: float = 100_000.0
    #: Rate-increase rounds spent in fast recovery (halving toward the
    #: pre-cut target) before additive increase begins.
    fast_recovery_rounds: int = 2
    #: Additive increase step applied to the target rate (bytes/ns);
    #: 0.15625 B/ns == 1.25 Gbit/s per round.
    rai_bytes_per_ns: float = 0.15625
    #: Hyper increase step after ``hyper_after_rounds`` additive rounds.
    #: Mostly governs how fast an *uncongested* flow climbs from the
    #: conservative start to line rate — under sustained congestion the
    #: cuts keep resetting the round count below the hyper threshold.
    hai_bytes_per_ns: float = 1.5625
    #: Additive rounds before the increase goes hyper.
    hyper_after_rounds: int = 4
    #: Rate floor as a fraction of line rate (never pace below this).
    #: 0.05 keeps a fully collapsed 16-sender incast at ~80 % link
    #: utilization without overflowing the receiver queue.
    min_rate_fraction: float = 0.05
    #: Starting rate as a fraction of line rate (the RP initial-rate knob
    #: real DCQCN firmware exposes).  Feedback here is one CNP per
    #: *delivered 64 KiB message*, so a line-rate start lets N senders
    #: blast N×window messages into the switch buffer before the first
    #: notification can possibly arrive — the first-RTT drop burst is
    #: decided before the control loop exists.  A conservative start
    #: closes the loop before the buffer fills; the increase timer runs
    #: from creation, so an uncongested flow still climbs to line rate.
    initial_rate_fraction: float = 0.125
    #: Token-bucket burst allowance (bytes); one MTU keeps pacing tight.
    burst_bytes: int = 4096


@dataclass(frozen=True)
class SystemProfile:
    """A complete two-ish-node testbed description."""

    name: str
    cpu: CpuProfile
    memory: MemoryProfile
    nic: NicProfile
    #: One-way wire propagation (back-to-back cable or one switch hop).
    propagation_ns: float
    #: KPTI enabled? (both testbeds in the paper run with it off)
    kpti: bool
    #: Turbo/DVFS active? (off on L, cannot be disabled on A)
    turbo_enabled: bool
    #: Coefficient of variation for syscall/IRQ cost jitter (virtualization).
    syscall_jitter_cv: float
    #: Does the CoRD kernel path support inline sends?  (Not on A, §5.)
    cord_inline_supported: bool
    #: Extra per-dataplane-op kernel cost in CoRD beyond the null syscall:
    #: argument serialization + kernel-driver WQE path (paper §4: ioctl
    #: serialization is the main tax).
    cord_serialize_ns: float = 150.0
    cord_kernel_driver_ns: float = 120.0
    #: Receiver-side fabric contention model.  ``None`` keeps the paper's
    #: two-node semantics (source-port serialization only); clusters built
    #: with >2 hosts enable an unbounded-buffer model by default (see
    #: ``repro.cluster.builder.build_cluster``).
    rx_contention: Optional[RxContentionProfile] = None
    #: End-to-end congestion control (ECN + DCQCN-style rate limiting).
    #: ``None`` on the shipped profiles: the loop is strictly opt-in via
    #: ``build_cluster(..., congestion=...)`` / the ``--congestion`` CLI
    #: flag, so committed goldens and records stay bit-identical.
    cc: Optional[CcProfile] = None

    def syscall_cost(self) -> float:
        """Mean syscall round-trip including KPTI if enabled."""
        return self.cpu.syscall_ns + (self.cpu.kpti_extra_ns if self.kpti else 0.0)

    def cord_op_cost(self) -> float:
        """Mean extra CPU cost CoRD adds to one dataplane op (one side)."""
        return self.syscall_cost() + self.cord_serialize_ns + self.cord_kernel_driver_ns

    def with_overrides(self, **kwargs) -> "SystemProfile":
        """A copy with selected fields replaced (for ablation benches)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# System L: i5-4590 + ConnectX-6 Dx RoCE @ 100 Gbit/s, back-to-back.
# ---------------------------------------------------------------------------

_CPU_L = CpuProfile(
    name="i5-4590",
    cores=4,
    nominal_ghz=3.3,
    turbo_headroom=1.09,  # 3.6/3.3 all-core turbo
    syscall_ns=95.0,
    kpti_extra_ns=240.0,
    context_switch_ns=1_300.0,
    irq_entry_ns=600.0,
    irq_handler_ns=900.0,
    block_ns=350.0,
    post_wqe_ns=150.0,
    poll_hit_ns=90.0,
    poll_miss_ns=35.0,
    loop_overhead_ns=60.0,
    dvfs_syscall_credit_ns=25.0,
)

_MEM_L = MemoryProfile(
    memcpy_bw=gib_per_s(7.0),  # ~7.0 GiB/s -> ~140 us per MiB copied
    memcpy_overhead_ns=120.0,
    page_pin_ns=210.0,
)

_NIC_L = NicProfile(
    link_bw=gbit_per_s(100.0),  # motherboard-limited to 100 Gbit/s
    mtu=4096,
    per_packet_ns=25.0,
    wqe_process_ns=105.0,
    rx_process_ns=160.0,
    dma_read_lat_ns=310.0,
    dma_write_lat_ns=200.0,
    pcie_bw=gib_per_s(24.0),
    doorbell_ns=100.0,
    inline_threshold=220,
    ack_ns=150.0,
)

SYSTEM_L = SystemProfile(
    name="L",
    cpu=_CPU_L,
    memory=_MEM_L,
    nic=_NIC_L,
    propagation_ns=250.0,  # back-to-back DAC + PHY
    kpti=False,
    turbo_enabled=False,  # paper disables Turbo Boost on L
    syscall_jitter_cv=0.0,
    cord_inline_supported=True,
)


# ---------------------------------------------------------------------------
# System A: Azure HB120 (EPYC 7V73X) + virtualized ConnectX-6 IB @ 200 Gbit/s.
# ---------------------------------------------------------------------------

_CPU_A = CpuProfile(
    name="EPYC-7V73X",
    cores=120,
    nominal_ghz=3.0,
    turbo_headroom=1.12,
    syscall_ns=180.0,  # virtualized: pricier and noisy
    kpti_extra_ns=260.0,
    context_switch_ns=2_000.0,
    irq_entry_ns=1_500.0,  # virtual interrupt injection
    irq_handler_ns=1_200.0,
    block_ns=450.0,
    post_wqe_ns=80.0,
    poll_hit_ns=70.0,
    poll_miss_ns=28.0,
    loop_overhead_ns=50.0,
    dvfs_syscall_credit_ns=35.0,
)

_MEM_A = MemoryProfile(
    memcpy_bw=gib_per_s(11.0),
    memcpy_overhead_ns=90.0,
    page_pin_ns=450.0,  # hypervisor-mediated pinning
)

_NIC_A = NicProfile(
    link_bw=gbit_per_s(200.0),
    mtu=4096,
    per_packet_ns=18.0,
    wqe_process_ns=90.0,
    rx_process_ns=140.0,
    dma_read_lat_ns=420.0,  # SR-IOV / longer PCIe path
    dma_write_lat_ns=260.0,
    pcie_bw=gib_per_s(40.0),
    doorbell_ns=110.0,
    inline_threshold=1024,  # extended inline segments on the virtualized path
    ack_ns=130.0,
)

SYSTEM_A = SystemProfile(
    name="A",
    cpu=_CPU_A,
    memory=_MEM_A,
    nic=_NIC_A,
    propagation_ns=600.0,  # one switch hop in the cloud fabric
    kpti=False,  # hardware Meltdown mitigation; KPTI disabled
    turbo_enabled=True,  # provider policy: DVFS cannot be disabled
    syscall_jitter_cv=0.35,
    cord_inline_supported=False,  # prototype lacks inline there (fig. 5a)
    cord_serialize_ns=260.0,
    cord_kernel_driver_ns=180.0,
)


#: Registry for CLI/benchmark lookup by name.
PROFILES: dict[str, SystemProfile] = {"L": SYSTEM_L, "A": SYSTEM_A}


def get_profile(name: str) -> SystemProfile:
    """Look up a profile by name, raising a helpful error otherwise."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown system profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
