"""PCIe bus between a host's memory and its NIC.

Models DMA transfers as latency + bandwidth occupancy on a shared bus
resource (a single NIC saturating the link never saturates x16 PCIe here,
but contention between simultaneous DMA streams is still serialized at the
configured bandwidth, which caps aggregate throughput realistically).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import HardwareError
from repro.hw.profiles import NicProfile
from repro.sim.events import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class PcieBus:
    """DMA timing for one host<->NIC PCIe connection."""

    def __init__(self, sim: "Simulator", profile: NicProfile, name: str = "pcie"):
        self.sim = sim
        self.profile = profile
        self.name = name
        # One transaction stream; concurrent DMAs queue (bandwidth sharing
        # approximated by serialization at full bandwidth).
        self.res = Resource(sim, capacity=1, name=name)
        self.bytes_read = 0
        self.bytes_written = 0

    def _occupancy(self, nbytes: int) -> float:
        return nbytes / self.profile.pcie_bw if nbytes > 0 else 0.0

    def dma_read(self, nbytes: int) -> Generator[Event, object, None]:
        """NIC reads ``nbytes`` from host memory (payload/WQE fetch)."""
        if nbytes < 0:
            raise HardwareError(f"negative DMA size: {nbytes}")
        req = self.res.request()
        yield req
        try:
            yield self.profile.dma_read_lat_ns + self._occupancy(nbytes)
            self.bytes_read += nbytes
        finally:
            self.res.release(req)

    def dma_write(self, nbytes: int) -> Generator[Event, object, None]:
        """NIC writes ``nbytes`` into host memory (payload/CQE delivery)."""
        if nbytes < 0:
            raise HardwareError(f"negative DMA size: {nbytes}")
        req = self.res.request()
        yield req
        try:
            yield self.profile.dma_write_lat_ns + self._occupancy(nbytes)
            self.bytes_written += nbytes
        finally:
            self.res.release(req)
