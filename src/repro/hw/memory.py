"""Host memory: address spaces, buffers, copy-cost model.

Applications in the simulation own an :class:`AddressSpace` (a per-process
virtual address space with a bump allocator).  Buffers are address ranges;
payload *contents* are optional — performance experiments move sizes, while
correctness tests attach real ``bytes``/ndarray payloads and check delivery.

The NIC accesses application memory by virtual address (paper §4: the NIC
translates; the kernel is off the critical path), so DMA in the simulation
is a range check against the owning address space plus timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MemoryAccessError
from repro.hw.profiles import MemoryProfile


@dataclass
class Buffer:
    """A contiguous range of virtual memory owned by one address space."""

    space: "AddressSpace"
    addr: int
    length: int
    #: Optional real payload for correctness tests (None for size-only runs).
    data: Optional[bytearray] = None

    def check_range(self, addr: int, length: int) -> None:
        if addr < self.addr or addr + length > self.addr + self.length:
            raise MemoryAccessError(
                f"range [{addr:#x}, {addr + length:#x}) outside buffer "
                f"[{self.addr:#x}, {self.addr + self.length:#x})"
            )

    def write(self, offset: int, payload: bytes) -> None:
        """Store real bytes (allocating backing storage lazily)."""
        if offset < 0 or offset + len(payload) > self.length:
            raise MemoryAccessError(
                f"write of {len(payload)} B at offset {offset} exceeds buffer"
            )
        if self.data is None:
            self.data = bytearray(self.length)
        self.data[offset : offset + len(payload)] = payload

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.length:
            raise MemoryAccessError(
                f"read of {length} B at offset {offset} exceeds buffer"
            )
        if self.data is None:
            return bytes(length)
        return bytes(self.data[offset : offset + length])


class AddressSpace:
    """Per-process virtual memory with a bump allocator.

    Addresses are synthetic but unique within the space, which is all the
    verbs layer needs for MR bounds checking and rkey validation.
    """

    _BASE = 0x10_0000_0000

    def __init__(self, name: str = "as"):
        self.name = name
        self._next = self._BASE
        self._buffers: list[Buffer] = []

    def alloc(self, length: int, align: int = 4096) -> Buffer:
        """Allocate a buffer of ``length`` bytes."""
        if length <= 0:
            raise MemoryAccessError(f"allocation size must be positive: {length}")
        addr = (self._next + align - 1) // align * align
        self._next = addr + length
        buf = Buffer(self, addr, length)
        self._buffers.append(buf)
        return buf

    def find(self, addr: int, length: int) -> Buffer:
        """The buffer containing [addr, addr+length), or raise."""
        for buf in self._buffers:
            if buf.addr <= addr and addr + length <= buf.addr + buf.length:
                return buf
        raise MemoryAccessError(
            f"[{addr:#x}, {addr + length:#x}) not mapped in {self.name}"
        )

    def __contains__(self, addr: int) -> bool:
        return any(b.addr <= addr < b.addr + b.length for b in self._buffers)


class MemoryModel:
    """Copy/pin timing derived from a :class:`MemoryProfile`."""

    def __init__(self, profile: MemoryProfile):
        self.profile = profile

    def copy_ns(self, nbytes: int) -> float:
        """CPU time for one memcpy of ``nbytes``."""
        if nbytes < 0:
            raise MemoryAccessError(f"negative copy size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.profile.memcpy_overhead_ns + nbytes / self.profile.memcpy_bw

    def pin_ns(self, nbytes: int) -> float:
        """CPU time to pin the pages backing ``nbytes`` (MR registration)."""
        pages = (nbytes + self.profile.page_size - 1) // self.profile.page_size
        return max(pages, 1) * self.profile.page_pin_ns


# Re-exported alias used by the verbs layer; an MR wraps a Buffer slice.
MemoryRegion = Buffer
