"""ConnectX-like NIC engine.

The NIC consumes doorbelled work-queue entries, moves payloads by DMA,
transmits messages on the fabric, enforces RC reliability (PSN ordering,
ACK/NAK, RNR retry) and delivers completions.  All *CPU* costs (building the
WQE, the doorbell write, syscalls in CoRD) are charged by the dataplane
layer before :meth:`Nic.hw_post_send` is reached — the NIC only models
device time, so bypass and CoRD share exactly the same NIC behaviour, as in
the paper ("the drivers ... are largely equivalent", §3).

Timing model (cut-through):

- send engine: ``wqe_process_ns`` occupancy per WQE (message-rate cap),
  then a WQE/payload-fetch pipeline-fill latency (skipped for inline),
  then wire serialization on the fabric (bandwidth cap).
- receive engine: ``rx_process_ns`` occupancy per message, payload DMA
  pipeline-fill latency, CQE DMA write, optional interrupt.
- RC: responder ACKs each message; the initiator completes on ACK.
  Out-of-PSN-order arrivals are held in the QP reorder buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.errors import HardwareError, MemoryAccessError, VerbsError
from repro.hw.congestion import DcqcnLimiter
from repro.hw.profiles import NicProfile
from repro.sim.store import Store
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import CQE, Opcode, Psn, RecvWR, SendWR, WCStatus, WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.verbs.mr import MrTable

#: Wire header size charged per message (BTH + transport headers).
HEADER_BYTES = 48

#: Wire-message kind per send opcode (hoisted off the per-message TX path).
_OPCODE_KIND = {
    Opcode.SEND: "send",
    Opcode.SEND_WITH_IMM: "send",
    Opcode.RDMA_WRITE: "write",
    Opcode.RDMA_WRITE_WITH_IMM: "write",
    Opcode.RDMA_READ: "read_req",
    Opcode.ATOMIC_FETCH_ADD: "atomic",
    Opcode.ATOMIC_CMP_SWAP: "atomic",
}
#: RNR NAK retry back-off at the initiator.
RNR_DELAY_NS = 12_000.0
#: Fraction of rx engine occupancy an ACK costs relative to a data message.
ACK_RX_FRACTION = 0.25


class NicCounters:
    """Observable NIC statistics (also feed the observability policy)."""

    def __init__(self) -> None:
        self.tx_msgs = 0
        self.tx_bytes = 0
        self.rx_msgs = 0
        self.rx_bytes = 0
        self.acks_sent = 0
        self.rnr_naks_sent = 0
        self.ud_drops = 0
        self.remote_access_errors = 0
        self.retries = 0
        self.ack_timeouts = 0
        self.retransmits = 0
        self.retry_exc_errs = 0
        #: Congestion-notification packets (CC enabled only; see
        #: ``hw/congestion.py``): sent as responder, received as initiator.
        self.cnps_sent = 0
        self.cnps_received = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class Nic:
    """One host's RDMA NIC."""

    def __init__(self, sim: "Simulator", profile: NicProfile, host_id: int, name: str = ""):
        self.sim = sim
        self.profile = profile
        self.host_id = host_id
        self.name = name or f"nic{host_id}"
        self.counters = NicCounters()

        self._qps: dict[int, QueuePair] = {}
        self._qpn_seq = 0x40
        self._tx_store: Store = Store(sim, name=f"{self.name}.txq")
        self._rx_store: Store = Store(sim, name=f"{self.name}.rxq")
        # Precomputed process/event names: these are spawned per message, and
        # per-message f-strings showed up in profiles.
        self._tx_msg_name = f"{self.name}.tx.msg"
        self._rx_msg_name = f"{self.name}.rx.msg"
        self._ex_send_name = f"{self.name}.ex.send"
        self._ex_write_name = f"{self.name}.ex.write"
        self._ex_read_name = f"{self.name}.ex.read"
        self._ex_atomic_name = f"{self.name}.ex.atomic"
        self._retry_name = f"{self.name}.retry"
        self._memwatch_name = f"{self.name}.memwatch"
        self._cnp_name = f"{self.name}.cnp"
        self._fabric = None  # set by attach()
        #: Congestion-control profile, taken from the fabric at attach();
        #: None costs one branch on the TX and RX paths.
        self.cc = None
        #: Initiator-side DCQCN limiters, one per RC QP, created lazily.
        self._limiters: dict[int, DcqcnLimiter] = {}
        #: Responder-side CNP throttle: (initiator host, qpn) -> last CNP
        #: emission time (at most one CNP per ``cnp_interval_ns`` each).
        self._last_cnp_ns: dict[tuple[int, int], float] = {}
        self.mr_table: Optional["MrTable"] = None  # set by attach()
        #: Telemetry scope (matches Host.name).
        self._scope = f"host{host_id}"
        self._started = False
        self._mem_watchers: list[tuple[int, int, object]] = []
        #: Set by the IPoIB device: receives kind == "ip" wire messages.
        self.ip_handler: Optional[Callable[[WireMessage], None]] = None
        sim.register_state_provider(self._queue_depth_state)

    def _queue_depth_state(self) -> tuple:
        """Queue-depth fingerprint for steady-state cycle probes.

        Every *level* (never a monotone counter — those cannot recur) in
        the device that shapes future timing: the tx/rx engine backlogs
        and each QP's in-flight occupancy.  Without these, consecutive
        boundaries while the tx engine drains a doorbelled burst are
        indistinguishable — the backlog is object state, not a pending
        event, so neither the step signature nor the queue signature sees
        it — and a fast-forward probe can prove a period-1 schedule inside
        the quiet stretch between bursts, then jump over bursts whose
        cycles are longer (observed as a per-jump time deficit in
        ``send_bw``).  With the backlog in the component state, boundaries
        at different drain depths hash differently and only the true
        burst super-period can recur.

        CQ depths are deliberately absent: push and poll cost the same at
        any depth, so entries parked in an unreaped CQ (``send_lat``
        never reaps its send CQ) carry no timing influence — and their
        monotone growth would keep any signature from ever recurring.
        """
        return (
            len(self._tx_store.items),
            len(self._rx_store.items),
            tuple(
                (qpn, qp.sq_outstanding, len(qp.rq), len(qp.outstanding),
                 len(qp.reorder), len(qp.retx_retries))
                for qpn, qp in sorted(self._qps.items())
            ),
        )

    # -- wiring -----------------------------------------------------------------

    def attach(self, fabric, mr_table: "MrTable") -> None:
        """Connect to the fabric and this host's MR table; start engines."""
        self._fabric = fabric
        self.mr_table = mr_table
        cc = getattr(fabric, "cc", None)
        if cc is not None and self.cc is None:
            self.cc = cc
            # Registered only when CC is on: a CC-off run's fast-forward
            # signatures and time-shift hooks stay exactly as before.
            self.sim.register_state_provider(self._cc_state)
            self.sim.on_time_shift(self._cc_shift_time)
        if not self._started:
            self.sim.process(self._tx_engine(), name=f"{self.name}.tx")
            self.sim.process(self._rx_engine(), name=f"{self.name}.rx")
            self._started = True

    def _cc_state(self) -> tuple:
        """Congestion-control levels for fast-forward cycle signatures:
        every limiter's rate machine plus the CNP throttle ages (reported
        relative to now so the fingerprint can recur, clamped to the
        throttle interval beyond which all ages act alike)."""
        now = self.sim.now
        interval = self.cc.cnp_interval_ns if self.cc is not None else 0.0
        return (
            tuple((qpn, lim.state())
                  for qpn, lim in sorted(self._limiters.items())),
            tuple((key, min(now - t, interval))
                  for key, t in sorted(self._last_cnp_ns.items())),
        )

    def _cc_shift_time(self, shift: float) -> None:
        for key in self._last_cnp_ns:
            self._last_cnp_ns[key] += shift

    def deliver(self, msg: WireMessage) -> None:
        """Fabric drops an arriving message into the receive pipeline."""
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "rx_arrive",
                       host=self.host_id, kind=msg.kind, psn=msg.psn,
                       src_host=msg.src_host, size=msg.length)
            if msg.span is not None:
                trace.emit(self.sim.now, "span", "mark", span=msg.span,
                           stage="rx_arrive", host=self.host_id, comp="nic.rx")
        tele = self.sim.telemetry
        if tele.enabled:
            reg = tele.scope(self._scope)
            reg.histogram("nic.rxq.occupancy").observe(len(self._rx_store.items))
            reg.counter("nic.rx.delivered").inc(msg.wire_bytes, key=msg.kind)
        self._rx_store.put(msg)

    def next_qpn(self) -> int:
        self._qpn_seq += 1
        return self._qpn_seq

    def register_qp(self, qp: QueuePair) -> None:
        self._qps[qp.qpn] = qp
        mon = self.sim._monitor
        if mon is not None:
            # Wire the QP's own hook (modify() has no sim reference) and
            # let the monitor learn the (host, qpn, cq) identity mapping.
            qp._monitor = mon
            mon.register_qp(self.host_id, qp)

    def lookup_qp(self, qpn: int) -> Optional[QueuePair]:
        return self._qps.get(qpn)

    # -- dataplane entry points (CPU costs already paid by the dataplane) ---------

    def hw_post_send(self, qp: QueuePair, wr: SendWR) -> None:
        """Accept a doorbelled send WQE into the device."""
        qp.check_post_send(wr)
        if qp.transport is Transport.UD and wr.length > self.profile.mtu:
            raise VerbsError(
                f"UD message of {wr.length} B exceeds MTU {self.profile.mtu}"
            )
        # Local protection check at post time (as the real NIC would fail
        # the WQE; we surface it synchronously for debuggability).
        if wr.opcode.reads_local_memory and not wr.inline and wr.length > 0:
            assert self.mr_table is not None
            self.mr_table.check_local(wr.lkey, wr.addr, wr.length, write=False)
        if wr.opcode is Opcode.RDMA_READ or wr.opcode.is_atomic:
            # The fetched / original value is DMA-written locally.
            assert self.mr_table is not None
            self.mr_table.check_local(wr.lkey, wr.addr, wr.length, write=True)
        psn = qp.assign_psn() if qp.transport is Transport.RC else 0
        qp.sq_outstanding += 1
        qp.sends_posted += 1
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "doorbell",
                       host=self.host_id, qpn=qp.qpn, wr_id=wr.wr_id,
                       opcode=wr.opcode.value, psn=psn, size=wr.length)
            if wr.span is not None:
                trace.emit(self.sim.now, "span", "mark", span=wr.span,
                           stage="doorbell", host=self.host_id, comp="nic.tx")
        tele = self.sim.telemetry
        if tele.enabled:
            reg = tele.scope(self._scope)
            reg.counter("nic.tx.posted").inc(wr.length, key=wr.opcode.value)
            reg.histogram("nic.txq.occupancy").observe(len(self._tx_store.items))
        mon = self.sim._monitor
        if mon is not None:
            mon.on_post_send(qp, wr, psn)
        self._tx_store.put((qp, wr, psn, 0))

    def hw_post_recv(self, qp: QueuePair, wr: RecvWR) -> None:
        """Accept a recv WQE into the device-visible receive queue."""
        qp.check_post_recv(wr)
        if wr.length > 0:
            assert self.mr_table is not None
            self.mr_table.check_local(wr.lkey, wr.addr, wr.length, write=True)
        qp.rq.append(wr)
        qp.recvs_posted += 1
        mon = self.sim._monitor
        if mon is not None:
            mon.on_post_recv(qp, wr)

    def hw_post_srq_recv(self, srq, wr: RecvWR) -> None:
        """Accept a recv WQE into a shared receive queue."""
        srq.check_post(wr)
        if wr.length > 0:
            assert self.mr_table is not None
            self.mr_table.check_local(wr.lkey, wr.addr, wr.length, write=True)
        srq.push(wr)
        mon = self.sim._monitor
        if mon is not None:
            mon.on_post_srq_recv(srq, wr)

    # -- send path ---------------------------------------------------------------

    def _tx_engine(self) -> Generator["Event", object, None]:
        """Serial WQE-scheduling engine: caps the message rate.

        Retransmissions re-enter here with ``retries > 0``: a retry pays
        the same WQE-processing occupancy and pipeline fill as any other
        WQE, and is traced like one, so retried ops stay visible to
        telemetry span telescoping and the message-rate cap.

        With congestion control on, WQE fetch is paced here by the QP's
        DCQCN token bucket — in-engine, so pacing also holds back the
        message-rate pipeline exactly as a rate-limited QP scheduler slot
        would (one engine per NIC: a heavily cut QP delays its host's
        other QPs too, the single-scheduler approximation).
        """
        while True:
            item = yield self._tx_store.get()
            qp, wr, psn, retries = item  # type: ignore[misc]
            if self.cc is not None and qp.transport is Transport.RC:
                # A retry already cancelled (ACK won the race, or the QP
                # died) is about to be discarded by ``_initiate`` — it
                # must not charge the token bucket: a late-ACK timeout
                # storm would silently burn a full message of budget per
                # cancelled retry, starving real traffic of exactly the
                # capacity congestion control is trying to protect.
                moot = retries and (qp.state is not QPState.RTS
                                    or qp.outstanding.get(psn) is not wr)
                if not moot:
                    delay = self._limiter(qp).pace(
                        self.sim.now, wr.length + HEADER_BYTES
                    )
                    if delay > 0.0:
                        trace = self.sim.trace
                        if trace.enabled and wr.span is not None:
                            trace.emit(self.sim.now, "span", "mark",
                                       span=wr.span, stage="cc_pace",
                                       host=self.host_id, comp="nic.tx")
                        yield delay
            yield self.profile.wqe_process_ns
            # Pipeline the rest so the engine can schedule the next WQE
            # while this message is still fetching payload / on the wire.
            self.sim.spawn(self._initiate(qp, wr, psn, retries),
                           name=self._tx_msg_name)

    def _initiate(
        self, qp: QueuePair, wr: SendWR, psn: int, retries: int = 0
    ) -> Generator["Event", object, None]:
        """Move one message from local memory onto the wire."""
        if retries:
            # This PSN's queued retry is now being serviced (whether or
            # not it still transmits): a later timeout/NAK may queue a new
            # one.  Must happen before any early return below.
            qp.retx_pending.discard(psn)
        if qp.state is not QPState.RTS:
            if retries:
                return  # flushed while the retry sat in the TX queue
            # First transmission of a WQE fetched after the QP left RTS:
            # the WR was posted (and counted) before the transition, so
            # the error flush already zeroed sq_outstanding but could not
            # see this entry — it was still in the shared TX store, not in
            # ``outstanding``.  Transmitting now would resurrect it on an
            # errored QP (double completion, negative occupancy); instead
            # it is flushed through the CQ like the rest of the SQ (ERROR)
            # or silently reclaimed (RESET), exactly as hardware fetching
            # a WQE on a dead QP would.  Found by `repro verify explore`.
            if qp.state is QPState.ERROR:
                yield from self._post_cqe(
                    qp.send_cq,
                    CQE(wr_id=wr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                        opcode=wr.opcode, byte_len=0, qp_num=qp.qpn,
                        span=wr.span),
                )
            return
        if retries and qp.outstanding.get(psn) is not wr:
            return  # acked while the retry sat in the TX queue
        if retries:
            # Counted here — at actual (re)transmission — not at queue
            # time: a retry cancelled by an ACK that raced it through the
            # TX queue never hits the wire and must not inflate the
            # counter (``retransmits`` matches real duplicate traffic).
            if self.cc is not None:
                # A surviving retransmission means real loss — the one
                # congestion signal ECN cannot deliver (a dropped message
                # never reaches the marking queue's far end).  Cut here,
                # past the ACK-race cancellation above: a timeout whose
                # ACK was merely late must not floor the rate.
                self._limiter(qp).on_timeout(self.sim.now)
            self.counters.retransmits += 1
            tele = self.sim.telemetry
            if tele.enabled:
                tele.scope(self._scope).counter("nic.rc.retransmits").inc(
                    key=wr.opcode.value
                )
        trace = self.sim.trace
        if trace.enabled and wr.span is not None:
            trace.emit(self.sim.now, "span", "mark", span=wr.span,
                       stage="wqe_fetch", host=self.host_id, comp="nic.tx")
        # Pipeline-fill: WQE fetch unless the CPU wrote it inline with
        # the doorbell (BlueFlame-style), then payload first-burst fetch.
        # Retries pay this again — the device re-fetches state just the same.
        fill = 0.0
        if not wr.inline:
            fill += self.profile.dma_read_lat_ns
        if wr.opcode.reads_local_memory and not wr.inline and wr.length > 0:
            fill += self.profile.dma_read_lat_ns
        if fill:
            yield fill

        dst_host, dst_qpn = qp.destination_for(wr)
        data = wr.data
        if data is None and wr.opcode.reads_local_memory and wr.length > 0:
            # Materialize real bytes only if the source buffer holds some.
            assert self.mr_table is not None
            try:
                mr = self.mr_table.check_local(wr.lkey, wr.addr, wr.length, write=False)
                if mr.buffer.data is not None:
                    data = mr.buffer.read(wr.addr - mr.buffer.addr, wr.length)
            except MemoryAccessError:
                if not wr.inline:
                    raise
        kind = _OPCODE_KIND[wr.opcode]
        header = HEADER_BYTES + (
            self.profile.grh_bytes if qp.transport is Transport.UD else 0
        )
        msg = WireMessage(
            kind=kind,
            src_host=self.host_id,
            dst_host=dst_host,
            src_qpn=qp.qpn,
            dst_qpn=dst_qpn,
            transport=qp.transport.value,
            psn=psn,
            length=wr.length if kind != "read_req" else wr.length,
            imm=wr.imm,
            remote_addr=wr.remote_addr,
            rkey=wr.rkey,
            data=data if kind not in ("read_req", "atomic") else None,
            token=(qp.qpn, psn),
            meta=wr.meta,
            atomic=(wr.opcode, wr.compare_add, wr.swap) if kind == "atomic" else None,
            header_bytes=header,
            retries=retries,
            span=wr.span,
        )
        if qp.transport is Transport.RC:
            qp.outstanding[psn] = wr

        wire_payload = msg.wire_bytes if kind != "read_req" else msg.header_bytes
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "tx_start",
                       host=self.host_id, qpn=qp.qpn, wr_id=wr.wr_id,
                       psn=psn, wire_bytes=wire_payload)
            if wr.span is not None:
                trace.emit(self.sim.now, "span", "mark", span=wr.span,
                           stage="tx_wire", host=self.host_id, comp="wire")
        assert self._fabric is not None
        yield from self._fabric.transmit(self.host_id, dst_host, wire_payload, msg)
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "tx_done",
                       host=self.host_id, qpn=qp.qpn, wr_id=wr.wr_id, psn=psn)
            if wr.span is not None:
                trace.emit(self.sim.now, "span", "mark", span=wr.span,
                           stage="tx_done", host=self.host_id, comp="wire")
        self.counters.tx_msgs += 1
        self.counters.tx_bytes += wire_payload
        qp.bytes_sent += wr.length

        if (qp.transport is Transport.RC
                and getattr(self._fabric, "lossy", False)):
            # The fabric is lossless unless a fault layer is attached or a
            # bounded switch buffer can tail-drop, so ACK-timeout timers
            # are armed only then: loss-free runs see no extra heap events
            # and stay bit-identical.
            self._arm_ack_timer(qp, psn, retries)

        if qp.transport is Transport.UD:
            # UD is unacknowledged: the send completes once it is on the wire.
            qp.sq_outstanding -= 1
            if wr.signaled:
                yield from self._post_cqe(
                    qp.send_cq,
                    CQE(wr_id=wr.wr_id, status=WCStatus.SUCCESS, opcode=wr.opcode,
                        byte_len=wr.length, qp_num=qp.qpn, span=wr.span),
                )

    # -- receive path -----------------------------------------------------------------

    def _rx_engine(self) -> Generator["Event", object, None]:
        while True:
            msg = yield self._rx_store.get()
            assert isinstance(msg, WireMessage)
            occupancy = self.profile.rx_process_ns
            if msg.kind in ("ack", "nak_rnr", "cnp"):
                occupancy *= ACK_RX_FRACTION
            yield occupancy
            self.sim.spawn(self._dispatch(msg), name=self._rx_msg_name)

    def _dispatch(self, msg: WireMessage) -> Generator["Event", object, None]:
        if msg.kind == "ip":
            # Socket path: hand off to the kernel's IPoIB device.
            if self.ip_handler is not None:
                self.ip_handler(msg)
            return
        if msg.kind == "cnp":
            self._handle_cnp(msg)
            return
        if msg.kind in ("ack", "nak_rnr"):
            yield from self._handle_response(msg)
            return
        if msg.kind in ("read_resp", "atomic_resp"):
            yield from self._handle_read_resp(msg)
            return

        qp = self._qps.get(msg.dst_qpn)
        if qp is None or qp.state in (QPState.RESET, QPState.ERROR, QPState.INIT):
            # No such QP: RC would NAK; we count and drop (benchmarks never
            # hit this; tests assert the counter).
            self.counters.remote_access_errors += 1
            return

        if msg.ecn and self.cc is not None and msg.transport == "RC":
            # ECN-marked request: notify the initiator (responder half of
            # the DCQCN loop).  Evaluated before PSN ordering on purpose —
            # a reordered or duplicate arrival still crossed the congested
            # queue and still carries a valid congestion signal.
            self._note_ecn(msg)

        if msg.transport == "RC":
            yield from self._rx_rc(qp, msg)
            mon = self.sim._monitor
            if mon is not None:
                mon.on_responder_update(qp)
        else:
            self._accept(qp, msg)

    def _rx_rc(
        self, qp: QueuePair, msg: WireMessage
    ) -> Generator["Event", object, None]:
        """RC responder: enforce per-QP PSN acceptance order.

        All PSN comparisons are 24-bit serial arithmetic (:class:`Psn`):
        "ahead" means the forward distance from ``expected_psn`` is below
        half the space, anything else is a duplicate — so the ordering
        logic survives the wrap point a raw ``<``/``>`` would not.
        """
        order = Psn.cmp(msg.psn, qp.expected_psn)
        if order > 0:
            qp.reorder[msg.psn] = msg
            return
        if order < 0:
            # Duplicate (retry of a message whose response was lost);
            # answer again without re-executing side effects.
            if msg.kind in ("send", "write"):
                yield from self._send_ack(qp, msg, "ack")
            elif msg.kind == "read_req":
                # Reads are idempotent: just serve the data again.
                self.sim.spawn(self._exec_read_req(qp, msg),
                               name=self._ex_read_name)
            elif msg.kind == "atomic":
                self._replay_atomic(qp, msg)
            return
        if not self._accept(qp, msg):
            # RNR-NAKed: the PSN stays expected; the retry will redeliver.
            return
        self._advance_expected_psn(qp)
        while qp.expected_psn in qp.reorder:
            held = qp.reorder.pop(qp.expected_psn)
            if not self._accept(qp, held):
                # Put it back; the initiator will retransmit this PSN.
                qp.reorder[qp.expected_psn] = held
                return
            self._advance_expected_psn(qp)

    def _advance_expected_psn(self, qp: QueuePair) -> None:
        """Commit acceptance of the current expected PSN (24-bit wrap).

        The one place the responder's ``expected_psn`` moves; it only ever
        moves forward by one (PROTO102 asserts exactly this at runtime).
        """
        qp.expected_psn = Psn.next(qp.expected_psn)

    def _replay_atomic(self, qp: QueuePair, msg: WireMessage) -> None:
        """Answer a duplicate atomic from the replay cache — never re-execute.

        Atomics are not idempotent, so the RMW ran exactly once, at first
        acceptance; a retransmission whose response was lost gets the
        *cached original value* back (PROTO106).  A duplicate of a PSN
        already evicted from the 64-deep cache gets **no reply at all**:
        the initiator keeps retrying into RETRY_EXC_ERR rather than ever
        seeing a re-executed (wrong) value — correctness over liveness,
        matching real HCAs' bounded resources (IBTA C9-150: the responder
        is only required to replay what its resources still hold).
        """
        cached = qp.atomic_cache.get(msg.psn)
        if cached is not None:
            self.sim.spawn(self._exec_atomic_resp(qp, msg, cached),
                           name=self._ex_atomic_name)

    def _accept(self, qp: QueuePair, msg: WireMessage) -> bool:
        """Synchronous in-order acceptance of a request at the responder:
        claims queue entries and validates keys, then spawns the timed
        execution (DMA + CQE + ACK) concurrently so back-to-back messages
        pipeline as on real hardware.  Returns False when RNR-NAKed."""
        if msg.kind == "send":
            rwr = self._claim_recv_wqe(qp)
            if rwr is None:
                if msg.transport == "RC":
                    qp.rnr_naks += 1
                    self.counters.rnr_naks_sent += 1
                    self.sim.spawn(self._send_ack(qp, msg, "nak_rnr"))
                else:
                    self.counters.ud_drops += 1
                return False
            self.sim.spawn(self._exec_send(qp, msg, rwr), name=self._ex_send_name)
            return True

        if msg.kind == "write":
            assert self.mr_table is not None
            mr = self.mr_table.check_remote(
                msg.rkey, msg.remote_addr, msg.length, write=True
            )
            if mr is None:
                self.counters.remote_access_errors += 1
                self.sim.spawn(
                    self._send_ack(qp, msg, "ack", status=WCStatus.REM_ACCESS_ERR)
                )
                return True
            rwr = None
            if msg.imm is not None:
                # WRITE_WITH_IMM consumes a recv WQE.
                rwr = self._claim_recv_wqe(qp)
                if rwr is None:
                    qp.rnr_naks += 1
                    self.counters.rnr_naks_sent += 1
                    self.sim.spawn(self._send_ack(qp, msg, "nak_rnr"))
                    return False
            self.sim.spawn(self._exec_write(qp, msg, mr, rwr), name=self._ex_write_name)
            return True

        if msg.kind == "read_req":
            self.sim.spawn(self._exec_read_req(qp, msg), name=self._ex_read_name)
            return True

        if msg.kind == "atomic":
            # The read-modify-write happens *now*, synchronously, in PSN
            # acceptance order — that is what makes it atomic across
            # concurrent initiators.  Only the response timing is async.
            assert self.mr_table is not None
            mr = self.mr_table.check_remote(msg.rkey, msg.remote_addr, 8, write=True)
            if mr is None:
                self.counters.remote_access_errors += 1
                self.sim.spawn(
                    self._send_ack(qp, msg, "ack", status=WCStatus.REM_ACCESS_ERR)
                )
                return True
            offset = msg.remote_addr - mr.buffer.addr
            original = int.from_bytes(mr.buffer.read(offset, 8), "little")
            opcode, compare_add, swap = msg.atomic  # type: ignore[misc]
            if opcode is Opcode.ATOMIC_FETCH_ADD:
                newval = (original + compare_add) & (2**64 - 1)
            else:  # CMP_SWAP
                newval = swap if original == compare_add else original
            mr.buffer.write(offset, newval.to_bytes(8, "little"))
            # Replay cache so a duplicate (lost-response retry) of this PSN
            # returns the same original value instead of re-executing.
            qp.atomic_cache[msg.psn] = original
            if len(qp.atomic_cache) > 64:
                qp.atomic_cache.pop(next(iter(qp.atomic_cache)))
            self._notify_memory_watchers(msg.remote_addr, 8)
            self.counters.rx_msgs += 1
            self.counters.rx_bytes += msg.wire_bytes
            self.sim.spawn(
                self._exec_atomic_resp(qp, msg, original), name=self._ex_atomic_name
            )
            return True

        raise HardwareError(f"unknown message kind {msg.kind!r}")  # pragma: no cover

    def _claim_recv_wqe(self, qp: QueuePair):
        """Take the next recv WQE: from the QP's SRQ if it has one."""
        faults = getattr(self._fabric, "faults", None)
        if faults is not None and faults.recv_paused(self.host_id, self.sim.now):
            # Receiver-pause fault: pretend the RQ is empty so RC senders
            # hit the RNR path (and UD traffic is dropped).
            return None
        if qp.srq is not None:
            return qp.srq.pop() if len(qp.srq) else None
        return qp.rq.popleft() if qp.rq else None

    def _exec_send(
        self, qp: QueuePair, msg: WireMessage, rwr: RecvWR
    ) -> Generator["Event", object, None]:
        trace = self.sim.trace
        if trace.enabled and msg.span is not None:
            trace.emit(self.sim.now, "span", "mark", span=msg.span,
                       stage="rx_exec", host=self.host_id, comp="nic.rx")
        status = WCStatus.SUCCESS
        if msg.length > rwr.length:
            status = WCStatus.LOC_LEN_ERR
        elif msg.length > 0:
            # Payload DMA pipeline-fill; bandwidth already paid on the wire.
            yield self.profile.dma_write_lat_ns
            if msg.data is not None:
                assert self.mr_table is not None
                mr = self.mr_table.check_local(rwr.lkey, rwr.addr, msg.length, write=True)
                mr.buffer.write(rwr.addr - mr.buffer.addr, msg.data)
                self._notify_memory_watchers(rwr.addr, msg.length)
        self.counters.rx_msgs += 1
        self.counters.rx_bytes += msg.wire_bytes
        yield from self._post_cqe(
            qp.recv_cq,
            CQE(wr_id=rwr.wr_id, status=status, opcode=Opcode.SEND,
                byte_len=msg.length, qp_num=qp.qpn, src_qp=msg.src_qpn,
                imm=msg.imm, data=msg.data, meta=msg.meta, span=msg.span),
        )
        if msg.transport == "RC":
            yield from self._send_ack(qp, msg, "ack")

    def _exec_write(
        self, qp: QueuePair, msg: WireMessage, mr, rwr: Optional[RecvWR]
    ) -> Generator["Event", object, None]:
        trace = self.sim.trace
        if trace.enabled and msg.span is not None:
            trace.emit(self.sim.now, "span", "mark", span=msg.span,
                       stage="rx_exec", host=self.host_id, comp="nic.rx")
        if msg.length > 0:
            yield self.profile.dma_write_lat_ns
            if msg.data is not None:
                mr.buffer.write(msg.remote_addr - mr.buffer.addr, msg.data)
            self._notify_memory_watchers(msg.remote_addr, msg.length)
        self.counters.rx_msgs += 1
        self.counters.rx_bytes += msg.wire_bytes
        if rwr is not None:
            yield from self._post_cqe(
                qp.recv_cq,
                CQE(wr_id=rwr.wr_id, status=WCStatus.SUCCESS,
                    opcode=Opcode.RDMA_WRITE_WITH_IMM, byte_len=msg.length,
                    qp_num=qp.qpn, src_qp=msg.src_qpn, imm=msg.imm,
                    meta=msg.meta, span=msg.span),
            )
        yield from self._send_ack(qp, msg, "ack")

    def _exec_read_req(self, qp: QueuePair, msg: WireMessage) -> Generator["Event", object, None]:
        trace = self.sim.trace
        if trace.enabled and msg.span is not None:
            trace.emit(self.sim.now, "span", "mark", span=msg.span,
                       stage="rx_exec", host=self.host_id, comp="nic.rx")
        assert self.mr_table is not None
        mr = self.mr_table.check_remote(msg.rkey, msg.remote_addr, msg.length, write=False)
        if mr is None:
            self.counters.remote_access_errors += 1
            yield from self._send_ack(qp, msg, "ack", status=WCStatus.REM_ACCESS_ERR)
            return
        data: Optional[bytes] = None
        if msg.length > 0:
            # Responder-side payload fetch pipeline fill.
            yield self.profile.dma_read_lat_ns
            if mr.buffer.data is not None:
                data = mr.buffer.read(msg.remote_addr - mr.buffer.addr, msg.length)
        resp = WireMessage(
            kind="read_resp",
            src_host=self.host_id,
            dst_host=msg.src_host,
            src_qpn=msg.dst_qpn,
            dst_qpn=msg.src_qpn,
            transport=msg.transport,
            psn=msg.psn,
            length=msg.length,
            data=data,
            token=msg.token,
            header_bytes=HEADER_BYTES,
            span=msg.span,
        )
        assert self._fabric is not None
        yield from self._fabric.transmit(self.host_id, msg.src_host, resp.wire_bytes, resp)
        self.counters.tx_msgs += 1
        self.counters.tx_bytes += resp.wire_bytes

    def _exec_atomic_resp(
        self, qp: QueuePair, msg: WireMessage, original: int
    ) -> Generator["Event", object, None]:
        """Return the pre-op value to the initiator."""
        mon = self.sim._monitor
        if mon is not None:
            # Every response for this (qpn, psn) must carry the same value
            # (PROTO106): first execution and cache replays alike land here.
            mon.on_atomic_response(qp, msg.psn, original)
        yield self.profile.ack_ns
        resp = WireMessage(
            kind="atomic_resp",
            src_host=self.host_id,
            dst_host=msg.src_host,
            src_qpn=msg.dst_qpn,
            dst_qpn=msg.src_qpn,
            transport=msg.transport,
            psn=msg.psn,
            length=8,
            data=original.to_bytes(8, "little"),
            token=msg.token,
            header_bytes=HEADER_BYTES,
            span=msg.span,
        )
        assert self._fabric is not None
        yield from self._fabric.transmit(self.host_id, msg.src_host,
                                         resp.wire_bytes, resp)
        self.counters.tx_msgs += 1
        self.counters.tx_bytes += resp.wire_bytes

    def _handle_read_resp(self, msg: WireMessage) -> Generator["Event", object, None]:
        """READ / atomic response at the initiator."""
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            self.counters.remote_access_errors += 1
            return
        _qpn, psn = msg.token  # type: ignore[misc]
        wr = qp.outstanding.pop(psn, None)
        if wr is None:
            return  # stale response after QP reset (or a duplicate reply)
        qp.retx_retries.pop(psn, None)
        qp.retx_epoch.pop(psn, None)
        if msg.length > 0:
            yield self.profile.dma_write_lat_ns
            if msg.data is not None:
                assert self.mr_table is not None
                mr = self.mr_table.check_local(wr.lkey, wr.addr, msg.length, write=True)
                mr.buffer.write(wr.addr - mr.buffer.addr, msg.data)
                self._notify_memory_watchers(wr.addr, msg.length)
        qp.sq_outstanding -= 1
        if wr.signaled:
            yield from self._post_cqe(
                qp.send_cq,
                CQE(wr_id=wr.wr_id, status=WCStatus.SUCCESS, opcode=wr.opcode,
                    byte_len=msg.length, qp_num=qp.qpn, data=msg.data,
                    span=wr.span),
            )

    def _handle_response(self, msg: WireMessage) -> Generator["Event", object, None]:
        """ACK / RNR-NAK arriving back at the initiator."""
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            return
        _qpn, psn = msg.token  # type: ignore[misc]
        wr = qp.outstanding.get(psn)
        if wr is None:
            return
        if msg.kind == "nak_rnr":
            # The initiator-side retry count is authoritative (a NAK's
            # echoed count would reset if the NAK itself were retried).
            retries = qp.retx_retries.get(psn, 0)
            if retries >= qp.rnr_retries:
                qp.outstanding.pop(psn, None)
                qp.retx_retries.pop(psn, None)
                qp.retx_epoch.pop(psn, None)
                qp.sq_outstanding -= 1
                yield from self._post_cqe(
                    qp.send_cq,
                    CQE(wr_id=wr.wr_id, status=WCStatus.RNR_RETRY_EXC_ERR,
                        opcode=wr.opcode, byte_len=wr.length, qp_num=qp.qpn,
                        span=wr.span),
                )
                if qp.state not in (QPState.ERROR, QPState.RESET):
                    qp.modify(QPState.ERROR)
                return
            # Invalidate any armed ACK timer right away: the responder has
            # spoken for this attempt, the back-off below owns the retry.
            qp._retx_seq += 1
            qp.retx_epoch[psn] = qp._retx_seq
            qp.retx_retries[psn] = retries + 1
            self.counters.retries += 1
            # Escalating back-off: delay grows with the retry index so
            # repeated RNR NAKs don't hot-loop (first retry unchanged).
            yield RNR_DELAY_NS * (retries + 1)
            self._queue_retransmit(qp, wr, psn, retries + 1)
            return
        # Positive ACK.
        status = WCStatus.REM_ACCESS_ERR if msg.imm == -1 else WCStatus.SUCCESS
        qp.outstanding.pop(psn, None)
        qp.retx_retries.pop(psn, None)
        qp.retx_epoch.pop(psn, None)
        qp.sq_outstanding -= 1
        if msg.length < 0:  # pragma: no cover - defensive
            raise HardwareError("negative ack length")
        if wr.signaled or status is not WCStatus.SUCCESS:
            yield from self._post_cqe(
                qp.send_cq,
                CQE(wr_id=wr.wr_id, status=status, opcode=wr.opcode,
                    byte_len=wr.length, qp_num=qp.qpn, span=wr.span),
            )
        if status is not WCStatus.SUCCESS and qp.state not in (
            QPState.ERROR, QPState.RESET
        ):
            # A remote error ACK is fatal for the QP: transition to ERROR
            # and flush the remaining in-flight work, as real RC does.
            qp.modify(QPState.ERROR)

    # -- RC loss recovery (ACK-timeout retransmission) ---------------------------

    def _arm_ack_timer(self, qp: QueuePair, psn: int, retries: int) -> None:
        """Start the ACK-timeout clock for one in-flight PSN.

        Called after the last bit of an RC request leaves the source port,
        and only when the fabric can drop (fault layer or bounded switch
        buffer — it is lossless otherwise).  Exponential back-off: each
        retransmission doubles the timeout, in integer nanoseconds (no
        float-power drift on simulated time), clamped to the profile's
        ``max_ack_timeout_ns`` — unclamped, retry 7 waited ``128x`` the
        base timeout, turning one congested PSN into ~12.8 ms of silence.
        """
        if qp.outstanding.get(psn) is None:
            return  # already answered (e.g. loopback raced the transmit)
        qp._retx_seq += 1
        epoch = qp._retx_seq
        qp.retx_epoch[psn] = epoch
        delay = int(self.profile.ack_timeout_ns) << retries
        cap = int(self.profile.max_ack_timeout_ns)
        if delay > cap:
            delay = cap
        self.sim.call_later(delay, self._ack_timer_fired, (qp, psn, epoch))

    def _ack_timer_fired(self, token: tuple) -> None:
        """An ACK-timeout expired; retransmit or give up (RETRY_EXC_ERR)."""
        qp, psn, epoch = token
        if qp.retx_epoch.get(psn) != epoch:
            return  # stale: acked, NAKed or re-armed since
        wr = qp.outstanding.get(psn)
        if wr is None or qp.state is not QPState.RTS:
            qp.retx_epoch.pop(psn, None)
            return
        self.counters.ack_timeouts += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("nic.rc.ack_timeouts").inc()
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "ack_timeout",
                       host=self.host_id, qpn=qp.qpn, psn=psn)
        retries = qp.retx_retries.get(psn, 0)
        if retries >= qp.retry_cnt:
            self.counters.retry_exc_errs += 1
            qp.outstanding.pop(psn, None)
            qp.retx_retries.pop(psn, None)
            qp.retx_epoch.pop(psn, None)
            qp.sq_outstanding -= 1
            self.sim.spawn(self._complete_retry_exhausted(qp, wr),
                           name=self._retry_name)
            return
        qp.retx_retries[psn] = retries + 1
        self._queue_retransmit(qp, wr, psn, retries + 1)

    def _queue_retransmit(
        self, qp: QueuePair, wr: SendWR, psn: int, retries: int
    ) -> None:
        """Feed a retry back through the normal TX pipeline.

        Retries share the WQE-scheduling engine with first transmissions,
        so they pay processing occupancy and pipeline fill and show up in
        the TX trace/telemetry like any other message.

        At most one retry per PSN sits in the TX store at a time
        (``qp.retx_pending``): an RNR NAK racing an ACK timeout used to
        queue *two* retransmissions for the same PSN — both passed
        ``_initiate``'s liveness check and both hit the wire, amplifying
        exactly the congestion that caused the loss.  The counter moves
        to ``_initiate`` for the same reason: it must reflect messages
        actually retransmitted, not retry intents later cancelled.
        """
        if psn in qp.retx_pending:
            return  # a retry for this PSN is already queued
        qp.retx_pending.add(psn)
        qp._retx_seq += 1
        qp.retx_epoch[psn] = qp._retx_seq  # invalidate any armed timer
        mon = self.sim._monitor
        if mon is not None:
            # Checked here rather than at the call sites so any retry path
            # (ACK timeout, RNR NAK, or a future one) is bounded (PROTO105).
            mon.on_retransmit(qp, psn, retries)
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "retransmit",
                       host=self.host_id, qpn=qp.qpn, psn=psn, retries=retries)
        self._tx_store.put((qp, wr, psn, retries))

    def _complete_retry_exhausted(
        self, qp: QueuePair, wr: SendWR
    ) -> Generator["Event", object, None]:
        """retry_cnt exhausted: fail the WR, then error-out the QP."""
        yield from self._post_cqe(
            qp.send_cq,
            CQE(wr_id=wr.wr_id, status=WCStatus.RETRY_EXC_ERR,
                opcode=wr.opcode, byte_len=wr.length, qp_num=qp.qpn,
                span=wr.span),
        )
        if qp.state not in (QPState.ERROR, QPState.RESET):
            qp.modify(QPState.ERROR)

    def _send_ack(
        self,
        qp: QueuePair,
        request: WireMessage,
        kind: str,
        status: WCStatus = WCStatus.SUCCESS,
    ) -> Generator["Event", object, None]:
        yield self.profile.ack_ns
        ack = WireMessage(
            kind=kind,
            src_host=self.host_id,
            dst_host=request.src_host,
            src_qpn=request.dst_qpn,
            dst_qpn=request.src_qpn,
            transport=request.transport,
            psn=request.psn,
            imm=-1 if status is not WCStatus.SUCCESS else None,
            token=request.token,
            header_bytes=HEADER_BYTES,
            retries=request.retries,
            span=request.span,
        )
        mon = self.sim._monitor
        if mon is not None:
            mon.on_ack_sent(qp, ack)
        trace = self.sim.trace
        if trace.enabled and request.span is not None:
            trace.emit(self.sim.now, "span", "mark", span=request.span,
                       stage="ack", host=self.host_id, comp="nic.tx")
        assert self._fabric is not None
        yield from self._fabric.transmit(self.host_id, request.src_host, ack.wire_bytes, ack)
        if kind == "ack":
            self.counters.acks_sent += 1

    # -- congestion control (CNP generation + DCQCN rate limiting) ---------------

    def _limiter(self, qp: QueuePair) -> DcqcnLimiter:
        """The QP's DCQCN limiter, created on first use (CC on only)."""
        lim = self._limiters.get(qp.qpn)
        if lim is None:
            lim = DcqcnLimiter(
                self.sim, self.cc, self.profile.link_bw, self._rate_changed
            )
            self._limiters[qp.qpn] = lim
        return lim

    def _rate_changed(self, rate: float) -> None:
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).gauge("nic.cc.rate").set(rate)

    def _note_ecn(self, msg: WireMessage) -> None:
        """Responder half of the loop: an ECN-marked RC request arrived.

        Emits a CNP back to the initiator through the normal TX path,
        throttled to one per ``cnp_interval_ns`` per (initiator host, QP)
        so a marked burst costs one notification, not a CNP storm.
        """
        key = (msg.src_host, msg.src_qpn)
        now = self.sim.now
        last = self._last_cnp_ns.get(key)
        if last is not None and now - last < self.cc.cnp_interval_ns:
            return
        self._last_cnp_ns[key] = now
        self.counters.cnps_sent += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("nic.cc.cnps").inc(key="sent")
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "cnp_send",
                       host=self.host_id, dst_host=msg.src_host,
                       qpn=msg.src_qpn, psn=msg.psn)
        self.sim.spawn(self._send_cnp(msg), name=self._cnp_name)

    def _send_cnp(self, request: WireMessage) -> Generator["Event", object, None]:
        """Build and transmit one CNP (same turnaround cost as an ACK).

        CNPs are unacknowledged and never retransmitted — losing one only
        delays the next rate cut by a CNP interval, as on real fabrics.
        """
        yield self.profile.ack_ns
        cnp = WireMessage(
            kind="cnp",
            src_host=self.host_id,
            dst_host=request.src_host,
            src_qpn=request.dst_qpn,
            dst_qpn=request.src_qpn,
            transport=request.transport,
            psn=request.psn,
            token=request.token,
            header_bytes=HEADER_BYTES,
        )
        assert self._fabric is not None
        yield from self._fabric.transmit(
            self.host_id, request.src_host, cnp.wire_bytes, cnp
        )

    def _handle_cnp(self, msg: WireMessage) -> None:
        """Initiator half of the loop: cut the marked QP's rate."""
        if self.cc is None:
            return
        qp = self._qps.get(msg.dst_qpn)
        if qp is None:
            return
        self.counters.cnps_received += 1
        lim = self._limiter(qp)
        lim.on_cnp(self.sim.now)
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("nic.cc.cnps").inc(key="received")
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "cnp_recv",
                       host=self.host_id, qpn=qp.qpn, psn=msg.psn,
                       rate=lim.rate)

    # -- completion + memory watch helpers ---------------------------------------

    def _post_cqe(self, cq, cqe: CQE) -> Generator["Event", object, None]:
        """Write a CQE to host memory (timed) and push it."""
        yield self.profile.dma_write_lat_ns
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "nic", "cqe",
                       host=self.host_id, wr_id=cqe.wr_id,
                       qpn=cqe.qp_num, status=cqe.status.value,
                       opcode=cqe.opcode.value, size=cqe.byte_len)
            if cqe.span is not None:
                trace.emit(self.sim.now, "span", "mark", span=cqe.span,
                           stage="cqe", host=self.host_id, comp="cq")
        cq.push(cqe)
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).histogram("cq.depth").observe(len(cq.entries))

    # Memory watchers let applications "poll on memory" (perftest write_lat
    # detects arrival by spinning on the target buffer's last byte).
    def _notify_memory_watchers(self, addr: int, length: int) -> None:
        if not self._mem_watchers:
            return
        remaining = []
        for (lo, hi, event) in self._mem_watchers:
            if lo < addr + length and addr < hi and not event.triggered:
                event.succeed(self.sim.now)
            else:
                remaining.append((lo, hi, event))
        self._mem_watchers = remaining

    def watch_memory(self, addr: int, length: int):
        """Event that fires when the NIC DMA-writes into [addr, addr+len)."""
        event = self.sim.event(name=self._memwatch_name)
        self._mem_watchers.append((addr, addr + length, event))
        return event
