"""Hardware models: CPU cores (with DVFS), memory, PCIe DMA, links, NICs.

Everything is parameterized by a :class:`~repro.hw.profiles.SystemProfile`;
the two calibrated instances are :data:`~repro.hw.profiles.SYSTEM_L` (paper's
local testbed) and :data:`~repro.hw.profiles.SYSTEM_A` (paper's Azure
HB120 testbed).
"""

from repro.hw.profiles import (
    SYSTEM_A,
    SYSTEM_L,
    CpuProfile,
    MemoryProfile,
    NicProfile,
    SystemProfile,
)
from repro.hw.cpu import Core, CpuSet
from repro.hw.memory import AddressSpace, MemoryModel, MemoryRegion
from repro.hw.pcie import PcieBus
from repro.hw.link import Link
from repro.hw.nic import Nic

__all__ = [
    "CpuProfile",
    "MemoryProfile",
    "NicProfile",
    "SystemProfile",
    "SYSTEM_L",
    "SYSTEM_A",
    "Core",
    "CpuSet",
    "MemoryModel",
    "MemoryRegion",
    "AddressSpace",
    "PcieBus",
    "Link",
    "Nic",
]
