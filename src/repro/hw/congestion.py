"""DCQCN-style per-QP rate limiting (Zhu et al., SIGCOMM'15).

One :class:`DcqcnLimiter` per RC queue pair at the initiator NIC, created
lazily when the fabric runs with a :class:`~repro.hw.profiles.CcProfile`.
The control loop:

- **CNP arrival** (:meth:`on_cnp`): the congestion estimate ``alpha``
  rises by EWMA gain ``g``; the current rate is remembered as the
  recovery ``target`` and cut multiplicatively (``rate *= 1 - alpha/2``,
  floored at ``min_rate``).  Cuts are throttled to one per
  ``cut_interval_ns`` (DCQCN's rate-reduce period) so a burst of
  notifications counts as one congestion event.
- **ACK timeout** (:meth:`on_timeout`): loss is the strongest signal the
  initiator ever gets — a tail-dropped message is never delivered, so it
  can never carry an ECN mark back, and without this hook every sender
  whose messages all dropped re-blasts its retransmits at the very rate
  that caused the loss (the synchronized retransmit storms behind
  congestion collapse).  RTO-style response: ``alpha`` pins to 1 and the
  rate drops to the floor; the increase timer rebuilds it additively.
  Real RoCE deployments avoid needing this by running DCQCN over a
  PFC-lossless fabric; a bounded tail-dropping buffer does not have that
  luxury.
- **alpha timer**: while elevated, ``alpha`` decays by ``1 - g`` every
  ``alpha_update_ns``; the timer disarms itself once alpha is negligible
  so an idle simulator drains.
- **rate-increase timer**: every ``rate_increase_ns`` the rate moves
  halfway to ``target`` (fast recovery); after ``fast_recovery_rounds``
  the target itself grows additively (``rai_bytes_per_ns``), then
  hyper-actively (``hai_bytes_per_ns``) after ``hyper_after_rounds``
  more.  At line rate both rate and target pin there and the timer
  disarms — the limiter is quiescent (and free) until the next CNP.
- **token bucket** (:meth:`pace`): WQE fetch is paced by a bucket of
  ``burst_bytes`` refilled at the current rate.  A fully recovered, idle
  limiter paces nothing.

Everything is driven by simulated time only: timers via ``sim.call_later``,
no wall clock, no RNG (the WRED marking randomness lives in the fabric's
dedicated streams).  Absolute timestamps register an ``on_time_shift``
hook so steady-state fast-forward clock jumps keep ``now - t`` math valid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.hw.profiles import CcProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Alpha below this is congestion-free for timer purposes: the decay
#: timer disarms (a CNP re-arms it).  Rate math still uses the raw value.
_ALPHA_FLOOR = 1e-3

#: Rate within this fraction of line rate snaps to line rate exactly,
#: ending recovery (avoids an asymptotic tail of timer events).
_LINE_SNAP = 0.999


class DcqcnLimiter:
    """DCQCN rate state machine + token-bucket pacer for one QP."""

    __slots__ = ("sim", "cc", "line_rate", "min_rate", "rate", "target",
                 "alpha", "tokens", "_last_ns", "_last_cut_ns",
                 "_alpha_armed", "_inc_armed", "_inc_rounds", "cnps",
                 "rate_cuts", "timeout_cuts", "lowest_rate", "paced_ns",
                 "_on_rate")

    def __init__(
        self,
        sim: "Simulator",
        cc: CcProfile,
        line_rate: float,
        on_rate_change: Optional[Callable[[float], None]] = None,
    ):
        self.sim = sim
        self.cc = cc
        #: Uncongested sending rate (bytes/ns) — the link bandwidth.
        self.line_rate = line_rate
        self.min_rate = max(cc.min_rate_fraction * line_rate, 1e-6)
        #: Conservative start (see ``CcProfile.initial_rate_fraction``):
        #: the increase timer is armed below so an uncongested flow ramps
        #: to line rate instead of idling at the initial rate forever.
        self.rate = max(cc.initial_rate_fraction * line_rate, self.min_rate)
        #: Recovery target: the rate just before the last cut.
        self.target = self.rate
        #: Congestion estimate, initialized to 1 as in the DCQCN paper:
        #: the *first* CNP halves the rate (a shallow first cut lets an
        #: incast keep overrunning the queue for many CNP intervals).
        self.alpha = 1.0
        self.tokens = float(cc.burst_bytes)
        self._last_ns = 0.0
        #: When the last rate cut landed (CNP or timeout); cuts within
        #: ``cut_interval_ns`` of it are one congestion event.
        self._last_cut_ns = float("-inf")
        self._alpha_armed = False
        self._inc_armed = False
        #: Rate-increase rounds since the last cut (selects the stage).
        self._inc_rounds = 0
        self.cnps = 0
        self.rate_cuts = 0
        self.timeout_cuts = 0
        #: Deepest rate any cut reached (line rate until the first cut).
        self.lowest_rate = line_rate
        #: Total pacing delay imposed (ns) — the ``cc_pace`` stage budget.
        self.paced_ns = 0.0
        self._on_rate = on_rate_change
        sim.on_time_shift(self._shift_time)
        if self.rate < line_rate:
            # Skip fast recovery for the startup ramp (there was no cut
            # to recover from): go straight to additive increase.
            self._inc_rounds = cc.fast_recovery_rounds
            self._inc_armed = True
            sim.call_later(cc.rate_increase_ns, self._inc_fired, None)

    def _shift_time(self, shift: float) -> None:
        self._last_ns += shift
        self._last_cut_ns += shift  # -inf + shift stays -inf

    # -- pacing -------------------------------------------------------------

    def pace(self, now: float, nbytes: int) -> float:
        """Charge ``nbytes`` to the bucket; return the fetch delay (ns).

        A recovered limiter (rate back at line, increase timer disarmed)
        short-circuits with the bucket pinned full, so steady state costs
        two compares per message.
        """
        if self.rate >= self.line_rate and not self._inc_armed:
            self.tokens = float(self.cc.burst_bytes)
            self._last_ns = now
            return 0.0
        tokens = self.tokens + (now - self._last_ns) * self.rate
        burst = float(self.cc.burst_bytes)
        if tokens > burst:
            tokens = burst
        if tokens >= nbytes:
            self.tokens = tokens - nbytes
            self._last_ns = now
            return 0.0
        delay = (nbytes - tokens) / self.rate
        self.tokens = 0.0
        self._last_ns = now + delay
        self.paced_ns += delay
        return delay

    # -- CNP reaction -------------------------------------------------------

    def on_cnp(self, now: float) -> None:
        """One congestion notification: estimate up, rate cut, timers on.

        ``alpha`` rises on every CNP; the rate cut itself is throttled to
        one per ``cut_interval_ns`` so a burst of notifications from one
        queue excursion is a single multiplicative decrease.
        """
        cc = self.cc
        self.cnps += 1
        self.alpha = (1.0 - cc.g) * self.alpha + cc.g
        if not self._alpha_armed:
            self._alpha_armed = True
            self.sim.call_later(cc.alpha_update_ns, self._alpha_fired, None)
        if now - self._last_cut_ns < cc.cut_interval_ns:
            return
        self.target = self.rate
        cut = self.rate * (1.0 - 0.5 * self.alpha)
        self._apply_cut(now, cut if cut > self.min_rate else self.min_rate)

    def on_timeout(self, now: float) -> None:
        """ACK-timeout loss: drop to the floor rate (RTO-style).

        ``alpha`` pins to 1 (maximal congestion estimate) and both rate
        and recovery target fall to ``min_rate``, so recovery is a clean
        additive rebuild — a synchronized wave of cut-then-fast-recovered
        senders would otherwise re-overflow the queue that dropped them.
        Throttled like CNP cuts: the near-simultaneous timers of one loss
        burst count once.
        """
        if now - self._last_cut_ns < self.cc.cut_interval_ns:
            return
        self.alpha = 1.0
        if not self._alpha_armed:
            self._alpha_armed = True
            self.sim.call_later(self.cc.alpha_update_ns, self._alpha_fired, None)
        self.timeout_cuts += 1
        self.target = self.min_rate
        self._apply_cut(now, self.min_rate)

    def _apply_cut(self, now: float, new_rate: float) -> None:
        # Settle the bucket at the old rate up to now so the cut applies
        # from this instant, then let it refill at the new rate.
        tokens = self.tokens + (now - self._last_ns) * self.rate
        burst = float(self.cc.burst_bytes)
        self.tokens = tokens if tokens < burst else burst
        self._last_ns = now
        self._last_cut_ns = now
        self.rate = new_rate
        self.rate_cuts += 1
        if self.rate < self.lowest_rate:
            self.lowest_rate = self.rate
        self._inc_rounds = 0
        if not self._inc_armed:
            self._inc_armed = True
            self.sim.call_later(self.cc.rate_increase_ns, self._inc_fired, None)
        if self._on_rate is not None:
            self._on_rate(self.rate)

    # -- timers -------------------------------------------------------------

    def _alpha_fired(self, _arg: object) -> None:
        self.alpha *= 1.0 - self.cc.g
        if self.alpha <= _ALPHA_FLOOR:
            self.alpha = 0.0
            self._alpha_armed = False
            return
        self.sim.call_later(self.cc.alpha_update_ns, self._alpha_fired, None)

    def _inc_fired(self, _arg: object) -> None:
        cc = self.cc
        self._inc_rounds += 1
        stage = self._inc_rounds - cc.fast_recovery_rounds
        if stage > 0:
            step = (cc.hai_bytes_per_ns if stage > cc.hyper_after_rounds
                    else cc.rai_bytes_per_ns)
            target = self.target + step
            self.target = target if target < self.line_rate else self.line_rate
        self.rate = 0.5 * (self.rate + self.target)
        if self.rate >= self.line_rate * _LINE_SNAP:
            # Recovered: pin at line rate and go quiescent.  The target
            # grows by at least ``rai_bytes_per_ns`` per round once past
            # fast recovery, so this terminates in bounded rounds.
            self.rate = self.line_rate
            self.target = self.line_rate
            self._inc_armed = False
        else:
            self.sim.call_later(cc.rate_increase_ns, self._inc_fired, None)
        if self._on_rate is not None:
            self._on_rate(self.rate)

    # -- observability ------------------------------------------------------

    def state(self) -> tuple:
        """Timing-relevant levels for fast-forward cycle signatures.

        Token count is reported *as of now* (the raw pair ``(tokens,
        _last_ns)`` mixes an absolute timestamp into the fingerprint and
        could never recur).  The last-cut age is clamped to the throttle
        interval: beyond it the throttle is inert, so all older ages are
        behaviorally identical (and an unclamped age grows forever,
        defeating cycle detection).
        """
        now = self.sim.now
        tokens = self.tokens + (now - self._last_ns) * self.rate
        burst = float(self.cc.burst_bytes)
        if tokens > burst:
            tokens = burst
        cut_age = min(now - self._last_cut_ns, self.cc.cut_interval_ns)
        return (self.rate, self.target, self.alpha, tokens, cut_age,
                self._alpha_armed, self._inc_armed, self._inc_rounds)
