"""Point-to-point network link between two NIC ports.

Messages occupy the link for their serialization time (cut-through: the
NIC streams payload from DMA as it transmits), modelled per *message
segment* rather than per packet to keep event counts bounded — per-packet
overheads are charged arithmetically (``ceil(size/mtu) * per_packet_ns``),
which preserves the bandwidth-vs-message-size curve exactly while costing
O(1) events per message.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.errors import HardwareError
from repro.hw.profiles import NicProfile
from repro.sim.events import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Port:
    """One unidirectional endpoint attachment point."""

    def __init__(self, name: str):
        self.name = name
        #: Set by the owning NIC: called with (payload_object) on delivery.
        self.deliver: Optional[Callable[[object], None]] = None


class Link:
    """Full-duplex wire between two ports (two independent directions)."""

    def __init__(
        self,
        sim: "Simulator",
        bandwidth: float,
        propagation_ns: float,
        mtu: int,
        per_packet_ns: float,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise HardwareError(f"link bandwidth must be positive: {bandwidth}")
        if mtu <= 0:
            raise HardwareError(f"MTU must be positive: {mtu}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.propagation_ns = propagation_ns
        self.mtu = mtu
        self.per_packet_ns = per_packet_ns
        self.name = name
        self.ports = (Port(f"{name}.p0"), Port(f"{name}.p1"))
        # One transmit resource per direction: serialization discipline.
        self._tx = {
            self.ports[0]: Resource(sim, 1, name=f"{name}.tx0"),
            self.ports[1]: Resource(sim, 1, name=f"{name}.tx1"),
        }
        #: Delivered traffic only; wire-dropped messages land in the
        #: ``*_dropped`` counters instead (mirrors ``cluster.Fabric``).
        self.bytes_carried = 0
        self.messages_carried = 0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Optional fault layer (see :mod:`repro.faults`); ``None`` keeps
        #: the link lossless.  Link endpoints are identified to the
        #: injector by port index (0 or 1).
        self.faults = None

    @property
    def lossy(self) -> bool:
        """Can this link ever drop a message?  (Fault layer attached.)"""
        return self.faults is not None

    @classmethod
    def from_profile(
        cls, sim: "Simulator", profile: NicProfile, propagation_ns: float, name: str = "link"
    ) -> "Link":
        return cls(
            sim,
            bandwidth=profile.link_bw,
            propagation_ns=propagation_ns,
            mtu=profile.mtu,
            per_packet_ns=profile.per_packet_ns,
            name=name,
        )

    def peer(self, port: Port) -> Port:
        """The port on the other end."""
        if port is self.ports[0]:
            return self.ports[1]
        if port is self.ports[1]:
            return self.ports[0]
        raise HardwareError(
            f"{getattr(port, 'name', port)!r} is not attached to {self.name}"
        )

    def serialization_ns(self, nbytes: int) -> float:
        """Wire occupancy for a message of ``nbytes`` (incl. packet tax)."""
        if nbytes < 0:
            raise HardwareError(f"negative message size: {nbytes}")
        packets = max(1, math.ceil(nbytes / self.mtu)) if nbytes > 0 else 1
        return packets * self.per_packet_ns + nbytes / self.bandwidth

    def transmit(
        self, src: Port, nbytes: int, payload: object
    ) -> Generator[Event, object, None]:
        """Send ``payload`` (describing ``nbytes``) from ``src`` to its peer.

        Returns (the generator finishes) when the last bit has left the
        source; delivery at the peer happens ``propagation_ns`` later via
        the peer port's ``deliver`` callback.  FIFO per direction.
        """
        dst = self.peer(src)
        res = self._tx[src]
        req = res.request()
        yield req
        try:
            yield self.serialization_ns(nbytes)
        finally:
            res.release(req)
        # Schedule delivery after propagation without blocking the sender.
        deliver = dst.deliver
        if deliver is None:
            raise HardwareError(f"{dst.name} has no attached receiver")
        faults = self.faults
        if faults is not None:
            src_idx = 0 if src is self.ports[0] else 1
            extra = faults.on_transmit(
                src_idx, 1 - src_idx, self.sim.now,
                getattr(payload, "kind", "raw"), nbytes, self.propagation_ns,
            )
            if extra is None:
                self.messages_dropped += 1
                self.bytes_dropped += nbytes
                return  # dropped on the wire: never delivered
            if extra:
                self.bytes_carried += nbytes
                self.messages_carried += 1
                self.sim.call_later(self.propagation_ns + extra, deliver, payload)
                return
        self.bytes_carried += nbytes
        self.messages_carried += 1
        self.sim.call_later(self.propagation_ns, deliver, payload)
