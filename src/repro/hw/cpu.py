"""CPU cores with a DVFS/turbo model.

Each simulated thread is pinned to a :class:`Core` (the paper pins all
benchmark processes).  A core is a capacity-1 resource: oversubscribed cores
serialize their threads' work.  Work durations are scaled by the current
effective frequency, which a simple duty-cycle EMA governs:

- Turbo disabled (system L): frequency is nominal, always.
- Turbo enabled (system A): a core that is *not* saturated runs up to
  ``turbo_headroom`` faster.  Sustained busy-polling drives the duty cycle
  to 1 and forfeits the headroom; syscalls grant a small idle credit
  (``dvfs_syscall_credit_ns``).  This reproduces the paper's observation
  that CoRD can marginally outperform kernel bypass on large-message
  bandwidth when Turbo is on (§5: "system calls interact with DVFS").
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import HardwareError
from repro.hw.profiles import CpuProfile, SystemProfile
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.sim.rng import lognormal_jitter

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Core:
    """One CPU core: exclusive execution resource + frequency governor."""

    def __init__(
        self,
        sim: "Simulator",
        system: SystemProfile,
        index: int = 0,
        name: str = "",
    ):
        self.sim = sim
        self.system = system
        self.profile: CpuProfile = system.cpu
        self.index = index
        self.name = name or f"core{index}"
        self.res = Resource(sim, capacity=1, name=self.name)
        self._rng = sim.rng.stream(f"cpu:{self.name}")
        #: Telemetry scope: core names are "<host>.coreN" (host scope).
        self._scope = self.name.split(".", 1)[0]
        # Duty-cycle EMA state for the DVFS governor.
        self._duty: float = 0.0
        self._duty_t: float = sim.now
        # Accounting.
        self.busy_ns: float = 0.0
        self.syscalls: int = 0

    # -- DVFS -------------------------------------------------------------------

    def _decay_duty(self) -> None:
        """Decay the duty EMA over the idle gap since the last update."""
        now = self.sim.now
        gap = now - self._duty_t
        if gap > 0:
            self._duty *= math.exp(-gap / self.profile.dvfs_window_ns)
            self._duty_t = now

    def _absorb_busy(self, duration: float) -> None:
        """Fold a busy interval ending now into the duty EMA."""
        w = self.profile.dvfs_window_ns
        frac = math.exp(-duration / w)
        self._duty = 1.0 * (1.0 - frac) + self._duty * frac
        self._duty_t = self.sim.now

    @property
    def duty_cycle(self) -> float:
        """Current duty-cycle estimate in [0, 1]."""
        self._decay_duty()
        return self._duty

    @property
    def frequency_factor(self) -> float:
        """Effective frequency relative to nominal (>= 1.0)."""
        if not self.system.turbo_enabled:
            return 1.0
        headroom = self.profile.turbo_headroom - 1.0
        return 1.0 + headroom * (1.0 - self.duty_cycle)

    def grant_idle_credit(self, credit_ns: float) -> None:
        """Pretend the core idled for ``credit_ns`` (DVFS syscall effect)."""
        if credit_ns <= 0 or not self.system.turbo_enabled:
            return
        self._decay_duty()
        self._duty *= math.exp(-credit_ns / self.profile.dvfs_window_ns)

    # -- execution -----------------------------------------------------------------

    def run(self, work_ns: float) -> Generator[Event, object, None]:
        """Execute ``work_ns`` of nominal-frequency work on this core.

        Acquires the core (queueing behind other pinned threads), advances
        time by the frequency-scaled duration, updates DVFS accounting.
        """
        if work_ns < 0:
            raise HardwareError(f"negative work: {work_ns}")
        req = self.res.request()
        yield req
        try:
            if not self.system.turbo_enabled:
                # Frequency is pinned to nominal, so the duty EMA can never
                # feed back into timing — skip the per-slice exp() updates.
                if work_ns > 0:
                    yield work_ns
                    self.busy_ns += work_ns
            else:
                # Slice long work so duty and frequency co-evolve: a long
                # compute block saturates the core and decays to nominal
                # frequency instead of riding its entry-time turbo factor.
                remaining = work_ns
                while remaining > 0:
                    slice_nominal = min(remaining, self.profile.dvfs_window_ns)
                    scaled = slice_nominal / self.frequency_factor
                    yield scaled
                    self._absorb_busy(scaled)
                    self.busy_ns += scaled
                    remaining -= slice_nominal
        finally:
            self.res.release(req)

    def syscall(
        self, kernel_work_ns: float = 0.0
    ) -> Generator[Event, object, None]:
        """One syscall round trip plus ``kernel_work_ns`` of kernel work.

        Applies KPTI cost when the system profile enables it and lognormal
        jitter on virtualized systems.
        """
        base = self.system.syscall_cost() + kernel_work_ns
        cost = lognormal_jitter(self._rng, base, self.system.syscall_jitter_cv)
        self.syscalls += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("cpu.syscalls").inc(cost, key=self.name)
        yield from self.run(cost)
        self.grant_idle_credit(self.profile.dvfs_syscall_credit_ns)

    def busy_poll(self, until: Event, check_ns: float) -> Generator[Event, object, float]:
        """Busy-poll on the core until ``until`` fires.

        Returns the polling CPU time burnt.  The waiting time counts as busy
        for the DVFS governor (the defining property of polling), and the
        caller pays one final ``check_ns`` to observe the result.
        """
        req = self.res.request()
        yield req
        try:
            start = self.sim.now
            if not until.processed:
                yield until
            waited = self.sim.now - start
            if self.system.turbo_enabled:
                tail = check_ns / self.frequency_factor
                if tail > 0:
                    yield tail
                burnt = waited + tail
                if burnt > 0:
                    self._absorb_busy(burnt)
                    self.busy_ns += burnt
            else:
                if check_ns > 0:
                    yield check_ns
                burnt = waited + check_ns
                self.busy_ns += burnt
            return burnt
        finally:
            self.res.release(req)


class CpuSet:
    """The cores of one host, with simple pinning allocation."""

    def __init__(self, sim: "Simulator", system: SystemProfile, host_name: str = "host"):
        self.sim = sim
        self.system = system
        self.cores = [
            Core(sim, system, index=i, name=f"{host_name}.core{i}")
            for i in range(system.cpu.cores)
        ]
        self._next_pin = 0

    def pin(self, core_index: Optional[int] = None) -> Core:
        """Claim a core: explicit index, or round-robin when None."""
        if core_index is None:
            core = self.cores[self._next_pin % len(self.cores)]
            self._next_pin += 1
            return core
        if not 0 <= core_index < len(self.cores):
            raise HardwareError(
                f"core index {core_index} out of range 0..{len(self.cores) - 1}"
            )
        return self.cores[core_index]

    def __len__(self) -> int:
        return len(self.cores)
