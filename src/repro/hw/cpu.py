"""CPU cores with a DVFS/turbo model.

Each simulated thread is pinned to a :class:`Core` (the paper pins all
benchmark processes).  A core is a capacity-1 resource: oversubscribed cores
serialize their threads' work.  Work durations are scaled by the current
effective frequency, which a simple duty-cycle EMA governs:

- Turbo disabled (system L): frequency is nominal, always.
- Turbo enabled (system A): a core that is *not* saturated runs up to
  ``turbo_headroom`` faster.  Sustained busy-polling drives the duty cycle
  to 1 and forfeits the headroom; syscalls grant a small idle credit
  (``dvfs_syscall_credit_ns``).  This reproduces the paper's observation
  that CoRD can marginally outperform kernel bypass on large-message
  bandwidth when Turbo is on (§5: "system calls interact with DVFS").
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import HardwareError
from repro.hw.profiles import CpuProfile, SystemProfile
from repro.sim.events import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Idle gaps beyond this many DVFS windows leave a residual duty of at most
#: ``e**-48`` ~ 1.4e-21 — below half an ulp of every expression the duty
#: feeds (``1 - duty`` in :meth:`Core.frequency_factor`, ``duty * frac``
#: against ``1 - frac`` in :meth:`Core._absorb_busy` for any busy slice
#: longer than a nanosecond; the shortest slice in any profile is the 28 ns
#: poll check, a 38x margin) — so the governor flushes the EMA to an exact
#: 0.0.  That makes "cold" an absorbing, canonical state: a core left idle
#: this long behaves bit-identically to a freshly built one no matter how
#: much *longer* it idled, which is what lets the steady-state fast-forward
#: signature treat all such cores as equal (see :meth:`Core._timing_state`).
_COLD_WINDOWS = 48.0


class Core:
    """One CPU core: exclusive execution resource + frequency governor."""

    def __init__(
        self,
        sim: "Simulator",
        system: SystemProfile,
        index: int = 0,
        name: str = "",
    ):
        self.sim = sim
        self.system = system
        self.profile: CpuProfile = system.cpu
        self.index = index
        self.name = name or f"core{index}"
        self.res = Resource(sim, capacity=1, name=self.name)
        self._jitter = sim.rng.jitter_stream(f"cpu:{self.name}")
        #: Telemetry scope: core names are "<host>.coreN" (host scope).
        self._scope = self.name.split(".", 1)[0]
        # Duty-cycle EMA state for the DVFS governor.
        self._duty: float = 0.0
        self._duty_t: float = sim.now
        #: Absolute start of an in-progress busy-poll (None outside one).
        self._poll_t0: Optional[float] = None
        # Accounting.
        self.busy_ns: float = 0.0
        self.syscalls: int = 0
        # Hooks are registered lazily at first dispatch: an idle core's duty
        # EMA is pinned at 0.0 (decay multiplies zero), so it has no
        # timing-relevant state to shift or to publish — and a many-core
        # host would otherwise make every steady-state signature pay for
        # hundreds of inert providers.
        self._hooked = False

    def _ensure_hooks(self) -> None:
        """Register clock-shift / state hooks at first dispatch.

        Absolute timestamps must survive bulk clock advances (steady-state
        fast-forward): shift them with the clock so every ``now - t`` gap
        the core computes is translation-invariant.  The duty EMA feeds
        back into timing only with turbo on, so only those cores publish
        governor state into steady-state signatures.
        """
        self._hooked = True
        self.sim.on_time_shift(self._on_time_shift)
        if self.system.turbo_enabled:
            self.sim.register_state_provider(self._timing_state)

    def _on_time_shift(self, shift: float) -> None:
        self._duty_t += shift
        if self._poll_t0 is not None:
            self._poll_t0 += shift

    def _timing_state(self) -> tuple:
        """Timing-relevant governor state for steady-state signatures.

        The pending idle gap is part of the state (decay is lazy), which
        would make an abandoned core — busy during setup, never touched
        again — look aperiodic forever as its staleness grows.  Once the
        pending decay is past ``_COLD_WINDOWS`` the flush in
        :meth:`_decay_duty` guarantees the next query yields an exact 0.0
        regardless of how stale the core got, so every such state is
        reported as one canonical cold tuple.
        """
        gap = self.sim.now - self._duty_t
        if self._duty == 0.0 or gap >= _COLD_WINDOWS * self.profile.dvfs_window_ns:
            return (self.name, "cold")
        return (self.name, self._duty, gap)

    # -- DVFS -------------------------------------------------------------------

    def _decay_duty(self) -> None:
        """Decay the duty EMA over the idle gap since the last update.

        Gaps past ``_COLD_WINDOWS`` flush to an exact 0.0: the residual
        (< 1.6e-28) is beneath half an ulp of everything downstream, so
        the flush is bit-invisible to timing while making long-idle cores
        canonically cold.
        """
        now = self.sim.now
        gap = now - self._duty_t
        if gap > 0:
            window = self.profile.dvfs_window_ns
            if gap >= _COLD_WINDOWS * window:
                self._duty = 0.0
            else:
                self._duty *= math.exp(-gap / window)
            self._duty_t = now

    def _absorb_busy(self, duration: float) -> None:
        """Fold a busy interval ending now into the duty EMA."""
        w = self.profile.dvfs_window_ns
        frac = math.exp(-duration / w)
        self._duty = 1.0 * (1.0 - frac) + self._duty * frac
        self._duty_t = self.sim.now

    @property
    def duty_cycle(self) -> float:
        """Current duty-cycle estimate in [0, 1]."""
        self._decay_duty()
        return self._duty

    @property
    def frequency_factor(self) -> float:
        """Effective frequency relative to nominal (>= 1.0)."""
        if not self.system.turbo_enabled:
            return 1.0
        headroom = self.profile.turbo_headroom - 1.0
        return 1.0 + headroom * (1.0 - self.duty_cycle)

    def grant_idle_credit(self, credit_ns: float) -> None:
        """Pretend the core idled for ``credit_ns`` (DVFS syscall effect)."""
        if credit_ns <= 0 or not self.system.turbo_enabled:
            return
        self._decay_duty()
        self._duty *= math.exp(-credit_ns / self.profile.dvfs_window_ns)

    # -- execution -----------------------------------------------------------------

    def run(self, work_ns: float) -> Generator[Event, object, None]:
        """Execute ``work_ns`` of nominal-frequency work on this core.

        Acquires the core (queueing behind other pinned threads), advances
        time by the frequency-scaled duration, updates DVFS accounting.
        """
        if work_ns < 0:
            raise HardwareError(f"negative work: {work_ns}")
        if not self._hooked:
            self._ensure_hooks()
        req = self.res.request()
        yield req
        try:
            if not self.system.turbo_enabled:
                # Frequency is pinned to nominal, so the duty EMA can never
                # feed back into timing — skip the per-slice exp() updates.
                if work_ns > 0:
                    yield work_ns
                    self.busy_ns += work_ns
            else:
                # Slice long work so duty and frequency co-evolve: a long
                # compute block saturates the core and decays to nominal
                # frequency instead of riding its entry-time turbo factor.
                remaining = work_ns
                while remaining > 0:
                    slice_nominal = min(remaining, self.profile.dvfs_window_ns)
                    scaled = slice_nominal / self.frequency_factor
                    yield scaled
                    self._absorb_busy(scaled)
                    self.busy_ns += scaled
                    remaining -= slice_nominal
        finally:
            self.res.release(req)

    def syscall(
        self, kernel_work_ns: float = 0.0
    ) -> Generator[Event, object, None]:
        """One syscall round trip plus ``kernel_work_ns`` of kernel work.

        Applies KPTI cost when the system profile enables it and lognormal
        jitter on virtualized systems.
        """
        base = self.system.syscall_cost() + kernel_work_ns
        cost = self._jitter.draw(base, self.system.syscall_jitter_cv)
        self.syscalls += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("cpu.syscalls").inc(cost, key=self.name)
        yield from self.run(cost)
        self.grant_idle_credit(self.profile.dvfs_syscall_credit_ns)

    def busy_poll(self, until: Event, check_ns: float) -> Generator[Event, object, float]:
        """Busy-poll on the core until ``until`` fires.

        Returns the polling CPU time burnt.  The waiting time counts as busy
        for the DVFS governor (the defining property of polling), and the
        caller pays one final ``check_ns`` to observe the result.
        """
        if not self._hooked:
            self._ensure_hooks()
        req = self.res.request()
        yield req
        try:
            # The start mark lives on the core (not a generator local) so a
            # bulk clock advance can translate it: the measured wait then
            # never includes fast-forwarded time another process skipped.
            self._poll_t0 = self.sim.now
            if not until.processed:
                yield until
            waited = self.sim.now - self._poll_t0
            self._poll_t0 = None
            if self.system.turbo_enabled:
                tail = check_ns / self.frequency_factor
                if tail > 0:
                    yield tail
                burnt = waited + tail
                if burnt > 0:
                    self._absorb_busy(burnt)
                    self.busy_ns += burnt
            else:
                if check_ns > 0:
                    yield check_ns
                burnt = waited + check_ns
                self.busy_ns += burnt
            return burnt
        finally:
            self.res.release(req)


class CpuSet:
    """The cores of one host, with simple pinning allocation."""

    def __init__(self, sim: "Simulator", system: SystemProfile, host_name: str = "host"):
        self.sim = sim
        self.system = system
        self._host_name = host_name
        # Cores materialize on first pin: a 120-core profile (Azure HB120)
        # would otherwise build hundreds of Core objects — and as many named
        # rng streams — that no benchmark ever touches.  Stream seeds derive
        # from (master seed, name) alone, so creation order cannot perturb
        # any draw.
        self._cores: list[Optional[Core]] = [None] * system.cpu.cores
        self._next_pin = 0

    def _core(self, index: int) -> Core:
        core = self._cores[index]
        if core is None:
            core = self._cores[index] = Core(
                self.sim, self.system, index=index,
                name=f"{self._host_name}.core{index}",
            )
        return core

    @property
    def cores(self) -> list[Core]:
        """All cores, materializing any not yet pinned (telemetry export)."""
        return [self._core(i) for i in range(len(self._cores))]

    def pin(self, core_index: Optional[int] = None) -> Core:
        """Claim a core: explicit index, or round-robin when None."""
        if core_index is None:
            index = self._next_pin % len(self._cores)
            self._next_pin += 1
            return self._core(index)
        if not 0 <= core_index < len(self._cores):
            raise HardwareError(
                f"core index {core_index} out of range 0..{len(self._cores) - 1}"
            )
        return self._core(core_index)

    def __len__(self) -> int:
        return len(self._cores)
