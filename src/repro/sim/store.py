"""FIFO stores — the queues of the simulated world.

Work queues, completion queues, socket receive buffers and MPI unexpected-
message queues are all stores: producers ``put`` items (optionally bounded),
consumers ``get`` them, and both sides block on events when the store is
full/empty.  :class:`FilterStore` additionally lets a consumer wait for the
first item matching a predicate (used for tag matching in MPI).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object):
        super().__init__(store.sim, name=f"put:{store.name}")
        self.item = item


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filt: Optional[Callable[[object], bool]] = None):
        super().__init__(store.sim, name=f"get:{store.name}")
        self.filter = filt


class Store:
    """Unbounded-or-bounded FIFO store of arbitrary items."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        name: str = "store",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[object] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()
        #: High-water mark, useful for sizing assertions in tests.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self.items)

    # -- operations ---------------------------------------------------------------

    def put(self, item: object) -> StorePut:
        """Insert ``item``; the returned event succeeds once it is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Optional[object]:
        """Non-blocking get: pop and return the oldest item, or ``None``.

        Only valid when no getter is parked (otherwise it would steal).
        """
        if self._getters:
            raise SimulationError(f"try_get on {self.name} with parked getters")
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def peek(self) -> Optional[object]:
        """Oldest item without removing it, or ``None``."""
        return self.items[0] if self.items else None

    # -- matching engine --------------------------------------------------------------

    def _admit(self) -> None:
        """Move queued puts into storage while capacity allows."""
        while self._putters and len(self.items) < self.capacity:
            put = self._putters.popleft()
            self.items.append(put.item)
            put.succeed(put.item)
        self.max_occupancy = max(self.max_occupancy, len(self.items))

    def _serve(self) -> None:
        """Hand stored items to waiting getters (FIFO on both sides)."""
        while self._getters and self.items:
            get = self._getters.popleft()
            get.succeed(self.items.popleft())

    def _dispatch(self) -> None:
        # Admission can unblock getters and vice versa; loop to fixpoint.
        before = -1
        while before != (len(self.items), len(self._putters), len(self._getters)):
            before = (len(self.items), len(self._putters), len(self._getters))
            self._admit()
            self._serve()


class FilterStore(Store):
    """Store whose getters may wait for the first item matching a predicate."""

    def get(self, filt: Optional[Callable[[object], bool]] = None) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self, filt)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self, filt: Optional[Callable[[object], bool]] = None) -> Optional[object]:  # type: ignore[override]
        if self._getters:
            raise SimulationError(f"try_get on {self.name} with parked getters")
        for idx, item in enumerate(self.items):
            if filt is None or filt(item):
                del self.items[idx]  # type: ignore[arg-type]
                self._dispatch()
                return item
        return None

    def _serve(self) -> None:
        served = True
        while served:
            served = False
            for gi, get in enumerate(self._getters):
                for ii, item in enumerate(self.items):
                    if get.filter is None or get.filter(item):
                        del self.items[ii]  # type: ignore[arg-type]
                        del self._getters[gi]
                        get.succeed(item)
                        served = True
                        break
                if served:
                    break
