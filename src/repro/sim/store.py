"""FIFO stores — the queues of the simulated world.

Work queues, completion queues, socket receive buffers and MPI unexpected-
message queues are all stores: producers ``put`` items (optionally bounded),
consumers ``get`` them, and both sides block on events when the store is
full/empty.  :class:`FilterStore` additionally lets a consumer wait for the
first item matching a predicate (used for tag matching in MPI).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object):
        # Inlined Event.__init__ with the store's precomputed name — one
        # StorePut/StoreGet pair is allocated per queue hop, which makes these
        # the most frequently constructed events in the NIC pipelines.  The
        # callbacks list is left unset; Store.put fills it in (None when the
        # item is stored inline, a fresh list when the put queues).
        self.sim = store.sim
        self.name = store._put_name
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.item = item


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filt: Optional[Callable[[object], bool]] = None):
        # Same lazy-callbacks contract as StorePut (see above).
        self.sim = store.sim
        self.name = store._get_name
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.filter = filt


class Store:
    """Unbounded-or-bounded FIFO store of arbitrary items."""

    __slots__ = (
        "sim",
        "capacity",
        "name",
        "items",
        "_putters",
        "_getters",
        "max_occupancy",
        "_put_name",
        "_get_name",
    )

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        name: str = "store",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"
        self.items: deque[object] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()
        #: High-water mark, useful for sizing assertions in tests.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self.items)

    # -- operations ---------------------------------------------------------------

    def put(self, item: object) -> StorePut:
        """Insert ``item``; the returned event succeeds once it is stored.

        When capacity is free (and no earlier putter is queued) the item is
        stored and the event completes *inline* — no heap round trip for
        the ack nobody usually waits on.  A parked getter is still woken
        through the event loop, exactly as before.
        """
        event = StorePut(self, item)
        items = self.items
        if not self._putters and len(items) < self.capacity:
            items.append(item)
            event._value = item
            event.callbacks = None
            if len(items) > self.max_occupancy:
                self.max_occupancy = len(items)
            if self._getters:
                self._serve()
        else:
            event.callbacks = []
            self._putters.append(event)
            self._dispatch()
        san = self.sim._sanitize
        if san is not None:
            # Parked at return = the store was full: admission order among
            # same-bucket putters is decided by heap-insertion seq.
            san.note_touch(self, f"store {self.name!r}", "put",
                           contended=event.callbacks is not None)
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item.

        A get that can be satisfied immediately completes *inline* (the
        event is born processed), so ``yield store.get()`` in a drain loop
        continues without parking.  Empty-store gets park as before.
        """
        event = StoreGet(self)
        items = self.items
        if items and not self._getters:
            event._value = items.popleft()
            event.callbacks = None
            if self._putters:
                self._dispatch()
        else:
            event.callbacks = []
            self._getters.append(event)
            self._dispatch()
        san = self.sim._sanitize
        if san is not None:
            # Parked at return = the store was empty (or had earlier
            # getters): wake order among same-bucket getters is seq-decided.
            san.note_touch(self, f"store {self.name!r}", "get",
                           contended=event.callbacks is not None)
        return event

    def try_get(self) -> Optional[object]:
        """Non-blocking get: pop and return the oldest item, or ``None``.

        Only valid when no getter is parked (otherwise it would steal).
        """
        if self._getters:
            raise SimulationError(f"try_get on {self.name} with parked getters")
        san = self.sim._sanitize
        if self.items:
            item = self.items.popleft()
            if san is not None:
                # A hit: a same-bucket rival poller would have missed.
                san.note_touch(self, f"store {self.name!r}", "try_get",
                               contended=True)
            self._dispatch()
            return item
        if san is not None:
            san.note_touch(self, f"store {self.name!r}", "try_get",
                           contended=False)
        return None

    def peek(self) -> Optional[object]:
        """Oldest item without removing it, or ``None``."""
        return self.items[0] if self.items else None

    # -- matching engine --------------------------------------------------------------

    def _admit(self) -> bool:
        """Move queued puts into storage while capacity allows."""
        moved = False
        items = self.items
        while self._putters and len(items) < self.capacity:
            put = self._putters.popleft()
            items.append(put.item)
            put.succeed(put.item)
            moved = True
        if moved and len(items) > self.max_occupancy:
            self.max_occupancy = len(items)
        return moved

    def _serve(self) -> bool:
        """Hand stored items to waiting getters (FIFO on both sides)."""
        moved = False
        items = self.items
        while self._getters and items:
            get = self._getters.popleft()
            get.succeed(items.popleft())
            moved = True
        return moved

    def _dispatch(self) -> None:
        # Admission can unblock getters and vice versa; loop to fixpoint
        # (signalled by moved-flags rather than tuple snapshots).
        while self._admit() | self._serve():
            pass


class FilterStore(Store):
    """Store whose getters may wait for the first item matching a predicate."""

    __slots__ = ()

    def get(self, filt: Optional[Callable[[object], bool]] = None) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self, filt)
        event.callbacks = []
        self._getters.append(event)
        self._dispatch()
        san = self.sim._sanitize
        if san is not None:
            # Still parked after the matching pass = waiting; a same-bucket
            # rival getter whose filter also matches is served by seq order.
            san.note_touch(self, f"store {self.name!r}", "get",
                           contended=event.callbacks is not None)
        return event

    def try_get(self, filt: Optional[Callable[[object], bool]] = None) -> Optional[object]:  # type: ignore[override]
        if self._getters:
            raise SimulationError(f"try_get on {self.name} with parked getters")
        san = self.sim._sanitize
        for idx, item in enumerate(self.items):
            if filt is None or filt(item):
                del self.items[idx]  # type: ignore[arg-type]
                if san is not None:
                    san.note_touch(self, f"store {self.name!r}", "try_get",
                                   contended=True)
                self._dispatch()
                return item
        if san is not None:
            san.note_touch(self, f"store {self.name!r}", "try_get",
                           contended=False)
        return None

    def _serve(self) -> bool:
        moved = False
        served = True
        while served:
            served = False
            for gi, get in enumerate(self._getters):
                for ii, item in enumerate(self.items):
                    if get.filter is None or get.filter(item):
                        del self.items[ii]  # type: ignore[arg-type]
                        del self._getters[gi]
                        get.succeed(item)
                        served = True
                        moved = True
                        break
                if served:
                    break
        return moved
