"""Deterministic discrete-event simulation engine.

This subpackage is the substrate every other layer runs on.  It provides a
SimPy-flavoured API (written from scratch; SimPy is not a dependency):

- :class:`~repro.sim.engine.Simulator` — event loop with nanosecond time.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf` / :class:`~repro.sim.events.AllOf`.
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes that ``yield`` events.
- :mod:`~repro.sim.resources` — capacity-limited resources with optional
  priorities (CPU cores, NIC execution units, IRQ lines).
- :mod:`~repro.sim.store` — FIFO stores used for queues (WQs, CQs,
  socket buffers).
- :mod:`~repro.sim.rng` — named, seeded random streams so runs are
  reproducible and components do not perturb each other's draws.
- :mod:`~repro.sim.trace` — structured event tracing and counters.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.fastforward import FastForward, FastForwardStats, Skip
from repro.sim.process import Process
from repro.sim.resources import PriorityResource, Resource
from repro.sim.store import FilterStore, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace, Counter

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "FastForward",
    "FastForwardStats",
    "Skip",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
    "FilterStore",
    "RngRegistry",
    "Trace",
    "Counter",
]
