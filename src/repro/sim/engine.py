"""The simulation event loop.

:class:`Simulator` owns the clock and the pending-event heap.  Events are
ordered by ``(time, priority, sequence)`` so same-time events process in
deterministic FIFO order within a priority class — determinism is a hard
requirement because hardware profiles carry seeded jitter and benchmark
results must be exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace


class _EmptySchedule(Exception):
    """Internal: the event heap ran dry."""


class Simulator:
    """Discrete-event simulator with nanosecond float time.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`; every named
        stream is derived from it, so one integer pins the entire run.
    trace:
        Optional pre-built :class:`~repro.sim.trace.Trace`; a disabled one is
        created by default (zero overhead when off).
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None):
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace(enabled=False)

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process context)."""
        return self._active_process

    # -- factories -------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None, name: str = "") -> Timeout:
        """Create a timeout firing ``delay`` ns from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        """Insert a triggered event into the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise _EmptySchedule() from None
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event scheduled in the past")
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it instead of losing it.
            exc = event._value
            assert isinstance(exc, BaseException)
            raise exc

    # -- running ----------------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        ``until`` may be:

        - ``None`` — run until no events remain;
        - a number — run until the clock reaches that time;
        - an :class:`Event` — run until the event is processed and return its
          value (raising its exception if it failed).
        """
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value  # type: ignore[misc]
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                stop_event.defuse()
                raise stop_event._value  # type: ignore[misc]
            if self.peek() > deadline:
                self._now = deadline if deadline != float("inf") else self._now
                return None
            try:
                self.step()
            except _EmptySchedule:
                if stop_event is not None:
                    raise SimulationError(
                        "run() stop event will never be triggered: no events left"
                    ) from None
                return None

    def run_until_idle(self) -> None:
        """Drain every pending event (alias of ``run(None)`` for readability)."""
        self.run(None)
