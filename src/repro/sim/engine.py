"""The simulation event loop.

:class:`Simulator` owns the clock and the pending-event heap.  Events are
ordered by ``(time, priority, sequence)`` so same-time events process in
deterministic FIFO order within a priority class — determinism is a hard
requirement because hardware profiles carry seeded jitter and benchmark
results must be exactly reproducible.

Fast path
---------

Processes may yield a bare ``float``/``int`` number of nanoseconds instead
of a :class:`~repro.sim.events.Timeout`::

    yield 250.0        # equivalent to: yield sim.timeout(250.0)

The engine then schedules a pooled :class:`_Resume` record and resumes the
generator straight off the heap — no ``Timeout`` object, no callback list,
no event state machine.  The record is recycled through a free pool the
moment it pops, so the steady-state hot loop allocates nothing per delay.
Scheduling order is identical to the ``Timeout`` path (same
``(time, priority, sequence)`` key allocated at the same point), so
simulation results are bit-identical either way; ``REPRO_SIM_FASTPATH=0``
forces scalar yields through real ``Timeout`` events to prove it (see
``tests/test_golden_determinism.py``).

:meth:`Simulator.call_later` is the matching primitive for fire-and-forget
callbacks (e.g. link propagation delivery): a pooled record invoking
``fn(arg)`` at the scheduled time, again without an Event allocation.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.choice import Chooser
    from repro.verify.monitors import ProtocolMonitor
from repro.sanitize.runtime import env_sanitize
from repro.sim.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.sim.process import MiniProcess, Process, ProcessGenerator, _Resume
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace
from repro.telemetry.metrics import Telemetry


class _EmptySchedule(Exception):
    """Internal: the event heap ran dry."""


class _Callback:
    """Pooled heap record: invoke ``fn(arg)`` at the scheduled time."""

    __slots__ = ("fn", "arg")

    def __init__(self) -> None:
        self.fn = None
        self.arg = None


def _env_fastpath() -> bool:
    return os.environ.get("REPRO_SIM_FASTPATH", "1").lower() not in ("0", "false", "no")


def _env_monitors() -> bool:
    """Is ``REPRO_VERIFY_MONITORS`` switched on in the environment?"""
    return os.environ.get("REPRO_VERIFY_MONITORS", "").lower() in (
        "1", "true", "yes", "on"
    )


class Simulator:
    """Discrete-event simulator with nanosecond float time.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`; every named
        stream is derived from it, so one integer pins the entire run.
    trace:
        Optional pre-built :class:`~repro.sim.trace.Trace`; a disabled one is
        created by default (zero overhead when off).
    telemetry:
        Optional pre-built :class:`~repro.telemetry.metrics.Telemetry`
        registry; a disabled one is created by default.  Like the trace,
        instrumented sites pay one branch when it is off, and enabling it
        never alters simulation results (it only mutates Python counters).
    fastpath:
        Force the scalar-yield fast path on/off; ``None`` (default) reads
        ``REPRO_SIM_FASTPATH`` from the environment (on unless ``0``).
    sanitize:
        Attach the :mod:`repro.sanitize` runtime checkers (same-timestamp
        race detector, RNG stream discipline, no-time-travel); ``None``
        (default) reads ``REPRO_SANITIZE`` from the environment (off
        unless truthy).  Off costs nothing on the hot loop: ``run()``
        only picks the instrumented loop when a sanitizer is attached.
    monitors:
        Attach the :mod:`repro.verify` protocol invariant monitors
        (PROTO101–PROTO107: exactly-once CQEs, responder PSN discipline,
        legal-only QP transitions, flush ordering, bounded retries,
        atomic replay consistency); ``None`` (default) reads
        ``REPRO_VERIFY_MONITORS`` from the environment.  Off costs one
        ``is None`` branch per hook site; runs are bit-identical either
        way (monitors only observe).  Env-attached monitors are strict:
        the first violation raises.
    """

    __slots__ = (
        "_now", "_queue", "_seq", "_active_process", "_fastpath",
        "_resume_pool", "_cb_pool", "_sanitize", "_time_hooks",
        "_state_providers", "_monitor", "_chooser", "rng", "trace",
        "telemetry",
    )

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Trace] = None,
        fastpath: Optional[bool] = None,
        telemetry: Optional[Telemetry] = None,
        sanitize: Optional[bool] = None,
        monitors: Optional[bool] = None,
    ):
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, object]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._fastpath: bool = _env_fastpath() if fastpath is None else bool(fastpath)
        self._resume_pool: list[_Resume] = []
        self._cb_pool: list[_Callback] = []
        self._time_hooks: list[Callable[[float], None]] = []
        self._state_providers: list[Callable[[], tuple]] = []
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._sanitize = None
        if env_sanitize() if sanitize is None else sanitize:
            from repro.sanitize.runtime import RuntimeSanitizer

            self._sanitize = RuntimeSanitizer(self)
            self.rng._sanitize = self._sanitize
        #: Protocol invariant monitor (repro.verify.monitors); component
        #: hook sites check ``sim._monitor is not None`` — one branch off.
        self._monitor: Optional["ProtocolMonitor"] = None
        if monitors if monitors is not None else _env_monitors():
            from repro.verify.monitors import ProtocolMonitor

            self._monitor = ProtocolMonitor(self, strict=True)
        #: Deterministic choice-point hook (repro.verify.choice); when
        #: attached, run() uses the instrumented _run_chosen loop.
        self._chooser: Optional["Chooser"] = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process context)."""
        return self._active_process

    # -- factories -------------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None, name: str = "") -> Timeout:
        """Create a timeout firing ``delay`` ns from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> "MiniProcess":
        """Run ``generator`` as a fire-and-forget process.

        Like :meth:`process` but the returned handle is not an event: it
        cannot be joined or interrupted, and its completion leaves no
        termination event on the heap.  Use it for hot per-message work
        whose result nobody waits on (the relative order of all other
        events is unchanged — see :class:`MiniProcess`).
        """
        return MiniProcess(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def wait_any(self, events: Iterable[Event], name: str = "") -> Event:
        """First-of waiter without :class:`AnyOf`/``ConditionValue`` overhead.

        Returns an event that succeeds with the *first* sub-event to succeed
        (the sub-event itself is the value) or fails with the first failure.
        Unlike :class:`AnyOf` it allocates one shared callback instead of a
        condition object, a sub-event tuple and a ``ConditionValue`` — the
        allocation-free way to multiplex a poll loop over several queues.
        An empty iterable succeeds immediately with ``None``.
        """
        out = Event(self, name=name)

        def _first(ev: Event) -> None:
            if out._value is not _EVENT_PENDING:
                if not ev._ok:
                    ev._defused = True
                return
            if ev._ok:
                out.succeed(ev)
            else:
                ev._defused = True
                out.fail(ev._value)  # type: ignore[arg-type]

        armed = False
        for ev in events:
            armed = True
            if ev.callbacks is None:
                _first(ev)
            else:
                ev.callbacks.append(_first)
        if not armed:
            out.succeed(None)
        return out

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        """Insert a triggered event into the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def _schedule_resume(self, process: Process, delay: float, priority: int = NORMAL) -> _Resume:
        """Fast path: schedule a direct process resume ``delay`` ns from now."""
        pool = self._resume_pool
        rec = pool.pop() if pool else _Resume()
        rec.process = process
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, rec))
        self._seq += 1
        return rec

    def call_later(self, delay: float, fn: Callable[[object], None], arg: object = None) -> None:
        """Run ``fn(arg)`` after ``delay`` ns (fire-and-forget, no Event).

        Equivalent to hanging a callback off a :class:`Timeout` but backed by
        a pooled record; scheduling order is identical (NORMAL priority, next
        sequence number).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if not self._fastpath:
            ev = Timeout(self, delay)
            ev.callbacks.append(lambda _ev, fn=fn, arg=arg: fn(arg))
            return
        pool = self._cb_pool
        rec = pool.pop() if pool else _Callback()
        rec.fn = fn
        rec.arg = arg
        heapq.heappush(self._queue, (self._now + delay, NORMAL, self._seq, rec))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def events_scheduled(self) -> int:
        """Total heap records scheduled so far (monotone; ~events simulated)."""
        return self._seq

    def on_time_shift(self, hook: Callable[[float], None]) -> None:
        """Register ``hook(shift_ns)`` to run after every bulk clock advance.

        Components that store *absolute* timestamps (the DVFS duty clock,
        an in-progress busy-poll start) register here so
        :meth:`advance_clock` keeps their ``now - t`` arithmetic invariant.
        Relative state (delays, pending-event offsets) needs nothing.
        """
        self._time_hooks.append(hook)

    def attach_monitor(self, monitor: "Optional[ProtocolMonitor]") -> None:
        """Attach a protocol invariant monitor (see :mod:`repro.verify`).

        Component hook sites (CQ push, QP modify, the NIC's post/dispatch/
        retransmit paths) consult ``sim._monitor`` behind an ``is None``
        guard, so attaching after construction is equivalent to the
        ``monitors=True`` constructor path minus strictness defaults.
        """
        self._monitor = monitor

    def attach_chooser(self, chooser: "Optional[Chooser]") -> None:
        """Attach a deterministic choice-point hook for model checking.

        With a chooser attached, :meth:`run` delegates to the instrumented
        :meth:`_run_chosen` loop: whenever more than one heap record shares
        the minimal ``(time, priority)``, the chooser picks which one
        dispatches next (index into the FIFO-ordered front).  Index 0 at
        every choice point reproduces the default sequence-number order
        exactly, so a chooser that always answers 0 is bit-identical to no
        chooser at all.  Detach with ``attach_chooser(None)``.
        """
        self._chooser = chooser

    def register_state_provider(self, provider: Callable[[], tuple]) -> None:
        """Register a component-state fingerprint source for cycle probes.

        ``provider()`` must cheaply return a tuple of plain values that
        fully determine the component's future *timing* influence (e.g. a
        turbo core's duty EMA).  :class:`repro.sim.fastforward.FastForward`
        folds every provider into its steady-state signature, so state the
        providers expose can never silently break an extrapolation.
        """
        self._state_providers.append(provider)

    def component_state(self) -> tuple:
        """All registered providers' fingerprints, in registration order."""
        return tuple(p() for p in self._state_providers)

    def advance_clock(self, until: float) -> int:
        """Jump the clock to ``until``, translating every pending event.

        The bulk-advance primitive behind steady-state fast-forward (see
        :mod:`repro.sim.fastforward`): the whole pending schedule is shifted
        by ``until - now`` so every relative offset — and therefore every
        future inter-event delta — is preserved bit-for-bit when the jump
        amount and the pending offsets share the clock's current ulp grid.

        Integrity checks: the jump must not go backwards, no pending event
        may already be in the past, and after the shift the earliest event
        must not precede the new ``now``.  The shift mutates the heap list
        *in place* (``run()`` holds a local binding to it) and a uniform
        shift is order-preserving, so the heap invariant survives.  Returns
        the number of pending records translated.
        """
        shift = until - self._now
        if shift < 0:
            raise SimulationError(
                f"advance_clock({until}) is in the past (now={self._now})"
            )
        queue = self._queue
        if queue and queue[0][0] < self._now:  # pragma: no cover - invariant
            raise SimulationError("pending event predates the clock")
        if shift > 0.0:
            if queue:
                queue[:] = [(t + shift, p, s, e) for (t, p, s, e) in queue]
                if queue[0][0] < until:  # pragma: no cover - invariant
                    raise SimulationError(
                        "advance_clock shifted an event into the past"
                    )
            self._now = until
            for hook in self._time_hooks:
                hook(shift)
        return len(queue)

    def step(self) -> None:
        """Process exactly one event (or fast-path record)."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise _EmptySchedule() from None
        if self._sanitize is not None:
            self._sanitize.on_dispatch(when, _prio, event)
        if when < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("event scheduled in the past")
        self._now = when

        cls = event.__class__
        if cls is _Resume:
            process = event.process
            event.process = None
            self._resume_pool.append(event)
            if process is not None:
                process._step(None, None)
            return
        if cls is _Callback:
            fn, arg = event.fn, event.arg
            event.fn = event.arg = None
            self._cb_pool.append(event)
            fn(arg)
            return

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody waited for: surface it instead of losing it.
            raise event._value

    # -- running ----------------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        ``until`` may be:

        - ``None`` — run until no events remain;
        - a number — run until the clock reaches that time;
        - an :class:`Event` — run until the event is processed and return its
          value (raising its exception if it failed).
        """
        if self._chooser is not None:
            return self._run_chosen(until)
        if self._sanitize is not None:
            return self._run_sanitized(until)
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value  # type: ignore[misc]
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        # Hot loop: locals bound once, record dispatch inlined.  This is the
        # innermost loop of every benchmark; it must not allocate.
        queue = self._queue
        heappop = heapq.heappop
        resume_pool = self._resume_pool
        cb_pool = self._cb_pool
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value  # type: ignore[misc]
            if not queue:
                if stop_event is not None:
                    raise SimulationError(
                        "run() stop event will never be triggered: no events left"
                    )
                if deadline != float("inf"):
                    self._now = deadline
                return None
            if queue[0][0] > deadline:
                self._now = deadline
                return None

            when, _prio, _seq, event = heappop(queue)
            self._now = when
            cls = event.__class__
            if cls is _Resume:
                process = event.process
                event.process = None
                resume_pool.append(event)
                if process is not None:
                    process._step(None, None)
                continue
            if cls is _Callback:
                fn, arg = event.fn, event.arg
                event.fn = event.arg = None
                cb_pool.append(event)
                fn(arg)
                continue

            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

    def _run_sanitized(self, until: "float | Event | None" = None) -> object:
        """Instrumented twin of :meth:`run` used when a sanitizer is attached.

        Same semantics, but each dispatch first reports to the
        :class:`~repro.sanitize.runtime.RuntimeSanitizer` (bucket
        accounting for the same-timestamp race detector, the RNG
        in-dispatch window, the no-time-travel assertion).  Kept separate
        so the sanitizers-off hot loop above stays branch-free.
        """
        san = self._sanitize
        san.begin_run()
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value  # type: ignore[misc]
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        queue = self._queue
        heappop = heapq.heappop
        resume_pool = self._resume_pool
        cb_pool = self._cb_pool
        try:
            while True:
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    stop_event._defused = True
                    raise stop_event._value  # type: ignore[misc]
                if not queue:
                    if stop_event is not None:
                        raise SimulationError(
                            "run() stop event will never be triggered: no events left"
                        )
                    if deadline != float("inf"):
                        self._now = deadline
                    return None
                if queue[0][0] > deadline:
                    self._now = deadline
                    return None

                when, prio, _seq, event = heappop(queue)
                san.on_dispatch(when, prio, event)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
                san.in_dispatch = True
                try:
                    cls = event.__class__
                    if cls is _Resume:
                        process = event.process
                        event.process = None
                        resume_pool.append(event)
                        if process is not None:
                            process._step(None, None)
                        continue
                    if cls is _Callback:
                        fn, arg = event.fn, event.arg
                        event.fn = event.arg = None
                        cb_pool.append(event)
                        fn(arg)
                        continue

                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                finally:
                    san.in_dispatch = False
        finally:
            san.finish()

    def _run_chosen(self, until: "float | Event | None" = None) -> object:
        """Instrumented twin of :meth:`run` used when a chooser is attached.

        Same semantics, but whenever several heap records share the minimal
        ``(time, priority)`` — a genuine simultaneity the default loop
        breaks by insertion order — the whole tied front is popped and the
        chooser selects which record dispatches; the rest are pushed back
        with their original keys (order-preserving, so later choice points
        see the same FIFO front).  A chooser answering 0 everywhere
        reproduces the default schedule bit-for-bit.  Kept separate so the
        chooser-off hot loop in :meth:`run` stays branch-free.
        """
        chooser = self._chooser
        assert chooser is not None
        stop_event: Optional[Event] = None
        if until is None:
            deadline = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            deadline = float("inf")
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value  # type: ignore[misc]
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"run(until={deadline}) is in the past (now={self._now})"
                )

        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        resume_pool = self._resume_pool
        cb_pool = self._cb_pool
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value  # type: ignore[misc]
            if not queue:
                if stop_event is not None:
                    raise SimulationError(
                        "run() stop event will never be triggered: no events left"
                    )
                if deadline != float("inf"):
                    self._now = deadline
                return None
            if queue[0][0] > deadline:
                self._now = deadline
                return None

            record = heappop(queue)
            when, prio = record[0], record[1]
            # Gather the tied front: heap pops of equal keys come out in
            # sequence order, i.e. exactly the default dispatch order.
            if queue and not queue[0][0] > when and queue[0][1] == prio:
                front = [record]
                while queue and not queue[0][0] > when and queue[0][1] == prio:
                    front.append(heappop(queue))
                idx = chooser.choose(len(front), front)
                record = front.pop(idx)
                for rec in front:
                    heappush(queue, rec)
            event = record[3]
            self._now = when
            cls = event.__class__
            if cls is _Resume:
                process = event.process
                event.process = None
                resume_pool.append(event)
                if process is not None:
                    process._step(None, None)
                continue
            if cls is _Callback:
                fn, arg = event.fn, event.arg
                event.fn = event.arg = None
                cb_pool.append(event)
                fn(arg)
                continue

            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

    def run_until_idle(self) -> None:
        """Drain every pending event (alias of ``run(None)`` for readability)."""
        self.run(None)


# Sentinel shared with events.py for the wait_any fast check.
from repro.sim.events import _PENDING as _EVENT_PENDING  # noqa: E402
