"""Generator-based cooperative processes.

A process wraps a generator that ``yield``-s :class:`~repro.sim.events.Event`
instances — or bare numbers.  When the yielded event is processed, the
process resumes with the event's value (or has the event's exception thrown
into it).  A process is itself an event, so other processes can wait for
("join") it, and its return value (``return x`` in the generator) becomes
the event value.

Scalar-yield protocol
---------------------

``yield 250.0`` (any non-bool ``float``/``int``) means "sleep 250 ns" and is
exactly equivalent to ``yield sim.timeout(250.0)``.  With the engine fast
path enabled (the default) the sleep is backed by a pooled resume record
instead of a Timeout event — no allocation, no callback dispatch — while
keeping the identical ``(time, priority, sequence)`` heap key, so the event
interleaving (and therefore every simulation result) is unchanged.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import NORMAL, URGENT, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

ProcessGenerator = Generator[Event, object, object]


class _Resume:
    """Pooled heap record: resume ``process`` with value ``None``.

    The engine's scalar-yield fast path schedules these instead of
    :class:`~repro.sim.events.Timeout` events.  Tombstoning
    (``process = None``, done by interrupt delivery) cancels a pending
    record in place; the engine skips tombstones and recycles them.
    """

    __slots__ = ("process",)

    def __init__(self) -> None:
        self.process = None


class Initialize(Event):
    """Internal event that kicks a new process on its first step."""

    __slots__ = ("process",)

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim, name=f"init:{process.name}")
        self.process = process
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, URGENT, 0.0)


class Interruption(Event):
    """Internal immediate event carrying a :class:`ProcessInterrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object):
        super().__init__(process.sim, name=f"interrupt:{process.name}")
        if process.processed:
            raise SimulationError(f"{process!r} has terminated; cannot interrupt")
        if process is process.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = ProcessInterrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        process.sim._schedule(self, URGENT, 0.0)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.processed:
            return  # terminated between scheduling and delivery
        # Detach the process from whatever it currently waits on, then resume
        # it with the interrupt exception.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        pending = process._pending
        if pending is not None:
            # Sleeping on a fast-path resume record: tombstone it in place
            # (the engine skips and recycles it when it pops).
            pending.process = None
            process._pending = None
        process._resume(self)


class Process(Event):
    """A running simulation process (also usable as a join event)."""

    __slots__ = ("generator", "_target", "_send", "_throw", "_pending")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._target: Optional[Event] = None
        self._pending = None  # in-flight fast-path _Resume record, if any
        if sim._fastpath:
            # Same (URGENT, seq) heap key Initialize would have used.
            pool = sim._resume_pool
            rec = pool.pop() if pool else _Resume()
            rec.process = self
            heappush(sim._queue, (sim._now, URGENT, sim._seq, rec))
            sim._seq += 1
            self._pending = rec
        else:
            Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator has terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None while running)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process immediately."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if event._ok:
            self._step(event._value, None)
        else:
            event._defused = True
            self._step(None, event._value)  # type: ignore[arg-type]

    def _step(self, value: object, exc: Optional[BaseException]) -> None:
        """Core resume loop: feed ``value``/``exc`` in, dispatch the yield."""
        sim = self.sim
        sim._active_process = self
        self._pending = None
        send = self._send
        while True:
            try:
                if exc is None:
                    target = send(value)
                else:
                    pending_exc = exc
                    exc = None
                    target = self._throw(pending_exc)
            except StopIteration as stop:
                sim._active_process = None
                self._ok = True
                self._value = stop.value
                sim._schedule(self, URGENT, 0.0)
                return
            except BaseException as crashed:  # noqa: BLE001 - process crashed
                sim._active_process = None
                self._ok = False
                self._value = crashed
                sim._schedule(self, URGENT, 0.0)
                return

            cls = target.__class__
            if cls is float or cls is int:
                # Scalar delay.  Exact-type check: bool (an int subclass) and
                # numpy scalars deliberately fall through to the error path.
                if target < 0:
                    value = None
                    exc = SimulationError(
                        f"process {self.name!r} yielded a negative delay: {target!r}"
                    )
                    continue
                if sim._fastpath:
                    # Inlined sim._schedule_resume: one sleep per event-loop
                    # dispatch makes this the hottest line in the simulator.
                    pool = sim._resume_pool
                    rec = pool.pop() if pool else _Resume()
                    rec.process = self
                    heappush(sim._queue, (sim._now + target, NORMAL, sim._seq, rec))
                    sim._seq += 1
                    self._pending = rec
                    sim._active_process = None
                    return
                target = Timeout(sim, float(target))
            elif not isinstance(target, Event):
                value = None
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                continue
            elif target.sim is not sim:
                value = None
                exc = SimulationError(
                    f"process {self.name!r} yielded an event from another simulator"
                )
                continue

            callbacks = target.callbacks
            if callbacks is not None:
                # Not yet processed: park until it is.
                callbacks.append(self._resume)
                self._target = target
                sim._active_process = None
                return
            # Already processed: feed its outcome straight back in.
            if target._ok:
                value = target._value
                exc = None
            else:
                target._defused = True
                value = None
                exc = target._value  # type: ignore[assignment]

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class MiniProcess:
    """Fire-and-forget process: runs a generator but is not itself an event.

    Used by :meth:`Simulator.spawn` for hot per-message work (NIC message
    execution, ACK generation, IRQ delivery) that nothing ever joins or
    interrupts.  Skipping the join-event machinery saves one termination
    event (allocation + schedule + pop) per spawn.  Dropping that heap
    entry cannot change the interleaving of the remaining events: it never
    has callbacks, and removing an allocation from the sequence-number
    stream preserves the relative order of all other entries.

    A crash in a spawned generator propagates straight out of
    :meth:`Simulator.run` (there is no join event to defuse it into).
    """

    __slots__ = ("sim", "name", "generator", "_send", "_throw", "_pending")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "spawn")
        self.generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._pending = None
        if sim._fastpath:
            pool = sim._resume_pool
            rec = pool.pop() if pool else _Resume()
            rec.process = self
            heappush(sim._queue, (sim._now, URGENT, sim._seq, rec))
            sim._seq += 1
            self._pending = rec
        else:
            kick = Event(sim, name=self.name)
            kick._ok = True
            kick._value = None
            kick.callbacks.append(self._resume)
            sim._schedule(kick, URGENT, 0.0)

    def _resume(self, event: Event) -> None:
        if event._ok:
            self._step(event._value, None)
        else:
            event._defused = True
            self._step(None, event._value)  # type: ignore[arg-type]

    def _step(self, value: object, exc: Optional[BaseException]) -> None:
        sim = self.sim
        sim._active_process = self  # type: ignore[assignment]
        self._pending = None
        send = self._send
        while True:
            try:
                if exc is None:
                    target = send(value)
                else:
                    pending_exc = exc
                    exc = None
                    target = self._throw(pending_exc)
            except StopIteration:
                sim._active_process = None
                return
            except BaseException:  # noqa: BLE001 - crash surfaces from run()
                sim._active_process = None
                raise

            cls = target.__class__
            if cls is float or cls is int:
                if target < 0:
                    value = None
                    exc = SimulationError(
                        f"process {self.name!r} yielded a negative delay: {target!r}"
                    )
                    continue
                if sim._fastpath:
                    pool = sim._resume_pool
                    rec = pool.pop() if pool else _Resume()
                    rec.process = self
                    heappush(sim._queue, (sim._now + target, NORMAL, sim._seq, rec))
                    sim._seq += 1
                    self._pending = rec
                    sim._active_process = None
                    return
                target = Timeout(sim, float(target))
            elif not isinstance(target, Event):
                value = None
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                continue
            elif target.sim is not sim:
                value = None
                exc = SimulationError(
                    f"process {self.name!r} yielded an event from another simulator"
                )
                continue

            callbacks = target.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
                sim._active_process = None
                return
            if target._ok:
                value = target._value
                exc = None
            else:
                target._defused = True
                value = None
                exc = target._value  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<MiniProcess {self.name!r}>"
