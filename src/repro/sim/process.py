"""Generator-based cooperative processes.

A process wraps a generator that ``yield``-s :class:`~repro.sim.events.Event`
instances.  When the yielded event is processed, the process resumes with the
event's value (or has the event's exception thrown into it).  A process is
itself an event, so other processes can wait for ("join") it, and its return
value (``return x`` in the generator) becomes the event value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

ProcessGenerator = Generator[Event, object, object]


class Initialize(Event):
    """Internal event that kicks a new process on its first step."""

    __slots__ = ("process",)

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim, name=f"init:{process.name}")
        self.process = process
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, URGENT, 0.0)


class Interruption(Event):
    """Internal immediate event carrying a :class:`ProcessInterrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object):
        super().__init__(process.sim, name=f"interrupt:{process.name}")
        if process.processed:
            raise SimulationError(f"{process!r} has terminated; cannot interrupt")
        if process is process.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = ProcessInterrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        process.sim._schedule(self, URGENT, 0.0)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.processed:
            return  # terminated between scheduling and delivery
        # Detach the process from whatever it currently waits on, then resume
        # it with the interrupt exception.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        process._resume(self)


class Process(Event):
    """A running simulation process (also usable as a join event)."""

    __slots__ = ("generator", "_target", "is_alive_flag")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True until the wrapped generator has terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None while running)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process immediately."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        exception: Optional[BaseException] = None
        while True:
            try:
                if event is None or event._ok:
                    value = None if event is None else event._value
                    next_event = self.generator.send(value)
                else:
                    event._defused = True
                    assert isinstance(event._value, BaseException)
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self._ok = True
                self._value = stop.value
                sim._schedule(self, URGENT, 0.0)
                return
            except BaseException as exc:  # noqa: BLE001 - process crashed
                sim._active_process = None
                self._ok = False
                self._value = exc
                sim._schedule(self, URGENT, 0.0)
                return

            if not isinstance(next_event, Event):
                exception = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(sim)
                event._ok = False
                event._value = exception
                event._defused = True
                continue
            if next_event.sim is not sim:
                exception = SimulationError(
                    f"process {self.name!r} yielded an event from another simulator"
                )
                event = Event(sim)
                event._ok = False
                event._value = exception
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Not yet processed: park until it is.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                sim._active_process = None
                return
            # Already processed: feed its outcome straight back in.
            event = next_event

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
