"""Capacity-limited resources.

Used for CPU cores (capacity 1 per core), NIC execution units, IRQ lines
and the like.  A request is an event that succeeds when a slot is granted::

    req = core.request()
    yield req
    try:
        yield sim.timeout(busy_time)
    finally:
        core.release(req)

Requests also work as context managers for the common acquire/release
bracket (``with resource.request() as req: yield req``).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.sim.events import _PENDING, NORMAL, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        # Inlined Event.__init__ with the resource's precomputed request name
        # (requests are allocated once per core/NIC grab — very hot).  The
        # callbacks list is left unset; Resource.request fills it in (None
        # for an inline grant, a fresh list when the request queues).
        self.sim = resource.sim
        self.name = resource._req_name
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.priority = priority
        resource._order_seq += 1
        self._order = resource._order_seq

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class Resource:
    """FIFO resource with integer capacity."""

    __slots__ = (
        "sim",
        "capacity",
        "name",
        "users",
        "queue",
        "_order_seq",
        "_busy_integral",
        "_last_change",
        "_req_name",
    )

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._req_name = f"req:{name}"
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self._order_seq = 0
        # Utilization accounting: busy integral for average-occupancy stats.
        self._busy_integral = 0.0
        self._last_change = sim.now

    def _next_order(self) -> int:
        self._order_seq += 1
        return self._order_seq

    # -- accounting ------------------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        # sim: allow-float-eq(same-instant skip; both floats are copies of sim.now)
        if now != self._last_change:
            self._busy_integral += len(self.users) * (now - self._last_change)
            self._last_change = now

    def utilization(self, since: float = 0.0) -> float:
        """Average fraction of capacity busy since ``since`` (default t=0)."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    # -- protocol ---------------------------------------------------------------

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event succeeds when granted.

        An uncontended grant completes the request *inline* (the event is
        born processed), so ``yield req`` continues the requester without a
        heap round trip — the requester was going to run next at this
        timestamp anyway.  Contended requests queue and are granted through
        the event loop by :meth:`release`, preserving FIFO wake order.
        """
        req = Request(self, priority=priority)
        sim = self.sim
        now = sim._now
        # sim: allow-float-eq(same-instant skip; both floats are copies of sim.now)
        if now != self._last_change:
            self._busy_integral += len(self.users) * (now - self._last_change)
            self._last_change = now
        if len(self.users) < self.capacity:
            self.users.append(req)
            req._value = req
            req.callbacks = None
            parked = False
        else:
            req.callbacks = []
            self._enqueue(req)
            parked = True
        san = sim._sanitize
        if san is not None:
            # Contended when the grant raced a full resource: an inline win
            # or a park decides the winner by heap-insertion seq.
            san.note_touch(self, f"resource {self.name!r}", "request",
                           contended=parked)
        return req

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self.queue.pop(0) if self.queue else None

    def release(self, req: Request) -> None:
        """Return a slot.  Releasing a queued (ungranted) request cancels it."""
        sim = self.sim
        now = sim._now
        # sim: allow-float-eq(same-instant skip; both floats are copies of sim.now)
        if now != self._last_change:
            self._busy_integral += len(self.users) * (now - self._last_change)
            self._last_change = now
        san = sim._sanitize
        if san is not None:
            # A release hands the slot to the FIFO head regardless of seq
            # order within the bucket, so it never contends by itself.
            san.note_touch(self, f"resource {self.name!r}", "release",
                           contended=False)
        try:
            self.users.remove(req)
        except ValueError:
            self._cancel(req)
            return
        nxt = self._dequeue()
        if nxt is not None:
            self.users.append(nxt)
            nxt.succeed(nxt)

    def _cancel(self, req: Request) -> None:
        try:
            self.queue.remove(req)
        except ValueError:
            raise SimulationError(
                f"release of {req!r} that neither holds nor waits for {self.name}"
            ) from None


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by (priority, FIFO).

    Lower priority values are served first, matching SimPy convention.
    """

    __slots__ = ("_heap",)

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "presource"):
        super().__init__(sim, capacity=capacity, name=name)
        self._heap: list[Request] = []

    def _enqueue(self, req: Request) -> None:
        heapq.heappush(self._heap, req)

    def _dequeue(self) -> Optional[Request]:
        return heapq.heappop(self._heap) if self._heap else None

    def _cancel(self, req: Request) -> None:
        try:
            self._heap.remove(req)
            heapq.heapify(self._heap)
        except ValueError:
            raise SimulationError(
                f"release of {req!r} that neither holds nor waits for {self.name}"
            ) from None

    @property
    def queue_length(self) -> int:
        return len(self._heap)
