"""Structured tracing and counters.

Tracing exists for three consumers: tests (assert that a component emitted
the expected sequence of records), the observability CoRD policy (flow
statistics), and the :mod:`repro.telemetry` exporters (Perfetto/JSONL op
spans).  The trace is disabled by default and costs a single branch per
call site when off.

Retention is bounded by ``max_records``: a ring buffer keeps the newest
records and counts what it evicted (``dropped``).  ``max_records=0``
retains nothing but still notifies live subscribers, so long simulations
can stream records to an exporter without holding the whole trace in RAM.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced happening."""

    time: float
    category: str
    event: str
    fields: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def asdict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "time": self.time,
            "category": self.category,
            "event": self.event,
        }
        out.update(dict(self.fields))
        return out


class Trace:
    """An append-only trace with category filtering and bounded retention."""

    __slots__ = ("enabled", "categories", "max_records", "records",
                 "dropped", "_subscribers", "_span_seq")

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[set[str]] = None,
        max_records: Optional[int] = None,
    ):
        self.enabled = enabled
        #: If non-None, only these categories are recorded.
        self.categories = categories
        #: Retention cap: None = unbounded, 0 = stream-only (notify
        #: subscribers, keep nothing), N = ring buffer of the newest N.
        self.max_records = max_records
        self.records: deque[TraceRecord] = deque(maxlen=max_records)
        #: Records evicted by the ring buffer (or never retained at cap 0).
        self.dropped = 0
        #: Optional live subscribers (e.g. observability policy exporters).
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        # Span-id allocator for repro.telemetry op spans.  Lives here so
        # span instrumentation rides the same enabled gate as emit().
        self._span_seq = 0

    def emit(self, time: float, category: str, event: str, **fields: object) -> None:
        """Record an event if tracing is on and the category passes the filter."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, event, tuple(sorted(fields.items())))
        records = self.records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def new_span(self) -> int:
        """Allocate the next op-span id (see :mod:`repro.telemetry.spans`)."""
        self._span_seq += 1
        return self._span_seq

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(callback)

    def select(self, category: Optional[str] = None, event: Optional[str] = None) -> list[TraceRecord]:
        """Records matching the given category and/or event name."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (event is None or r.event == event)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


@dataclass
class Counter:
    """A monotonically increasing counter with byte/op accounting."""

    name: str
    ops: int = 0
    bytes: int = 0
    _by_key: dict[str, int] = field(default_factory=dict)

    def add(self, nbytes: int = 0, key: Optional[str] = None) -> None:
        self.ops += 1
        self.bytes += nbytes
        if key is not None:
            self._by_key[key] = self._by_key.get(key, 0) + 1

    def by_key(self, key: str) -> int:
        return self._by_key.get(key, 0)

    def snapshot(self) -> dict[str, object]:
        return {
            "name": self.name,
            "ops": self.ops,
            "bytes": self.bytes,
            "by_key": dict(self._by_key),
        }
