"""Structured tracing and counters.

Tracing exists for two consumers: tests (assert that a component emitted the
expected sequence of records) and the observability CoRD policy (flow
statistics).  The trace is disabled by default and costs a single branch per
call site when off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced happening."""

    time: float
    category: str
    event: str
    fields: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def asdict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "time": self.time,
            "category": self.category,
            "event": self.event,
        }
        out.update(dict(self.fields))
        return out


class Trace:
    """An append-only trace with category filtering."""

    def __init__(self, enabled: bool = True, categories: Optional[set[str]] = None):
        self.enabled = enabled
        #: If non-None, only these categories are recorded.
        self.categories = categories
        self.records: list[TraceRecord] = []
        #: Optional live subscribers (e.g. observability policy exporters).
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, category: str, event: str, **fields: object) -> None:
        """Record an event if tracing is on and the category passes the filter."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, event, tuple(sorted(fields.items())))
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(callback)

    def select(self, category: Optional[str] = None, event: Optional[str] = None) -> list[TraceRecord]:
        """Records matching the given category and/or event name."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (event is None or r.event == event)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()


@dataclass
class Counter:
    """A monotonically increasing counter with byte/op accounting."""

    name: str
    ops: int = 0
    bytes: int = 0
    _by_key: dict[str, int] = field(default_factory=dict)

    def add(self, nbytes: int = 0, key: Optional[str] = None) -> None:
        self.ops += 1
        self.bytes += nbytes
        if key is not None:
            self._by_key[key] = self._by_key.get(key, 0) + 1

    def by_key(self, key: str) -> int:
        return self._by_key.get(key, 0)

    def snapshot(self) -> dict[str, object]:
        return {
            "name": self.name,
            "ops": self.ops,
            "bytes": self.bytes,
            "by_key": dict(self._by_key),
        }
