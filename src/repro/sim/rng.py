"""Named, seeded random-number streams.

Components draw jitter from their *own* stream (``sim.rng.stream("nic0")``)
derived deterministically from the master seed and the stream name.  Adding
a new randomized component therefore never perturbs the draws — and thus the
results — of existing components, which keeps calibrated benchmarks stable.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Registry of independent ``numpy.random.Generator`` streams."""

    __slots__ = ("master_seed", "_streams", "_sanitize")

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}
        #: Set by the owning Simulator when REPRO_SANITIZE is on; streams
        #: are then wrapped in draw-recording proxies (values unchanged).
        self._sanitize = None

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            if self._sanitize is not None:
                # Duck-typed stand-in: forwards every draw to `gen`.
                gen = self._sanitize.wrap_stream(name, gen)  # type: ignore[assignment]
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; they re-derive from the master seed on next use."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.master_seed} streams={sorted(self._streams)}>"


def lognormal_jitter(
    rng: np.random.Generator, mean: float, cv: float
) -> float:
    """Draw a lognormal value with the given mean and coefficient of variation.

    Used for virtualized-system cost models (system *A*) where syscall and
    interrupt costs are noisy with a heavy right tail.  ``cv == 0`` returns
    ``mean`` exactly (and draws nothing), so profiles with no jitter stay
    deterministic even if a stream exists.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if mean == 0 or cv == 0:
        return mean
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean) - sigma2 / 2.0
    return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))
