"""Named, seeded random-number streams.

Components draw jitter from their *own* stream (``sim.rng.stream("nic0")``)
derived deterministically from the master seed and the stream name.  Adding
a new randomized component therefore never perturbs the draws — and thus the
results — of existing components, which keeps calibrated benchmarks stable.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np


class RngRegistry:
    """Registry of independent ``numpy.random.Generator`` streams."""

    __slots__ = ("master_seed", "_streams", "_jitter", "_sanitize")

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._jitter: dict[str, JitterStream] = {}
        #: Set by the owning Simulator when REPRO_SANITIZE is on; streams
        #: are then wrapped in draw-recording proxies (values unchanged).
        self._sanitize = None

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            if self._sanitize is not None:
                # Duck-typed stand-in: forwards every draw to `gen`.
                gen = self._sanitize.wrap_stream(name, gen)  # type: ignore[assignment]
            self._streams[name] = gen
        return gen

    def jitter_stream(self, name: str) -> "JitterStream":
        """A batched lognormal-jitter source over the named stream.

        The stream must be consumed *exclusively* through the returned
        source: it prefetches standard normals in blocks (the per-draw
        numpy scalar call is the costliest step of every jittered syscall),
        so a direct draw on the same generator would interleave with the
        prefetched block and change the sequence.
        """
        js = self._jitter.get(name)
        if js is None:
            js = self._jitter[name] = JitterStream(self.stream(name))
        return js

    def reset(self) -> None:
        """Drop all streams; they re-derive from the master seed on next use."""
        self._streams.clear()
        self._jitter.clear()

    def stream_states(self) -> tuple:
        """Bit-exact positions of every named stream, without drawing.

        Reading ``bit_generator.state`` is a pure observation (the sanitize
        proxies forward non-callable attributes untouched), so this is safe
        to call from invariant checks — the steady-state fast-forward probe
        uses it to prove no stream advanced inside a measurement loop.
        """
        out = []
        jitter = self._jitter
        for name in sorted(self._streams):
            state = self._streams[name].bit_generator.state
            inner = state.get("state")
            if isinstance(inner, dict):
                inner = tuple(sorted(inner.items()))
            js = jitter.get(name)
            # A jitter source prefetches normals in blocks: its generator
            # state only moves at refills, so the remaining buffer depth
            # must join the fingerprint — together they change on every
            # draw, exactly like an unbuffered stream's state would.
            out.append((name, state.get("bit_generator"), inner,
                        state.get("has_uint32"), state.get("uinteger"),
                        len(js._buf) if js is not None else -1))
        return tuple(out)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.master_seed} streams={sorted(self._streams)}>"


#: Cache of (mean, cv) -> (mu, sigma) for :func:`lognormal_jitter`.  The
#: derived parameters are pure functions of the inputs, so caching cannot
#: change any drawn value; it only skips the per-call numpy scalar math.
_JITTER_PARAMS: dict = {}


def lognormal_jitter(
    rng: np.random.Generator, mean: float, cv: float
) -> float:
    """Draw a lognormal value with the given mean and coefficient of variation.

    Used for virtualized-system cost models (system *A*) where syscall and
    interrupt costs are noisy with a heavy right tail.  ``cv == 0`` returns
    ``mean`` exactly (and draws nothing), so profiles with no jitter stay
    deterministic even if a stream exists.
    """
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if mean == 0 or cv == 0:
        return mean
    params = _JITTER_PARAMS.get((mean, cv))
    if params is None:
        # Derived once per (mean, cv) — the numpy scalar ops here cost
        # microseconds, and jitter draws sit on the per-op syscall path.
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        if len(_JITTER_PARAMS) >= 4096:
            _JITTER_PARAMS.clear()
        params = _JITTER_PARAMS[(mean, cv)] = (float(mu), float(np.sqrt(sigma2)))
    return float(rng.lognormal(mean=params[0], sigma=params[1]))


#: Prefetch block for :class:`JitterStream` (draws, not bytes).
_JITTER_BLOCK = 256


class JitterStream:
    """Batched lognormal jitter over one dedicated rng stream.

    Bit-identical to per-call :func:`lognormal_jitter` on the same stream:
    ``Generator.lognormal(mu, sigma)`` consumes the bit stream exactly as
    ``standard_normal()`` does and then computes ``exp(mu + sigma * z)`` in
    C doubles — the same IEEE operations this class applies in Python to a
    prefetched block of standard normals.  Only the per-draw numpy scalar
    call overhead is amortized; every drawn value and the stream's position
    after each block are unchanged.
    """

    __slots__ = ("_gen", "_buf")

    def __init__(self, gen: np.random.Generator):
        self._gen = gen
        self._buf: list[float] = []

    def draw(self, mean: float, cv: float) -> float:
        """Lognormal with the given mean and coefficient of variation."""
        if mean == 0 or cv == 0:
            return mean
        params = _JITTER_PARAMS.get((mean, cv))
        if params is None:
            sigma2 = np.log(1.0 + cv * cv)
            mu = np.log(mean) - sigma2 / 2.0
            if len(_JITTER_PARAMS) >= 4096:
                _JITTER_PARAMS.clear()
            params = _JITTER_PARAMS[(mean, cv)] = (float(mu), float(np.sqrt(sigma2)))
        buf = self._buf
        if not buf:
            # Reversed so list.pop() hands the normals out in draw order.
            buf.extend(self._gen.standard_normal(_JITTER_BLOCK)[::-1].tolist())
        return math.exp(params[0] + params[1] * buf.pop())
