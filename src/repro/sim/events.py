"""Event primitives for the discrete-event engine.

An :class:`Event` moves through three states: *pending* (created, not yet
triggered), *triggered* (scheduled on the event queue with a value or an
exception) and *processed* (its callbacks have run).  Processes wait on
events by ``yield``-ing them; the engine resumes the process when the event
is processed.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

# Scheduling priorities: at equal timestamps, URGENT events (interrupts,
# resource releases) are processed before NORMAL ones, which precede LOW
# (e.g. simulation-end sentinels).  Ties beyond priority preserve FIFO order.
URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callbacks run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined sim._schedule(self, NORMAL, 0.0): succeed() is the hottest
        # trigger path (stores, resources, CQ wakeups).
        sim = self.sim
        heappush(sim._queue, (sim._now, NORMAL, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiters have the exception thrown into them; if nobody waits and the
        event is not :meth:`defuse`-d, the engine re-raises it from ``run``.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.sim._schedule(self, NORMAL, 0.0)

    # -- misc ------------------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed delay; scheduled at creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + sim._schedule: Timeouts are born triggered,
        # so skip the pending-state round trip.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(sim._queue, (sim._now + delay, NORMAL, sim._seq, self))
        sim._seq += 1


class ConditionValue:
    """Mapping-like result of a condition: events -> values, in wait order."""

    __slots__ = ("events", "_lookup")

    def __init__(self) -> None:
        self.events: list[Event] = []
        #: Lazily built set mirror of ``events`` for O(1) membership tests
        #: (rebuilt if ``events`` was reassigned/extended since last lookup).
        self._lookup: Optional[set[Event]] = None

    def __getitem__(self, event: Event) -> object:
        if event not in self:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        lookup = self._lookup
        if lookup is None or len(lookup) != len(self.events):
            lookup = self._lookup = set(self.events)
        return event in lookup

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, object]:
        return {e: e.value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a fixed set of sub-events.

    Subclasses define :meth:`_satisfied`.  The condition fails as soon as any
    sub-event fails (the sub-event is defused; its exception becomes the
    condition's).
    """

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str = ""):
        super().__init__(sim, name=name)
        self._events = tuple(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._count += 1
        if self._satisfied(self._count, len(self._events)):
            value = ConditionValue()
            value.events = [e for e in self._events if e.processed and e._ok]
            self.succeed(value)


class AllOf(Condition):
    """Triggered once *all* sub-events have succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggered once *any* sub-event has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
