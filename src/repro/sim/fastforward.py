"""Steady-state fast-forward: detect periodic measurement loops and skip them.

Every perftest loop (``repro.perftest.bw`` / ``repro.perftest.lat``) settles,
after warm-up, into an exactly periodic schedule: the same op costs, the same
queue occupancy, the same completion batching, cycle after cycle.  A
:class:`FastForward` probe watches the loop's *boundaries* (one per reaped
completion batch or ping-pong iteration) and, once the schedule provably
repeats, closes out the bulk of the remaining iterations arithmetically:
the counters jump, the simulator clock advances in one
:meth:`~repro.sim.engine.Simulator.advance_clock` bulk jump, and the loop
resumes simulating only a short tail.  Results are **bit-identical** to a
fully simulated run (golden-asserted in ``tests/test_fastforward.py`` and
``tests/test_golden_determinism.py``).

Detection is two-phase, so un-skippable runs pay almost nothing:

1. **Scan (cheap, every boundary)** — a per-step signature (time delta,
   scheduled-record delta, counter deltas, loop state, secondary-process
   activity, component timing state) goes into a hash map keyed by value;
   a signature recurring at distance ``p <= max_period`` nominates ``p``,
   which is accepted once the last ``confirm_periods`` periods of cheap
   steps are ``p``-periodic.
2. **Verify (expensive, ~p boundaries)** — for a nominated period the
   probe additionally snapshots the pending-event queue signature (every
   ``(t_event - now, priority, record type)`` offset) and the bit-exact
   position of every RNG stream, over a window of ``p + 2`` boundaries.
   The queue signature must repeat with period ``p`` and the RNG
   fingerprints must be *constant* across the window (a stream only ever
   moves forward, so constancy over a full period proves zero draws per
   cycle).  Any mismatch falls back to scanning, with escalating backoff
   per rejected period and direct escalation to ``2p`` when the cheap
   steps repeat at ``p`` but the queue does not (a sub-harmonic).

Exactness argument
------------------

If the verified signature captured the complete timing-relevant state,
two matching boundaries one period apart would make the evolution provably
periodic (the simulator is deterministic); the cheap ``confirm_periods``
history plus the two-period verify window guard the residual state the
signature cannot see (store contents, blocked peers' positions).

Simulated times are IEEE doubles, so repetition is only extrapolable while
additions stay *exact*.  Within one binade ``[2^e, 2^(e+1))`` every float is
a multiple of the fixed ulp ``2^(e-52)``; bit-equal deltas observed there
are exact differences (Sterbenz), so stepping the clock by the observed
period deltas and shifting every pending offset reproduces precisely the
times the full simulation would compute.  Crossing into the next binade
halves the mantissa grid and can re-round the very same arithmetic, so a
jump is always capped *inside* the current binade (including the farthest
pending-event offset); the probe then re-confirms the period on fresh
boundaries and jumps again.  Every jump also stops short of the next
counter *milestone* (the warm-up crossing, the measured-tail start) so the
transitions — ``t_start`` capture, drain, final signaled send — are always
simulated, never extrapolated.

Settling vs. never-periodic
---------------------------

System A's DVFS duty EMA makes runs *settle* rather than start periodic:
step signatures converge toward a fixed point over hundreds of boundaries.
Two mechanisms tell "still converging, keep scanning" apart from "jittered,
never periodic":

- A **quantized soft signature** (step floats rounded to 0.1 ns, component
  state dropped).  Settling runs revisit the same soft bucket while their
  exact bits still drift; jittered runs (lognormal draws move boundaries by
  tens of ns) do not.  A run whose soft signatures stop recurring is
  declared aperiodic quickly.
- **Drift projection** over soft-bucket revisits: the relative dt drift per
  revisit contracts geometrically while settling, so the probe fits the
  contraction factor and projects when the bits will pin.  If the
  projection says periodicity cannot arrive in time to pay for itself
  (or the drift is not contracting at all), the probe disarms early.
  The projection is advisory only — *arming* still requires a bit-exact
  recurrence plus the full verify window, so a wrong projection can only
  cost time, never exactness.

Long-idle cores make the settled state *reachable*: the duty governor
flushes EMAs below ``e**-48`` to an exact 0.0 and reports one canonical
"cold" tuple (see ``repro.hw.cpu._COLD_WINDOWS``), so a core abandoned
after setup does not smuggle unbounded staleness into every signature.

Auto-disarm
-----------

The probe refuses to arm (``reason`` says why) whenever exactness cannot
be proven: a :class:`~repro.faults.FaultPlan` attached to the fabric
(``faults``), full trace export in flight (``trace``), RNG draws inside
the verify window (``rng`` — e.g. system A's lognormal syscall jitter),
or no exact period emerging at all (``no-period``): soft signatures stop
recurring, the drift projection rules out timely pinning, or the overall
scan budget runs dry.  Disarmed probes cost one attribute check per
boundary.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

#: Relative drift below which a dt is considered pinned (~4 ulps).
_PIN_TOL = math.ldexp(1.0, -50)


class Skip:
    """One taken jump, as seen by the measurement loop."""

    __slots__ = ("counters", "cycles", "units")

    def __init__(self, counters: dict, cycles: int, units: int):
        #: Counter advances the loop must apply (name -> total delta).
        self.counters = counters
        #: Whole periods skipped by this jump.
        self.cycles = cycles
        #: Primary-counter units per period (for sample-pattern replication).
        self.units = units

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Skip cycles={self.cycles} units/cycle={self.units}>"


class FastForwardStats:
    """Skipped-work accounting for one probe (and the run-stats rollup)."""

    __slots__ = ("jumps", "cycles_skipped", "units_skipped",
                 "events_skipped", "time_skipped_ns")

    def __init__(self) -> None:
        self.jumps = 0
        self.cycles_skipped = 0
        self.units_skipped = 0
        self.events_skipped = 0
        self.time_skipped_ns = 0.0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class FastForward:
    """Cycle probe + analytic extrapolator for one measurement loop.

    Built by :mod:`repro.perftest.runner` when fast-forward is enabled
    (``REPRO_FASTFORWARD=1`` / ``--fast-forward`` / the config field) and
    handed to the loop, which calls :meth:`begin` once, :meth:`observe` at
    every driver-loop boundary, and — for loops with a coupled secondary
    process, like ``send_bw``'s transmitter — :meth:`observe_aux` /
    :meth:`take_aux` on the secondary side.
    """

    __slots__ = ("_sim", "label", "confirm_periods", "max_period", "stats",
                 "reason", "_enabled", "_primary", "_pidx", "_milestones",
                 "_keys", "_records", "_steps", "_nsteps", "_seen",
                 "_vperiod", "_vfull", "_vfp", "_vfail", "_vbad", "_fruitless",
                 "_soft_seen", "_last_soft", "_last_hard", "_drift",
                 "_last_bound", "_jumped_periods", "_aux_raw", "_aux_last",
                 "_aux_pending", "_since_aux")

    def __init__(
        self,
        sim: "Simulator",
        faults: object = None,
        confirm_periods: int = 3,
        max_period: int = 8,
        label: str = "",
    ):
        self._sim = sim
        self.label = label
        self.confirm_periods = max(2, int(confirm_periods))
        self.max_period = max(1, int(max_period))
        self.stats = FastForwardStats()
        self.reason: Optional[str] = None
        self._enabled = True
        self._primary: Optional[str] = None
        self._pidx: int = 0
        self._milestones: tuple = ()
        self._keys: Optional[tuple] = None
        #: Boundary records: (t, counts, state, comp, seq, aux_sig,
        #: aux_counts).
        self._records: list[tuple] = []
        #: Cheap step signatures between consecutive records (incremental;
        #: _steps[i] covers the step ending at _records[i + 1]).
        self._steps: list[tuple] = []
        #: Total steps ever taken (global index of _steps[-1]).
        self._nsteps: int = 0
        #: Step signature -> global index of its latest occurrence.
        self._seen: dict = {}
        #: Candidate period under verification (0 = scanning).
        self._vperiod: int = 0
        #: Pending-event queue signatures, one per verify boundary.
        self._vfull: list[tuple] = []
        #: RNG fingerprint captured when the verify window opened.  Streams
        #: only move forward, so one comparison against a fresh fingerprint
        #: at window completion proves zero draws across the whole window —
        #: no need to snapshot every boundary (``stream_states`` walks
        #: numpy bit-generator state and is the probe's costliest call).
        self._vfp: tuple = ()
        #: Most informative verify-failure reason seen so far.
        self._vfail: Optional[str] = None
        #: Verify-rejected periods, with escalating backoff: period ->
        #: (step index at failure, block length in steps).  Without this, a
        #: run of identical single-completion boundaries between two tx
        #: bursts nominates period 1 forever and the true period — the
        #: burst spacing — is never tried.  The block doubles on every
        #: repeat failure, so a *transient* rejection (the schedule still
        #: settling) retries within a few boundaries while a structurally
        #: wrong period stops wasting verify windows.
        self._vbad: dict = {}
        #: Boundaries since the last jump / milestone crossing.
        self._fruitless: int = 0
        #: Soft step signatures (the step minus component timing state) ever
        #: seen, and the index of the last boundary whose soft signature
        #: recurred.  A loop with *any* periodic structure — even one whose
        #: governor state is still converging bit by bit — soft-hits within
        #: a couple of periods; a jittered loop (fresh RNG floats in every
        #: time delta) essentially never does, and is disarmed quickly.
        #: Structured loops stay armed: a drifting DVFS duty EMA pins to a
        #: float fixed point after enough contractions, and full hits (and
        #: skipping) begin the moment it does.
        self._soft_seen: dict = {}
        self._last_soft: int = 0
        #: Index of the last *bit-exact* step recurrence.  A soft-recurring
        #: loop whose bits never settle (the EMA contraction per period is
        #: too weak to pin within the run) would otherwise keep the probe
        #: scanning forever; hard recurrences going stale bound that cost.
        self._last_hard: int = 0
        #: Relative dt drift per soft recurrence: (step index, |dt - prev
        #: dt| / |dt|) samples, subsampled.  The decay rate of these is the
        #: governor's contraction factor, which projects when (whether) the
        #: schedule pins bit-exactly — see :meth:`_drift_verdict`.
        self._drift: list = []
        self._last_bound: Optional[int] = None
        #: Periods that already produced a successful jump.  After a
        #: binade-capped jump the next boundaries re-round in the new
        #: binade, miss the translated hash, and would pay a full
        #: ``confirm_periods`` rescan — but a proven period's renomination
        #: skips straight to the verify window (which remains the
        #: exactness proof).  A set, because the same loop can jump both
        #: at its base period and at a sub-harmonic escalation of it.
        self._jumped_periods: set = set()
        self._aux_raw: list[tuple] = []
        self._aux_last: dict[str, dict] = {}
        self._aux_pending: dict[str, dict] = {}
        #: Boundaries since a secondary process last reported.  Folded
        #: into the loop-state part of every signature once any aux
        #: activity has been seen: between two aux reports the primary
        #: loop's visible state can be boundary-for-boundary identical
        #: (the burst phase lives in the *secondary's* loop variables,
        #: which only surface at its reap points), so without this
        #: counter the probe can prove a period-1 schedule inside the
        #: quiet stretch and jump over secondary bursts whose cycles are
        #: longer.  The counter gives every boundary of the true
        #: super-period a distinct signature, so only the aux spacing
        #: itself (or a multiple) can recur.
        self._since_aux: int = 0
        if faults is not None and not getattr(faults, "fastforward_safe", False):
            self.disarm("faults")
        elif sim.trace.enabled:
            self.disarm("trace")

    # -- state -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True while the probe may still arm."""
        return self._enabled

    def disarm(self, reason: str) -> None:
        """Permanently stop probing (exactness can no longer be proven)."""
        self._enabled = False
        if self.reason is None:
            self.reason = reason
        self._records.clear()
        self._steps.clear()
        self._seen.clear()
        self._soft_seen.clear()
        self._drift.clear()
        self._vperiod = 0
        self._vfull.clear()
        self._aux_raw.clear()

    # -- loop API --------------------------------------------------------------

    def begin(self, primary: str, milestones: tuple,
              max_period: Optional[int] = None) -> None:
        """Declare the loop's primary counter and its do-not-cross marks.

        ``milestones`` are primary-counter values whose crossings carry
        one-shot semantics (the warm-up mark, ``total - tail``): a jump
        always lands at least one full period short of the next one, so
        the crossing itself is simulated.  The largest milestone bounds
        all skipping — once the primary passes it the probe disarms and
        the loop's end-game runs at full fidelity.

        ``max_period`` lets the loop widen the period search when it knows
        its own super-period (e.g. ``send_bw``'s tx bursts recur every
        ``sig`` receive boundaries, well past the default of 8).
        """
        self._primary = primary
        self._milestones = tuple(sorted(milestones))
        if max_period is not None:
            self.max_period = max(self.max_period, int(max_period))

    def observe(self, counters: dict, state: tuple = ()) -> Optional[Skip]:
        """Record one boundary; jump if the steady state is proven.

        ``counters`` are the loop's monotone progress counters (the
        primary among them); ``state`` is the loop's residual scheduling
        state (in-flight count, unsignaled backlog, signal phase...).
        Returns a :class:`Skip` when the clock was advanced — the caller
        must apply ``skip.counters`` — or ``None`` to keep simulating.
        """
        if not self._enabled:
            return None
        sim = self._sim
        if self._keys is None:
            self._keys = tuple(sorted(counters))
            self._pidx = self._keys.index(self._primary)
        counts = tuple(counters[k] for k in self._keys)
        now = sim._now
        aux_sig, aux_counts = self._fold_aux(now)
        if aux_sig:
            self._since_aux = 0
        elif self._aux_last:
            self._since_aux += 1
        if self._aux_last:
            state = (*state, self._since_aux)
        rec = (now, counts, state, sim.component_state(), sim._seq,
               aux_sig, aux_counts)
        recs = self._records
        step = None
        if recs:
            step = self._step_between(recs[-1], rec)
            self._steps.append(step)
            self._nsteps += 1
        recs.append(rec)
        limit = (self.confirm_periods + 1) * self.max_period + 2
        if len(recs) > limit:
            del recs[0]
            del self._steps[0]

        if step is not None:
            # Soft structure: the step with its floats quantized to 0.1 ns
            # and the component timing state masked out.  A *settling*
            # schedule (DVFS duty EMA still contracting toward its float
            # fixed point) drifts by ever-smaller fractions of a ns per
            # boundary, so its soft signature recurs long before the bits
            # pin; a *jittered* schedule (fresh lognormal draws, tens of ns
            # spread) essentially never recurs.  Soft recurrence is what
            # separates "worth waiting for exactness" from "hopeless".
            soft = self._soft_of(step)
            prev_soft = self._soft_seen.get(soft)
            self._soft_seen[soft] = (self._nsteps, step[0])
            if prev_soft is not None:
                self._last_soft = self._nsteps
                # Drift sample: how far the raw dt moved between two
                # occurrences of the same quantized step.  Subsampled so a
                # long scan keeps a bounded, well-spaced series.
                drift = self._drift
                if not drift or self._nsteps - drift[-1][0] >= 8:
                    scale = abs(step[0]) or 1.0
                    drift.append(
                        (self._nsteps, abs(step[0] - prev_soft[1]) / scale))

        skip = None
        if self._vperiod:
            skip = self._verify_boundary(step)
        elif step is not None:
            prev = self._seen.get(step)
            self._seen[step] = self._nsteps
            if prev is not None:
                self._last_hard = self._nsteps
                period = self._nsteps - prev
                blocked = self._vbad.get(period)
                if blocked is not None and \
                        self._nsteps - blocked[0] >= blocked[1]:
                    blocked = None  # expired; entry kept for escalation
                if 1 <= period <= self.max_period and blocked is None \
                        and self._scan_ready(period):
                    self._vperiod = period
                    self._vfp = self._sim.rng.stream_states()
                    self._vfull.append(self._queue_sig())

        # Progress bookkeeping, reset by jumps and by milestone crossings
        # (each phase gets its own chance): a tight budget on *soft* hits
        # — a structured schedule recurs within a couple of periods, a
        # jittered one never — and a generous overall backstop for
        # structured schedules that never become provably exact.
        bound = self._next_bound(counts[self._pidx])
        if bound is None:
            self.disarm("complete")
            return skip
        if skip is not None or bound != self._last_bound:
            self._fruitless = 0
            self._last_soft = self._last_hard = self._nsteps
            self._vbad.clear()
        else:
            self._fruitless += 1
        self._last_bound = bound
        if self._nsteps - self._last_soft > self._soft_budget():
            self.disarm("no-period")
        elif self._nsteps - self._last_hard > 3 * self.max_period + 32 \
                and self._drift_verdict(counts[self._pidx]):
            # Soft structure without bit-exact recurrence: the schedule is
            # periodic in shape but its float state hasn't pinned yet, and
            # the drift projection says it never will (in reach).
            self.disarm("no-period")
        elif self._fruitless > 16 * self.max_period + 256:
            self.disarm(self._vfail or "no-period")
        return skip

    def observe_aux(self, name: str, counters: dict, state: tuple = ()) -> None:
        """Record a secondary process's boundary (folded at the next
        :meth:`observe` into the driver's signature)."""
        if not self._enabled:
            return
        self._aux_raw.append((name, self._sim._now, dict(counters), state))

    def take_aux(self, name: str) -> dict:
        """Counter advances accumulated for a secondary process by jumps
        since its last call (empty when none)."""
        return self._aux_pending.pop(name, None) or {}

    # -- scan phase ------------------------------------------------------------

    def _fold_aux(self, now: float) -> tuple:
        if not self._aux_raw and not self._aux_last:
            return (), {}
        sig_items = []
        for (name, t, counters, state) in self._aux_raw:
            last = self._aux_last.get(name)
            delta = tuple(sorted(
                (k, v - (last[k] if last else 0)) for k, v in counters.items()
            ))
            self._aux_last[name] = counters
            sig_items.append((name, now - t, delta, state))
        self._aux_raw.clear()
        aux_counts = {name: dict(c) for name, c in self._aux_last.items()}
        return tuple(sig_items), aux_counts

    def _soft_budget(self) -> int:
        """Boundaries the probe tolerates without a *soft* recurrence.

        Before the first milestone (the warm-up transient: queues filling,
        batch pattern still forming) the loop has not reached its steady
        shape yet, so the budget is generous; past it a structured
        schedule soft-hits within a couple of periods while a jittered one
        never does, so the tight budget cuts the per-boundary overhead on
        provably hopeless (e.g. lognormal-jittered) runs quickly.
        """
        if self._milestones and self._last_bound == self._milestones[0]:
            return 6 * self.max_period + 64
        return 2 * self.max_period + 16

    def _drift_verdict(self, prim: int) -> bool:
        """Should a long hard-hit drought disarm the probe?

        The per-recurrence dt drift decays with the DVFS governor's
        contraction factor ``c`` (the duty EMA converges geometrically to
        its float fixed point).  Fitting ``c`` to the sampled drift series
        projects the boundary where the schedule pins bit-exactly.  Returns
        True — disarm — when the series shows no convergence, or the
        projected pin lands too late to skip anything before the *final*
        milestone (pinning mid-run still pays: every remaining phase
        benefits, so the horizon is the whole run, not the next mark);
        returns False — keep scanning — while an in-reach pin is still
        plausible.  The projection is advisory only: arming still
        requires real bit-exact recurrences plus the full verify pass, so
        a wrong guess costs time, never exactness.
        """
        drift = self._drift
        if len(drift) < 5:
            # Too few samples to fit anything: keep scanning — the hard
            # drought re-evaluates every boundary and the fruitless
            # backstop bounds the total cost of never deciding.
            return False
        (n2, d2) = drift[-1]
        (n1, d1) = drift[len(drift) // 2]
        if n2 - n1 < 32:
            return False
        if d2 == 0.0:
            # dt already pinned; residual state (core duty bits) lags it by
            # a small factor — allow a proportional grace window.
            return self._nsteps > 2.5 * n2 + 128
        if d1 <= d2:
            return True
        c = (d2 / d1) ** (1.0 / (n2 - n1))
        if c >= 0.9995:
            return True
        # Project to drift below ~an ulp of the dt (2**-50 relative).
        steps_left = math.log(_PIN_TOL / d2) / math.log(c)
        projected = n2 + steps_left
        # Boundaries left before the *final* milestone, via the recent
        # primary rate — a pin landing anywhere inside the run pays off.
        recs = self._records
        span = len(recs) - 1
        rate = (recs[-1][1][self._pidx] - recs[0][1][self._pidx]) / span \
            if span > 0 else 1.0
        remaining = (self._milestones[-1] - prim) / max(rate, 1e-9)
        if projected - self._nsteps > 0.7 * remaining:
            return True
        return self._nsteps > 2.5 * projected + 128

    @staticmethod
    def _soft_of(step: tuple) -> tuple:
        """The step's *soft* signature: floats quantized to 0.1 ns, component
        timing state dropped.

        0.1 ns sits squarely between the two regimes it must separate: a
        settling DVFS duty EMA perturbs boundary times by well under 0.1 ns
        within a few periods of the loop stabilizing (the drift contracts
        by ``exp(-period/window)`` per cycle), while lognormal syscall
        jitter moves them by tens of ns per draw.
        """
        aux = step[4]
        if aux:
            aux = tuple((name, round(off, 1), delta, state)
                        for (name, off, delta, state) in aux)
        return (round(step[0], 1), step[1], step[2], step[3], aux)

    @staticmethod
    def _step_between(a: tuple, b: tuple) -> tuple:
        """Cheap signature of the step from boundary record ``a`` to ``b``.

        Fields ordered cheapest/most-discriminating first so mismatch
        comparisons short-circuit early.
        """
        return (
            b[0] - a[0],                                   # time delta
            b[4] - a[4],                                   # records scheduled
            tuple(x - y for x, y in zip(b[1], a[1])),      # counter deltas
            b[2],                                          # loop state
            b[5],                                          # aux signature
            b[3],                                          # component state
        )

    def _scan_ready(self, period: int) -> bool:
        """Cheap steps p-periodic over the confirm window, and a jump at
        the end of a verify pass would still have room to skip?

        A period that already produced a successful jump needs no fresh
        confirm window: it is a proven property of this schedule, and the
        verify pass (the exactness proof proper) re-checks it anyway.
        That matters after every binade-capped jump — the new binade
        re-rounds the step deltas, so the translated history misses and a
        full confirm would cost ``confirm_periods`` extra periods per
        crossing."""
        steps = self._steps
        n = len(steps)
        confirm = 1 if period in self._jumped_periods else self.confirm_periods
        if n < confirm * period:
            return False
        if any(steps[n - k] != steps[n - k - period]
               for k in range(1, (confirm - 1) * period + 1)):
            return False
        return self._worth_it(period)

    def _worth_it(self, period: int) -> bool:
        """Project the primary to the end of the verify window (~2 more
        periods): would at least one whole cycle still be skippable?"""
        recs = self._records
        if len(recs) < period + 1:
            return False
        prim = recs[-1][1][self._pidx]
        units = prim - recs[-1 - period][1][self._pidx]
        if units <= 0:
            return False
        bound = self._next_bound(prim)
        if bound is None:
            return False
        return (bound - (prim + 2 * units) - units) // units >= 1

    # -- verify phase ----------------------------------------------------------

    def _queue_sig(self) -> tuple:
        sim = self._sim
        now = sim._now
        return tuple(sorted(
            (t - now, prio, type(entry).__name__)
            for (t, prio, _seq, entry) in sim._queue
        ))

    def _verify_boundary(self, step: Optional[tuple]) -> Optional[Skip]:
        period = self._vperiod
        n = len(self._steps)
        if step is None or n < period + 1 or \
                step != self._steps[n - 1 - period]:
            # A mismatch only in low-order float bits (soft signatures
            # equal) is the settling schedule still converging — renominate
            # quickly instead of escalating the backoff.
            settling = (step is not None and n >= period + 1 and
                        self._soft_of(step) ==
                        self._soft_of(self._steps[n - 1 - period]))
            self._abort_verify("drift", settling=settling)
            return None
        self._last_hard = self._nsteps
        self._vfull.append(self._queue_sig())
        if len(self._vfull) < period + 2:
            return None
        full = self._vfull
        if self._sim.rng.stream_states() != self._vfp:
            # Some stream advanced since the window opened: monotone
            # forward movement means a single start-vs-now comparison
            # covers every boundary in between (and, on a rolled window,
            # every boundary since the original proof attempt).
            self._abort_verify("rng")
            return None
        if any(full[j] != full[j - period]
               for j in range(period, period + 2)):
            self._abort_verify("queue")
            return None
        # The proof succeeded: the period is an established property of
        # this schedule (recorded even if the jump below declines — future
        # renominations of it skip the confirm window and shrug off
        # binade-crossing aborts with a minimal penalty).
        self._jumped_periods.add(period)
        skip = self._jump(period)
        if skip is None:
            # Declined — binade cap or milestone straddle, not a failed
            # proof.  Roll the window one boundary and retry: the decline
            # clears within about a period (the clock crosses the binade
            # end / the primary clears the straddle), far cheaper than a
            # fresh verify pass from scratch.
            del self._vfull[0]
            return None
        self._end_verify()
        return skip

    def _abort_verify(self, why: str, settling: bool = False) -> None:
        period = self._vperiod
        if why != "drift":
            self._vfail = why
        if period in self._jumped_periods:
            # A proven period aborting is a transition artifact (binade
            # crossing re-rounding the deltas, a milestone phase change),
            # not evidence against the period — retry almost immediately.
            penalty = 2
        elif settling:
            penalty = period + 2
        else:
            prev = self._vbad.get(period)
            penalty = 2 * period + 6 if prev is None \
                else min(prev[1] * 2, 16 * self.max_period)
        self._vbad[period] = (self._nsteps, penalty)
        self._end_verify()
        if why == "queue" and 2 * period <= self.max_period \
                and 2 * period not in self._vbad \
                and len(self._steps) > 2 * period \
                and self._worth_it(2 * period):
            # Cheap steps repeating at p with the full state rejecting p is
            # the sub-harmonic signature: the queue's true period is a
            # multiple of p (e.g. tx signals once per 2 rx periods).  The
            # hash only ever nominates the *smallest* recurrence distance,
            # so escalate to 2p directly.  p-periodic cheap steps are
            # already 2p-periodic, so no fresh confirm window is needed —
            # the 2p verify window re-checks continuity every boundary.
            self._vperiod = 2 * period
            self._vfp = self._sim.rng.stream_states()
            self._vfull.append(self._queue_sig())

    def _end_verify(self) -> None:
        self._vperiod = 0
        self._vfull.clear()
        self._vfp = ()

    # -- extrapolation ---------------------------------------------------------

    def _next_bound(self, prim: int) -> Optional[int]:
        for mark in self._milestones:
            if mark > prim:
                return mark
        return None

    def _jump(self, p: int) -> Optional[Skip]:
        recs = self._records
        last = recs[-1]
        base = recs[-1 - p]
        prim = last[1][self._pidx]
        units = prim - base[1][self._pidx]
        if units <= 0:
            return None
        prev_mark = None
        bound = None
        for mark in self._milestones:
            if mark > prim:
                bound = mark
                break
            prev_mark = mark
        if bound is None:
            return None
        if prev_mark is not None and prim - units < prev_mark:
            # The last observed period straddles a milestone crossing; wait
            # for one clean period beyond it (keeps sample-pattern
            # replication well-defined for the caller).
            return None
        cycles = (bound - prim - units) // units
        if cycles <= 0:
            return None

        now = last[0]
        # Period time deltas, in order, from the most recent full period.
        start = len(recs) - 1 - p
        deltas = [recs[start + i + 1][0] - recs[start + i][0] for i in range(p)]
        # Binade cap: stay where the ulp grid — and thus the observed
        # arithmetic — is unchanged, for the clock and every shifted offset.
        if now > 0:
            binade_end = math.ldexp(1.0, math.frexp(now)[1])
        else:
            binade_end = math.inf
        queue = self._sim._queue
        max_off = max((t for (t, _p, _s, _e) in queue), default=now) - now
        target = now
        stepped = 0
        while stepped < cycles:
            nxt = target
            for d in deltas:
                nxt += d
            if nxt + max_off >= binade_end or nxt < target:
                break
            target = nxt
            stepped += 1
        if stepped == 0:
            return None

        counter_deltas = {
            key: (last[1][i] - base[1][i]) * stepped
            for i, key in enumerate(self._keys)
        }
        aux_shift: dict = {}
        for name, now_counts in last[6].items():
            then_counts = base[6].get(name)
            if then_counts is None:
                continue
            pend = self._aux_pending.setdefault(name, {})
            adv = aux_shift.setdefault(name, {})
            for key, value in now_counts.items():
                delta = (value - then_counts.get(key, 0)) * stepped
                pend[key] = pend.get(key, 0) + delta
                adv[key] = delta
        events_per_period = last[4] - base[4]
        skipped_ns = target - now
        self._sim.advance_clock(target)
        self._jumped_periods.add(p)

        stats = self.stats
        stats.jumps += 1
        stats.cycles_skipped += stepped
        stats.units_skipped += counter_deltas[self._primary]
        stats.events_skipped += events_per_period * stepped
        stats.time_skipped_ns += skipped_ns
        tele = self._sim.telemetry
        if tele.enabled:
            scope = tele.scope("sim")
            scope.counter("fastforward.cycles_skipped").inc(stepped)
            scope.counter("fastforward.time_skipped_ns").inc(skipped_ns)
        # Translate the detector's history across the jump instead of
        # discarding it: boundary times shift with the clock, counters by
        # the skipped deltas; the step signatures — and the hash map over
        # them — are delta-based and survive verbatim.  The verified period
        # therefore stays hot: the very next boundary renominates it, and a
        # fresh verify window (the exactness proof proper) is the only
        # re-arm latency.  Any post-jump deviation (a milestone near, a
        # binade crossing re-rounding the deltas) shows up as a step
        # mismatch and falls back to a full rescan, so the retained history
        # can delay re-arming but never corrupt a jump.
        shift = skipped_ns
        delta_tuple = tuple(counter_deltas[k] for k in self._keys)
        self._records = [
            (t + shift,
             tuple(c + d for c, d in zip(counts, delta_tuple)),
             state, comp, seq, aux_sig,
             {name: {k: v + aux_shift.get(name, {}).get(k, 0)
                     for k, v in c.items()}
              for name, c in aux_counts.items()})
            for (t, counts, state, comp, seq, aux_sig, aux_counts)
            in self._records
        ]
        for name, adv in aux_shift.items():
            lastc = self._aux_last.get(name)
            if lastc is not None:
                for key, delta in adv.items():
                    lastc[key] = lastc.get(key, 0) + delta
        return Skip(counter_deltas, stepped, units)
