"""NVMe-like device model.

A device executes commands from per-queue-pair submission rings with
bounded internal concurrency (flash channels): each command pays the media
latency, data moves at the device's bandwidth, and a completion entry lands
in the matching completion ring (optionally raising an interrupt, for the
kernel block path).

Calibration (a low-latency datacenter drive, Optane/Z-NAND class — the
kind SPDK exists for):

- 4 KiB read media latency ~ 5 us; 32 channels -> ~6M IOPS ceiling
- sequential bandwidth ~ 6.8 GB/s
- submission-to-device fetch ~ 200 ns (doorbell + SQE DMA)
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.errors import HardwareError
from repro.sim.resources import Resource
from repro.sim.store import Store
from repro.units import gib_per_s, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


@dataclass(frozen=True)
class NvmeProfile:
    """Device timing parameters."""

    read_latency_ns: float = us(5)
    write_latency_ns: float = us(8)
    bandwidth: float = gib_per_s(6.4)  # bytes/ns
    channels: int = 32
    #: Doorbell decode + SQE fetch DMA.
    fetch_ns: float = 200.0
    #: CQE write DMA.
    cqe_ns: float = 250.0
    sq_depth: int = 256
    block_size: int = 512


@dataclass
class IoCommand:
    """One NVMe command (read or write of ``nbytes`` at ``lba``)."""

    cmd_id: int
    op: str  # "read" | "write"
    lba: int
    nbytes: int
    tenant: str = "default"
    submitted_at: float = 0.0
    completed_at: float = 0.0

    @property
    def latency_ns(self) -> float:
        return self.completed_at - self.submitted_at


class StorageQueuePair:
    """One SQ/CQ pair owned by an application thread."""

    _ids = itertools.count(1)

    def __init__(self, device: "NvmeDevice", depth: int):
        self.device = device
        self.qid = next(self._ids)
        self.depth = depth
        self.outstanding = 0
        self.cq: deque[IoCommand] = deque()
        self._waiters: list = []
        #: Kernel hook for interrupt-driven completion (block layer path).
        self.on_completion: Optional[Callable[[IoCommand], None]] = None

    def cq_pop(self, max_entries: int) -> list[IoCommand]:
        out = []
        while self.cq and len(out) < max_entries:
            out.append(self.cq.popleft())
        return out

    def wait_nonempty(self) -> "Event":
        ev = self.device.sim.event(name=f"nvmeq{self.qid}.nonempty")
        if self.cq:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def _complete(self, cmd: IoCommand) -> None:
        cmd.completed_at = self.device.sim.now
        self.outstanding -= 1
        self.cq.append(cmd)
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(None)
        if self.on_completion is not None:
            self.on_completion(cmd)


class NvmeDevice:
    """The SSD: shared channels executing commands from all queue pairs."""

    def __init__(self, sim: "Simulator", profile: Optional[NvmeProfile] = None,
                 name: str = "nvme0"):
        self.sim = sim
        self.profile = profile or NvmeProfile()
        self.name = name
        self._channels = Resource(sim, capacity=self.profile.channels,
                                  name=f"{name}.chan")
        #: Shared data bus: aggregate device bandwidth (channels give
        #: latency parallelism, not bandwidth multiplication).
        self._bus = Resource(sim, capacity=1, name=f"{name}.bus")
        self._fetchq: Store = Store(sim, name=f"{name}.fetch")
        self._cmd_name = f"{name}.cmd"
        self.commands_done = 0
        self.bytes_done = 0
        sim.process(self._fetch_engine(), name=f"{name}.fetch")

    def create_qp(self, depth: Optional[int] = None) -> StorageQueuePair:
        return StorageQueuePair(self, depth or self.profile.sq_depth)

    # -- dataplane entry (CPU costs paid by the dataplane wrapper) ---------------

    def hw_submit(self, qp: StorageQueuePair, cmd: IoCommand) -> None:
        if cmd.op not in ("read", "write"):
            raise HardwareError(f"unknown IO op {cmd.op!r}")
        if cmd.nbytes <= 0 or cmd.nbytes % self.profile.block_size:
            raise HardwareError(
                f"IO size must be a positive multiple of "
                f"{self.profile.block_size}, got {cmd.nbytes}"
            )
        if qp.outstanding >= qp.depth:
            raise HardwareError(f"queue {qp.qid} full (depth {qp.depth})")
        qp.outstanding += 1
        cmd.submitted_at = self.sim.now
        self._fetchq.put((qp, cmd))

    # -- device engines ------------------------------------------------------------

    def _fetch_engine(self) -> Generator["Event", object, None]:
        """Serial SQE fetch: caps the device's command ingest rate."""
        while True:
            item = yield self._fetchq.get()
            qp, cmd = item  # type: ignore[misc]
            yield self.profile.fetch_ns
            self.sim.spawn(self._execute(qp, cmd), name=self._cmd_name)

    def _execute(self, qp: StorageQueuePair, cmd: IoCommand) -> Generator["Event", object, None]:
        req = self._channels.request()
        yield req
        try:
            media = (self.profile.read_latency_ns if cmd.op == "read"
                     else self.profile.write_latency_ns)
            yield media
            bus = self._bus.request()
            yield bus
            try:
                yield cmd.nbytes / self.profile.bandwidth
            finally:
                self._bus.release(bus)
        finally:
            self._channels.release(req)
        yield self.profile.cqe_ns
        self.commands_done += 1
        self.bytes_done += cmd.nbytes
        qp._complete(cmd)
