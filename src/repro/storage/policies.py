"""Storage flavours of the CoRD policies.

Same framework as :mod:`repro.core.policy` (evaluate -> extra kernel ns or
deny), operating on IO commands instead of work requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError, PolicyViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.device import IoCommand

IO_CHECK_NS = 30.0


@dataclass
class IoOpContext:
    """What a storage policy may inspect."""

    now: float
    op: str  # "submit" | "poll"
    cmd: "IoCommand | None" = None
    tenant: str = "default"


class StoragePolicy:
    """Base: permit everything, count evaluations."""

    name = "storage.policy"

    def __init__(self) -> None:
        self.evaluations = 0
        self.denials = 0

    def evaluate(self, ctx: IoOpContext) -> float:
        self.evaluations += 1
        try:
            return self._evaluate(ctx)
        except PolicyViolation:
            self.denials += 1
            raise

    def _evaluate(self, ctx: IoOpContext) -> float:
        return 0.0

    def deny(self, reason: str) -> PolicyViolation:
        return PolicyViolation(self.name, reason)


class IoRateLimit(StoragePolicy):
    """Token bucket over IO bytes per tenant (storage QoS)."""

    name = "storage.rate_limit"

    def __init__(self, rate_bytes_per_s: float, burst_bytes: int):
        super().__init__()
        if rate_bytes_per_s <= 0 or burst_bytes <= 0:
            raise ConfigError("rate and burst must be positive")
        self.rate_per_ns = rate_bytes_per_s / 1e9
        self.burst = float(burst_bytes)
        self._buckets: dict[str, tuple[float, float]] = {}

    def _evaluate(self, ctx: IoOpContext) -> float:
        if ctx.op != "submit" or ctx.cmd is None:
            return IO_CHECK_NS
        tokens, last = self._buckets.get(ctx.tenant, (self.burst, ctx.now))
        tokens = min(self.burst, tokens + (ctx.now - last) * self.rate_per_ns)
        if ctx.cmd.nbytes > tokens:
            self._buckets[ctx.tenant] = (tokens, ctx.now)
            raise self.deny(f"tenant {ctx.tenant!r} over IO rate")
        self._buckets[ctx.tenant] = (tokens - ctx.cmd.nbytes, ctx.now)
        return IO_CHECK_NS


class IoStats(StoragePolicy):
    """Per-tenant IO accounting (observability)."""

    name = "storage.stats"

    def __init__(self) -> None:
        super().__init__()
        self.per_tenant: dict[str, dict[str, int]] = {}

    def _evaluate(self, ctx: IoOpContext) -> float:
        rec = self.per_tenant.setdefault(
            ctx.tenant, {"submits": 0, "polls": 0, "bytes": 0, "reads": 0, "writes": 0}
        )
        if ctx.op == "submit" and ctx.cmd is not None:
            rec["submits"] += 1
            rec["bytes"] += ctx.cmd.nbytes
            rec["reads" if ctx.cmd.op == "read" else "writes"] += 1
        else:
            rec["polls"] += 1
        return IO_CHECK_NS * 0.7


class StoragePolicyChain:
    """Ordered storage policies (mirrors :class:`repro.core.policy.PolicyChain`)."""

    def __init__(self, policies=()):
        self.policies = list(policies)

    def evaluate(self, ctx: IoOpContext) -> float:
        total = 0.0
        for policy in self.policies:
            total += policy.evaluate(ctx)
        return total

    def __len__(self) -> int:
        return len(self.policies)
