"""Storage dataplanes: SPDK-style bypass, CoRD interposition, kernel block.

The exact structural analogue of :mod:`repro.core.dataplane`:

=============== ==========================================================
SpdkDataplane    user-space SQE build + doorbell; user-space CQ polling
CordStorage      identical fast path, but submit/poll are system calls and
                 a storage policy chain runs in the kernel
KernelBlock      the classic path: syscall + block-layer per-IO work +
                 interrupt-driven completion (no polling, one IO per call)
=============== ==========================================================
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from repro.hw.cpu import Core
from repro.hw.profiles import SystemProfile
from repro.storage.device import IoCommand, NvmeDevice
from repro.storage.policies import IoOpContext, StoragePolicyChain

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

#: User-space SQE build + doorbell (SPDK-grade fast path).
SUBMIT_CPU_NS = 140.0
#: One CQ poll (hit / miss) in user space.
POLL_HIT_NS = 80.0
POLL_MISS_NS = 30.0
#: Kernel block-layer per-IO work (bio alloc, plug, scheduler, blk-mq map).
BLOCK_LAYER_NS = 2_800.0

_cmd_ids = itertools.count(1)


def make_command(op: str, lba: int, nbytes: int, tenant: str = "default") -> IoCommand:
    return IoCommand(cmd_id=next(_cmd_ids), op=op, lba=lba, nbytes=nbytes,
                     tenant=tenant)


class StorageDataplane:
    """Common interface: submit / poll / wait."""

    tag = "??"

    def __init__(self, device: NvmeDevice, core: Core, system: SystemProfile,
                 tenant: str = "default"):
        self.device = device
        self.core = core
        self.system = system
        self.sim = device.sim
        self.tenant = tenant
        self.qp = device.create_qp()
        self.submitted = 0
        self.polls = 0

    def submit(self, cmd: IoCommand) -> Generator["Event", object, None]:
        raise NotImplementedError

    def poll(self, max_entries: int = 16) -> Generator["Event", object, list[IoCommand]]:
        raise NotImplementedError

    def wait(self, max_entries: int = 16) -> Generator["Event", object, list[IoCommand]]:
        """Block (by polling) until at least one completion, then reap."""
        ready = self.qp.wait_nonempty()
        if not ready.processed:
            yield from self.core.busy_poll(ready, 0.0)
        cmds = yield from self.poll(max_entries)
        return cmds

    def run_io(self, cmd: IoCommand) -> Generator["Event", object, IoCommand]:
        """Submit one command and wait for its completion (QD=1 helper)."""
        yield from self.submit(cmd)
        while True:
            done = yield from self.wait()
            for c in done:
                if c.cmd_id == cmd.cmd_id:
                    return c


class SpdkDataplane(StorageDataplane):
    """User-level storage dataplane (kernel bypass — SPDK style)."""

    tag = "SPDK"

    def submit(self, cmd: IoCommand) -> Generator["Event", object, None]:
        cmd.tenant = self.tenant
        yield from self.core.run(SUBMIT_CPU_NS)
        self.device.hw_submit(self.qp, cmd)
        self.submitted += 1

    def poll(self, max_entries: int = 16) -> Generator["Event", object, list[IoCommand]]:
        cmds = self.qp.cq_pop(max_entries)
        yield from self.core.run(POLL_HIT_NS if cmds else POLL_MISS_NS)
        self.polls += 1
        return cmds


class CordStorageDataplane(StorageDataplane):
    """CoRD applied to storage: submit/poll interposed by the kernel."""

    tag = "CoRD"

    def __init__(self, device: NvmeDevice, core: Core, system: SystemProfile,
                 policies: Optional[StoragePolicyChain] = None,
                 tenant: str = "default"):
        super().__init__(device, core, system, tenant)
        self.policies = policies or StoragePolicyChain()
        self.denied = 0

    def _interpose(self, ctx: IoOpContext, fast_ns: float) -> Generator["Event", object, None]:
        from repro.errors import PolicyViolation

        try:
            policy_ns = self.policies.evaluate(ctx)
        except PolicyViolation:
            self.denied += 1
            yield from self.core.syscall(self.system.cord_serialize_ns)
            raise
        yield from self.core.syscall(
            self.system.cord_serialize_ns + self.system.cord_kernel_driver_ns
            + policy_ns + fast_ns
        )

    def submit(self, cmd: IoCommand) -> Generator["Event", object, None]:
        cmd.tenant = self.tenant
        ctx = IoOpContext(now=self.sim.now, op="submit", cmd=cmd, tenant=self.tenant)
        yield from self._interpose(ctx, SUBMIT_CPU_NS)
        self.device.hw_submit(self.qp, cmd)
        self.submitted += 1

    def poll(self, max_entries: int = 16) -> Generator["Event", object, list[IoCommand]]:
        ctx = IoOpContext(now=self.sim.now, op="poll", tenant=self.tenant)
        cmds = self.qp.cq_pop(max_entries)
        yield from self._interpose(ctx, POLL_HIT_NS if cmds else POLL_MISS_NS)
        self.polls += 1
        return cmds


class KernelBlockDataplane(StorageDataplane):
    """The traditional blocking block-layer path (pread/pwrite-like).

    One IO per call: syscall, block-layer work, sleep, interrupt, wake.
    The storage-world analogue of the socket stack in fig. 2a.
    """

    tag = "BLK"

    def __init__(self, device: NvmeDevice, core: Core, system: SystemProfile,
                 tenant: str = "default"):
        super().__init__(device, core, system, tenant)
        self._pending: dict[int, "Event"] = {}
        self.qp.on_completion = self._irq_completion

    def _irq_completion(self, cmd: IoCommand) -> None:
        ev = self._pending.pop(cmd.cmd_id, None)
        if ev is not None:
            delay = (self.system.cpu.irq_entry_ns + self.system.cpu.irq_handler_ns)
            self.sim.call_later(delay, ev.succeed, cmd)

    def submit(self, cmd: IoCommand) -> Generator["Event", object, None]:
        # Blocking API: submit() performs the whole IO.
        done = yield from self.run_io(cmd)
        assert done.cmd_id == cmd.cmd_id

    def poll(self, max_entries: int = 16) -> Generator["Event", object, list[IoCommand]]:
        cmds = self.qp.cq_pop(max_entries)
        yield from self.core.run(POLL_HIT_NS if cmds else POLL_MISS_NS)
        return cmds

    def run_io(self, cmd: IoCommand) -> Generator["Event", object, IoCommand]:
        cmd.tenant = self.tenant
        ev = self.sim.event(name=f"blkio{cmd.cmd_id}")
        self._pending[cmd.cmd_id] = ev
        # Syscall entry + block-layer submission work.
        yield from self.core.syscall(BLOCK_LAYER_NS + SUBMIT_CPU_NS)
        self.device.hw_submit(self.qp, cmd)
        self.submitted += 1
        # Sleep until the interrupt wakes us; then the context switch back.
        yield ev
        yield from self.core.run(self.system.cpu.context_switch_ns)
        # Reap our completion from the CQ.
        while True:
            done = yield from self.poll()
            for c in done:
                if c.cmd_id == cmd.cmd_id:
                    return c
