"""CoRD for storage — the paper's §6 outlook, implemented.

High-performance storage stacks (SPDK [88], oneAPI [35]) are built on the
same concepts as RDMA: queue pairs in user memory, doorbells, polling,
kernel bypass.  The paper closes by arguing CoRD's trick — put the kernel
back on the datapath, keep everything else — transfers to that domain.
This subpackage demonstrates it end to end:

- :class:`~repro.storage.device.NvmeDevice` — an NVMe-like SSD: paired
  submission/completion queues, bounded command concurrency (channels),
  per-command latency and device bandwidth.
- :mod:`~repro.storage.dataplane` — three ways to drive it:
  ``SpdkDataplane`` (user-space, polled — the bypass analogue),
  ``CordStorageDataplane`` (every submit/poll is a syscall + policy chain),
  and ``KernelBlockDataplane`` (the classic blocking block layer with
  interrupt completions — the "socket stack" analogue).
- :mod:`~repro.storage.policies` — storage flavours of the CoRD policies:
  per-tenant IOPS/byte rate limiting and IO accounting.

``benchmarks/bench_storage.py`` sweeps block sizes and reproduces the
RDMA result's shape in the storage domain: CoRD costs a constant per
command (visible only for small blocks), the full kernel path costs
multiples.
"""

from repro.storage.device import IoCommand, NvmeDevice, NvmeProfile
from repro.storage.dataplane import (
    CordStorageDataplane,
    KernelBlockDataplane,
    SpdkDataplane,
    StorageDataplane,
)
from repro.storage.policies import IoRateLimit, IoStats

__all__ = [
    "NvmeDevice",
    "NvmeProfile",
    "IoCommand",
    "StorageDataplane",
    "SpdkDataplane",
    "CordStorageDataplane",
    "KernelBlockDataplane",
    "IoRateLimit",
    "IoStats",
]
