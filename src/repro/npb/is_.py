"""IS — integer sort.  The alltoallv-heavy benchmark.

Per iteration (NPB 3.x IS structure):

1. local bucket counting over the rank's keys,
2. ``MPI_Allreduce`` of the bucket histogram (NUM_BUCKETS ints),
3. ``MPI_Alltoall`` of the per-destination key counts (one int per peer),
4. ``MPI_Alltoallv`` redistributing the keys themselves (4 B each,
   uniformly distributed), and
5. local ranking of the received keys.

IS is simultaneously data-intensive and message-intensive (paper §5), which
is why it suffers most under IPoIB.
"""

from __future__ import annotations

from repro.npb.base import CLASS_SCALE, FLOP_NS, NpbConfig, register

#: Class A key count (NPB: 2^23), buckets 2^10.
TOTAL_KEYS_A = 1 << 23
NUM_BUCKETS = 1 << 10
DEFAULT_ITERS = 10


@register("IS")
def make(cfg: NpbConfig):
    total_keys = int(TOTAL_KEYS_A * CLASS_SCALE[cfg.klass])
    keys_pp = total_keys // cfg.ranks
    iters = cfg.effective_iters(DEFAULT_ITERS)
    # Bucketing + ranking: a handful of ops per key, twice per iteration.
    compute_ns = keys_pp * 6 * FLOP_NS
    keys_bytes_pp = keys_pp * 4

    def program(comm):
        size = comm.size
        counts = [keys_bytes_pp // size] * size
        yield from comm.barrier()
        t0 = comm.sim.now
        for _ in range(iters):
            yield from comm.compute(compute_ns)
            yield from comm.allreduce(nbytes=NUM_BUCKETS * 4)
            yield from comm.alltoall(4)
            yield from comm.alltoallv(counts)
            yield from comm.compute(compute_ns * 0.5)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
