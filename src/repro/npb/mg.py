"""MG — multigrid V-cycles on a 3D grid.

Per iteration, the V-cycle touches every grid level: at each level each
rank exchanges halos with its 6 neighbours (3 dimensions x 2 directions).
Face sizes shrink 4x per coarsening step, so MG mixes a few large messages
with many small ones — moderate sensitivity to both per-message cost and
bandwidth.
"""

from __future__ import annotations

from repro.npb.base import FLOP_NS, NpbConfig, register

#: Class parameters: (grid n, niter).
MG_CLASSES = {
    "S": (32, 4),
    "A": (256, 4),
    "B": (256, 20),
    "C": (512, 20),
    "D": (1024, 50),
}
#: Stop coarsening below this local edge length.
MIN_LOCAL = 4


@register("MG")
def make(cfg: NpbConfig):
    n, niter = MG_CLASSES[cfg.klass]
    iters = cfg.effective_iters(niter)
    # 3D block decomposition over the nearest cube-ish factorization.
    pdim = max(1, round(cfg.ranks ** (1.0 / 3.0)))
    local_n = max(n // pdim, MIN_LOCAL)
    levels = []
    ln = local_n
    while ln >= MIN_LOCAL:
        levels.append(ln)
        ln //= 2
    # Residual/smoother: ~15 flops per cell over all levels (~8/7 * finest).
    compute_ns = int(local_n ** 3 * 15 * 8 / 7) * FLOP_NS

    def program(comm):
        size, rank = comm.size, comm.rank
        yield from comm.barrier()
        t0 = comm.sim.now
        neighbors = [(rank + d) % size for d in (1, -1, 7, -7, 13, -13)]
        for _ in range(iters):
            yield from comm.compute(compute_ns)
            for ln_ in levels:
                face_bytes = ln_ * ln_ * 8
                for i in range(0, 6, 2):
                    a, b = neighbors[i], neighbors[i + 1]
                    if a == rank or b == rank:
                        continue
                    yield from comm.sendrecv(a, b, face_bytes, tag=200 + i)
                    yield from comm.sendrecv(b, a, face_bytes, tag=210 + i)
            # Coarsest-level residual norm.
            yield from comm.allreduce(nbytes=8)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
