"""BT and SP — block-tridiagonal / scalar-pentadiagonal solvers.

Both run line solves in the three coordinate directions per iteration,
exchanging boundary faces with the neighbours of a (near-)square process
grid.  BT does much more compute per iteration (block 5x5 solves); SP
iterates twice as often with lighter steps, making it simultaneously
data- and message-intensive (paper: SP ~34 Gbit/s and ~1300 msg/s per
process) — the second-worst IPoIB case after IS.
"""

from __future__ import annotations

from repro.npb.base import FLOP_NS, NpbConfig, grid_2d, register

#: Class parameters: (n, bt_niter, sp_niter).
GRID_CLASSES = {
    "S": (12, 60, 100),
    "A": (64, 200, 400),
    "B": (102, 200, 400),
    "C": (162, 200, 400),
    "D": (408, 250, 500),
}
#: Sub-stages per direction per iteration (solve + face exchange phases).
STAGES_PER_DIR = 3


def _make_grid_bench(cfg: NpbConfig, niter_default: int, flops_per_cell: float,
                     name: str, face_scale: float = 1.0,
                     stages_per_dir: int = STAGES_PER_DIR):
    n, bt_niter, sp_niter = GRID_CLASSES[cfg.klass]
    niter = niter_default
    iters = cfg.effective_iters(niter)
    rows, cols = grid_2d(cfg.ranks)
    cells_pp = n ** 3 // cfg.ranks
    # A face between grid neighbours: 5 variables x 8 B x (cells_pp)^(2/3).
    face_bytes = int(5 * 8 * cells_pp ** (2.0 / 3.0) * face_scale)
    compute_ns = cells_pp * flops_per_cell * FLOP_NS / (3 * stages_per_dir)

    def program(comm):
        size, rank = comm.size, comm.rank
        row, col = rank // cols, rank % cols
        # Periodic neighbours in the two grid dimensions.
        nbrs = [
            (row * cols + (col + 1) % cols, row * cols + (col - 1) % cols),
            (((row + 1) % rows) * cols + col, ((row - 1) % rows) * cols + col),
            # Third direction: diagonal shift (multi-partition flavour).
            (((row + 1) % rows) * cols + (col + 1) % cols,
             ((row - 1) % rows) * cols + (col - 1) % cols),
        ]
        yield from comm.barrier()
        t0 = comm.sim.now
        for _ in range(iters):
            for d, (fwd, bwd) in enumerate(nbrs):
                for s in range(stages_per_dir):
                    yield from comm.compute(compute_ns)
                    if fwd != rank:
                        yield from comm.sendrecv(fwd, bwd, face_bytes,
                                                 tag=400 + d * 10 + s)
            yield from comm.allreduce(nbytes=40)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters


@register("BT")
def make_bt(cfg: NpbConfig):
    _n, bt_niter, _sp = GRID_CLASSES[cfg.klass]
    return _make_grid_bench(cfg, bt_niter, flops_per_cell=220.0, name="BT")


@register("SP")
def make_sp(cfg: NpbConfig):
    _n, _bt, sp_niter = GRID_CLASSES[cfg.klass]
    # SP's lighter per-step solves but wider interface regions make it
    # simultaneously data- and message-intensive (paper: ~34 Gbit/s and
    # ~1300 msg/s per process — second only to IS).
    return _make_grid_bench(cfg, sp_niter, flops_per_cell=30.0, name="SP",
                            face_scale=2.0, stages_per_dir=2)
