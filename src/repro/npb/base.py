"""Common NPB machinery: problem classes, configs, results, registry."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError

#: Effective scalar compute rate of one simulated core: ns per "flop-ish"
#: unit of work.  0.4 ns/flop == 2.5 Gflop/s sustained — ordinary for the
#: irregular, memory-bound NPB kernels.  Because fig. 6 is *relative*
#: runtime on identical skeletons, this constant cancels between
#: transports; it only sets the compute:communication balance.
FLOP_NS = 0.4

#: NPB problem-class scale factors (class A = 1).  Used by the per-
#: benchmark formulas below; classes B/C/D follow the official growth.
CLASS_SCALE = {"S": 1 / 64, "A": 1.0, "B": 4.0, "C": 16.0, "D": 256.0}


@dataclass(frozen=True)
class NpbConfig:
    """One benchmark run's parameters."""

    name: str
    klass: str = "B"
    ranks: int = 32
    #: Iteration override (None = the benchmark's class default, possibly
    #: reduced by ``iter_scale``).
    iterations: Optional[int] = None
    #: Fraction of the official iteration count to simulate (runtime is
    #: reported per iteration, so this only shortens the simulation).
    iter_scale: float = 1.0

    def __post_init__(self):
        if self.klass not in CLASS_SCALE:
            raise ConfigError(f"unknown NPB class {self.klass!r}")
        if self.ranks < 2:
            raise ConfigError("NPB skeletons need at least 2 ranks")

    def effective_iters(self, default: int) -> int:
        if self.iterations is not None:
            return max(1, self.iterations)
        return max(1, int(round(default * self.iter_scale)))


@dataclass
class NpbResult:
    """Timing of one benchmark on one transport."""

    name: str
    klass: str
    transport: str
    ranks: int
    iterations: int
    elapsed_ns: float
    bytes_sent_total: int
    msgs_sent_total: int

    @property
    def per_iter_ns(self) -> float:
        return self.elapsed_ns / max(self.iterations, 1)

    @property
    def msg_rate_per_rank_per_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.msgs_sent_total / self.ranks / self.elapsed_ns * 1e9

    @property
    def gbit_per_s_per_rank(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.bytes_sent_total / self.ranks / self.elapsed_ns * 8.0


def pow2_below(n: int) -> int:
    """Largest power of two <= n."""
    return 1 << (n.bit_length() - 1)


def grid_2d(ranks: int) -> tuple[int, int]:
    """Near-square 2D factorization (NPB CG/BT/SP style)."""
    rows = int(math.sqrt(ranks))
    while ranks % rows:
        rows -= 1
    return rows, ranks // rows


# Registry filled by the benchmark modules at import time.
BENCHMARKS: dict[str, Callable[[NpbConfig], tuple[Callable, int]]] = {}


def register(name: str):
    """Decorator: register ``make(cfg) -> (program, iterations)``."""

    def deco(make):
        BENCHMARKS[name] = make
        return make

    return deco


def get_benchmark(name: str):
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigError(
            f"unknown NPB benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
