"""CG — conjugate gradient.

NPB CG lays the ranks out on a 2D grid.  Each CG iteration does one sparse
matvec whose partial sums are combined across the processor row by
recursive halving (log2(row length) exchanges of an NA/rows-sized double
vector) plus one transpose exchange, and two scalar allreduces (rho,
alpha/beta).  "Communicates using few large messages" (paper §5) — CG even
sees a slight boost under CoRD with Turbo enabled.
"""

from __future__ import annotations

import math

from repro.npb.base import FLOP_NS, NpbConfig, grid_2d, register

#: Class parameters from NPB 3.4: (NA, nonzer, niter).
CG_CLASSES = {
    "S": (1400, 7, 15),
    "A": (14000, 11, 15),
    "B": (75000, 13, 75),
    "C": (150000, 15, 75),
    "D": (1500000, 21, 100),
}


@register("CG")
def make(cfg: NpbConfig):
    na, nonzer, niter = CG_CLASSES[cfg.klass]
    iters = cfg.effective_iters(niter)
    rows, cols = grid_2d(cfg.ranks)
    chunk_bytes = max(na // rows, 1) * 8
    stages = max(1, int(math.log2(max(cols, 2))))
    # matvec + vector ops across the ~25 inner CG steps folded into one
    # outer iteration: ~12 * NA * (nonzer+1)^2 / ranks flops.
    compute_ns = 12 * na * (nonzer + 1) ** 2 // cfg.ranks * FLOP_NS

    def program(comm):
        size, rank = comm.size, comm.rank
        row = rank // cols
        col = rank % cols
        yield from comm.barrier()
        t0 = comm.sim.now
        for it in range(iters):
            yield from comm.compute(compute_ns)
            # Row-wise recursive-halving reduction of the matvec result.
            for s in range(stages):
                partner_col = col ^ (1 << s)
                if partner_col < cols:
                    partner = row * cols + partner_col
                    yield from comm.sendrecv(partner, partner, chunk_bytes,
                                             tag=100 + s)
            # Transpose exchange (send the reduced chunk to the mirror rank).
            mirror = col * rows + row if rows == cols else rank
            if mirror != rank and mirror < size:
                yield from comm.sendrecv(mirror, mirror, chunk_bytes, tag=90)
            # rho / alpha scalar reductions.
            yield from comm.allreduce(nbytes=8)
            yield from comm.allreduce(nbytes=8)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
