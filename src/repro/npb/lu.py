"""LU — SSOR wavefront solver.

The lower/upper triangular sweeps pipeline over k-planes: each rank
receives a thin face from its north/west neighbours, computes the plane,
and forwards to south/east.  With k-blocking (NPB ships blocks of planes),
this is the *many small-to-medium messages* benchmark — per-message
overhead and latency sensitive, bandwidth light.
"""

from __future__ import annotations

from repro.npb.base import FLOP_NS, NpbConfig, grid_2d, register

#: Class parameters: (n, niter).
LU_CLASSES = {
    "S": (12, 50),
    "A": (64, 250),
    "B": (102, 250),
    "C": (162, 250),
    "D": (408, 300),
}
#: k-planes shipped per message (NPB default blocking).
KBLOCK = 8


@register("LU")
def make(cfg: NpbConfig):
    n, niter = LU_CLASSES[cfg.klass]
    iters = cfg.effective_iters(niter)
    rows, cols = grid_2d(cfg.ranks)
    nx_loc = max(n // rows, 1)
    ny_loc = max(n // cols, 1)
    nz = n
    waves = max(nz // KBLOCK, 1)
    # 5 flow variables, 8 B each, one pencil edge per wave message.
    face_bytes_x = 5 * 8 * ny_loc * KBLOCK
    face_bytes_y = 5 * 8 * nx_loc * KBLOCK
    # ~150 flops per cell per sweep pair.
    compute_ns_plane = nx_loc * ny_loc * KBLOCK * 150 * FLOP_NS

    def program(comm):
        size, rank = comm.size, comm.rank
        row, col = rank // cols, rank % cols
        north = rank - cols if row > 0 else -1
        south = rank + cols if row < rows - 1 else -1
        west = rank - 1 if col > 0 else -1
        east = rank + 1 if col < cols - 1 else -1
        yield from comm.barrier()
        t0 = comm.sim.now
        for _ in range(iters):
            # Lower sweep: pipeline flows from (0,0) to (rows-1, cols-1).
            for _w in range(waves):
                if north >= 0:
                    yield from comm.recv(north, tag=300)
                if west >= 0:
                    yield from comm.recv(west, tag=301)
                yield from comm.compute(compute_ns_plane)
                if south >= 0:
                    yield from comm.send(south, face_bytes_x, tag=300)
                if east >= 0:
                    yield from comm.send(east, face_bytes_y, tag=301)
            # Upper sweep: reverse direction.
            for _w in range(waves):
                if south >= 0:
                    yield from comm.recv(south, tag=302)
                if east >= 0:
                    yield from comm.recv(east, tag=303)
                yield from comm.compute(compute_ns_plane)
                if north >= 0:
                    yield from comm.send(north, face_bytes_x, tag=302)
                if west >= 0:
                    yield from comm.send(west, face_bytes_y, tag=303)
            # Residual norms.
            yield from comm.allreduce(nbytes=40)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
