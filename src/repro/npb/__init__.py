"""NAS Parallel Benchmarks — MPI communication skeletons.

Each benchmark reproduces the *communication structure* of its NPB 3.x MPI
original (message counts, sizes, partners and collective patterns per
iteration) plus a calibrated per-iteration compute block.  That is exactly
what fig. 6 (relative runtime of RDMA vs CoRD vs IPoIB) depends on: the
figure divides runtimes of the same skeleton over different transports, so
absolute compute calibration cancels out while the network sensitivity —
who communicates how much, in what sizes, how often — is preserved.

Benchmarks: IS (alltoallv-heavy integer sort), EP (embarrassingly
parallel), CG (few large nearest-partner messages), MG (multi-level halos),
FT (alltoall transpose), LU (pipelined wavefront, many small messages),
BT and SP (face exchanges on a square process grid; SP iterates more with
less compute per step, making it message-intensive).
"""

from repro.npb.base import NpbConfig, NpbResult, BENCHMARKS, get_benchmark
from repro.npb.runner import run_npb, run_suite

__all__ = [
    "NpbConfig",
    "NpbResult",
    "BENCHMARKS",
    "get_benchmark",
    "run_npb",
    "run_suite",
]
