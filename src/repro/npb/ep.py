"""EP — embarrassingly parallel.

Each rank generates its share of 2^M Gaussian pairs and tallies them; the
only communication is three small allreduces at the very end (sx, sy, and
the 10-bin annulus counts).  EP is the "network does not matter" control
in fig. 6 — all three transports should tie, with CoRD allowed a hair's
advantage from the DVFS/syscall interaction when Turbo is on (§5).
"""

from __future__ import annotations

from repro.npb.base import CLASS_SCALE, FLOP_NS, NpbConfig, register

#: Class A: 2^28 random pairs; ~18 flops each (2 logs, sqrt, compares).
PAIRS_A = 1 << 28
FLOPS_PER_PAIR = 18
DEFAULT_ITERS = 1


@register("EP")
def make(cfg: NpbConfig):
    pairs = int(PAIRS_A * CLASS_SCALE[cfg.klass])
    iters = cfg.effective_iters(DEFAULT_ITERS)
    compute_ns = pairs // cfg.ranks * FLOPS_PER_PAIR * FLOP_NS
    # Keep the control benchmark's wall time moderate in simulation.
    compute_ns = min(compute_ns, 80e6)

    def program(comm):
        yield from comm.barrier()
        t0 = comm.sim.now
        for _ in range(iters):
            # Slight deterministic imbalance, as real RNG batches have.
            skew = 1.0 + (comm.rank % 5) * 1e-3
            yield from comm.compute(compute_ns * skew)
            yield from comm.allreduce(nbytes=8)   # sx
            yield from comm.allreduce(nbytes=8)   # sy
            yield from comm.allreduce(nbytes=80)  # q[0..9]
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
