"""FT — 3D FFT.

Each iteration performs local 1D FFTs plus one global transpose: an
``MPI_Alltoall`` moving the rank's entire slab, N * 16 B / P per rank,
split evenly across peers.  FT is the pure bandwidth stressor of the
suite; per-message overheads matter little because blocks are large.
"""

from __future__ import annotations

import math

from repro.npb.base import FLOP_NS, NpbConfig, register

#: Class parameters: (nx, ny, nz, niter).
FT_CLASSES = {
    "S": (64, 64, 64, 6),
    "A": (256, 256, 128, 6),
    "B": (512, 256, 256, 20),
    "C": (512, 512, 512, 20),
    "D": (2048, 1024, 1024, 25),
}


@register("FT")
def make(cfg: NpbConfig):
    nx, ny, nz, niter = FT_CLASSES[cfg.klass]
    iters = cfg.effective_iters(niter)
    total = nx * ny * nz
    slab_bytes = total * 16 // cfg.ranks  # complex doubles
    block_bytes = max(slab_bytes // cfg.ranks, 16)
    # 5 N log2 N flops spread over the ranks per iteration.
    compute_ns = int(5 * total * math.log2(total)) // cfg.ranks * FLOP_NS

    def program(comm):
        yield from comm.barrier()
        t0 = comm.sim.now
        for _ in range(iters):
            yield from comm.compute(compute_ns)
            yield from comm.alltoall(block_bytes)
            yield from comm.compute(compute_ns * 0.3)
        # Checksum reduction.
        yield from comm.allreduce(nbytes=16)
        yield from comm.barrier()
        return (t0, comm.sim.now, comm.engine.bytes_sent, comm.engine.msgs_sent)

    return program, iters
