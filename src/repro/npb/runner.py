"""NPB execution glue: build a cluster, run a benchmark, collect results."""

from __future__ import annotations

from typing import Optional

from repro.cluster import build_cluster
from repro.hw.profiles import SystemProfile, get_profile
from repro.mpi import MpiWorld
from repro.npb.base import NpbConfig, NpbResult, get_benchmark

# Ensure all benchmark modules register themselves.
from repro.npb import bt_sp, cg, ep, ft, is_, lu, mg  # noqa: F401

DEFAULT_SUITE = ("IS", "EP", "CG", "MG", "FT", "LU", "BT", "SP")


def run_npb(
    config: NpbConfig,
    transport: str = "bypass",
    system: "SystemProfile | str" = "A",
    hosts_n: int = 2,
    seed: int = 11,
    rx_contention="auto",
) -> NpbResult:
    """Run one benchmark on a fresh cluster; returns its timing.

    ``rx_contention`` passes through to
    :func:`repro.cluster.build_cluster`: ``"auto"`` (default) models
    receiver-side fabric contention whenever the cluster has >2 hosts.
    """
    from repro.sim import Simulator

    profile = get_profile(system) if isinstance(system, str) else system
    sim = Simulator(seed=seed)
    _fabric, hosts = build_cluster(sim, profile, hosts_n,
                                   rx_contention=rx_contention)
    world = MpiWorld(sim, hosts, config.ranks, transport=transport)
    program, iters = get_benchmark(config.name)(config)
    results = world.run(program)
    t0 = min(r[0] for r in results)
    t1 = max(r[1] for r in results)
    return NpbResult(
        name=config.name,
        klass=config.klass,
        transport=transport,
        ranks=config.ranks,
        iterations=iters,
        elapsed_ns=t1 - t0,
        bytes_sent_total=sum(r[2] for r in results),
        msgs_sent_total=sum(r[3] for r in results),
    )


def _suite_point(point: tuple[NpbConfig, str, str]) -> NpbResult:
    cfg, transport, system = point
    return run_npb(cfg, transport=transport, system=system)


def run_suite(
    names=DEFAULT_SUITE,
    transports=("bypass", "cord", "ipoib"),
    klass: str = "B",
    ranks: int = 32,
    iter_scale: float = 0.1,
    system: str = "A",
    iterations: Optional[int] = None,
) -> dict[str, dict[str, NpbResult]]:
    """The fig. 6 grid: benchmark x transport -> result.

    Every cell is an independent cluster simulation with its own seed, so
    the grid fans out over worker processes (``REPRO_BENCH_WORKERS``).
    """
    from repro.bench_support import parallel_sweep

    points = []
    for name in names:
        cfg = NpbConfig(name=name, klass=klass, ranks=ranks,
                        iterations=iterations, iter_scale=iter_scale)
        for transport in transports:
            points.append((cfg, transport, system))
    results = parallel_sweep(_suite_point, points)
    out: dict[str, dict[str, NpbResult]] = {name: {} for name in names}
    for (cfg, transport, _), result in zip(points, results):
        out[cfg.name][transport] = result
    return out
