"""Deterministic fault injection for the fabric: loss, flaps, stalls, pauses.

The paper's converged-dataplane argument only matters if the dataplane
stays correct when the fabric misbehaves, so this module turns the
otherwise-lossless wire into a RoCE-like one on demand.  A
:class:`FaultPlan` describes *what* goes wrong — per-link packet-loss
probability, scheduled link-flap windows (every message in the window is
dropped), degradation windows (propagation inflated by a factor), NIC
stall intervals (arrivals at a host deferred to the window's end) and
receiver-pause periods (the responder claims no recv WQEs, forcing the
RNR path).  A :class:`FaultInjector` binds a plan to one simulator and
makes the drop/delay decisions.

Determinism contract: every random decision draws from a named
``repro.sim.rng`` stream (one per directed link — switch-port granularity,
with each host's hairpin path on its own ``loopback`` stream — derived
from the master seed), so two runs with the same seed and plan are
bit-identical, and plans touching different links do not perturb each
other's draws.  With
no injector attached the hook costs one ``is None`` branch per transmit
and zero RNG draws, keeping faults-off runs bit-identical to a build
without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Wire-message kinds that carry requester data (the rest are control:
#: acks, naks and responses).  Used by ``FaultPlan.drop_control=False``
#: to restrict loss to the forward direction.
DATA_KINDS = frozenset({"send", "write", "read_req", "atomic", "ip"})


def _check_window(name: str, start: float, end: float) -> None:
    if start < 0 or end < start:
        raise ConfigError(f"{name} window [{start}, {end}) is not a valid interval")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of what the fabric does wrong, and when.

    All times are simulation nanoseconds; all windows are half-open
    ``[start, end)``.  The plan is a frozen value type (tuples only) so
    it can ride inside a :class:`~repro.perftest.runner.PerftestConfig`
    across ``parallel_sweep`` process boundaries.
    """

    #: Uniform per-message drop probability on every link, including each
    #: host's hairpin/loopback path (src == dst) — intra-host ranks in
    #: multi-host MPI worlds see the same loss as wire traffic.
    loss: float = 0.0
    #: Per-directed-link overrides: ((src_host, dst_host, probability), ...).
    link_loss: tuple = ()
    #: Link-flap windows ((start_ns, end_ns), ...): every message entering
    #: the wire inside a window is dropped, on all links.
    flaps: tuple = ()
    #: Degradation windows ((start_ns, end_ns, factor), ...): propagation
    #: delay is multiplied by ``factor`` for messages sent in the window.
    degrade: tuple = ()
    #: NIC stall intervals ((host, start_ns, end_ns), ...): a message that
    #: would *arrive* at ``host`` inside the window is held until its end
    #: (the receive pipeline is wedged; nothing is lost).
    stalls: tuple = ()
    #: Receiver-pause periods ((host, start_ns, end_ns), ...): while
    #: paused, ``host`` claims to have no recv WQEs, so RC senders see
    #: RNR NAKs and UD traffic is dropped.
    pauses: tuple = ()
    #: When False, only data-bearing messages (see DATA_KINDS) can be
    #: lost; acks/naks/responses always arrive.  Default: drop anything.
    drop_control: bool = True

    def __post_init__(self):
        if not 0.0 <= self.loss <= 1.0:
            raise ConfigError(f"loss must be a probability, got {self.loss}")
        for src, dst, prob in self.link_loss:
            if not 0.0 <= prob <= 1.0:
                raise ConfigError(
                    f"link_loss[{src}->{dst}] must be a probability, got {prob}"
                )
        for start, end in self.flaps:
            _check_window("flap", start, end)
        for start, end, factor in self.degrade:
            _check_window("degrade", start, end)
            if factor < 1.0:
                raise ConfigError(f"degrade factor must be >= 1, got {factor}")
        for _host, start, end in self.stalls:
            _check_window("stall", start, end)
        for _host, start, end in self.pauses:
            _check_window("pause", start, end)

    @property
    def lossy(self) -> bool:
        """Can this plan ever drop a message?"""
        return bool(self.loss > 0.0 or self.flaps
                    or any(prob > 0.0 for _s, _d, prob in self.link_loss))

    @property
    def fastforward_safe(self) -> bool:
        """May steady-state fast-forward arm with this plan attached? Never.

        Even a plan whose windows look inert perturbs extrapolation: flap,
        degrade, stall and pause windows trigger on *absolute* simulated
        time, so a bulk clock advance could jump over (or into) one, and
        probabilistic loss draws per transmitted message, which skipped
        cycles would silently not consume.  The fast-forward probe
        therefore refuses to arm whenever any plan is attached — fidelity
        over speed on the fault path.
        """
        return False


class FaultInjector:
    """Binds a :class:`FaultPlan` to one simulator and makes the calls.

    The fabric (or a bare :class:`~repro.hw.link.Link`) consults
    :meth:`on_transmit` once per message after serialization; the NIC's
    responder consults :meth:`recv_paused` when claiming a recv WQE.
    """

    def __init__(self, sim: "Simulator", plan: FaultPlan, scope: str = "fabric"):
        self.sim = sim
        self.plan = plan
        self.scope = scope
        self.drops = 0
        self.delays = 0
        self.delay_ns_total = 0.0
        #: Drops per directed link (switch-port granularity); loopback
        #: traffic is keyed ``(h, h)``.
        self.drops_by_link: dict[tuple[int, int], int] = {}
        self._streams: dict[tuple[int, int], object] = {}
        self._link_loss = {(s, d): p for (s, d, p) in plan.link_loss}

    # -- decisions -------------------------------------------------------------

    def on_transmit(
        self,
        src: int,
        dst: int,
        now: float,
        kind: str,
        nbytes: int,
        propagation_ns: float,
    ) -> Optional[float]:
        """Fault verdict for one message leaving the wire at ``now``.

        Returns ``None`` when the message is dropped, else the extra
        delay (>= 0.0) to add on top of ``propagation_ns``.
        """
        plan = self.plan
        for start, end in plan.flaps:
            if start <= now < end:
                return self._dropped(src, dst, kind, nbytes, "flap")
        prob = self._link_loss.get((src, dst), plan.loss)
        if prob > 0.0 and (plan.drop_control or kind in DATA_KINDS):
            if self._stream(src, dst).random() < prob:
                return self._dropped(src, dst, kind, nbytes, "loss")
        extra = 0.0
        for start, end, factor in plan.degrade:
            if start <= now < end:
                extra += (factor - 1.0) * propagation_ns
        if plan.stalls:
            arrival = now + propagation_ns + extra
            for host, start, end in plan.stalls:
                if host == dst and start <= arrival < end:
                    extra += end - arrival
                    arrival = end
        if extra > 0.0:
            self.delays += 1
            self.delay_ns_total += extra
        return extra

    def recv_paused(self, host: int, now: float) -> bool:
        """Is ``host``'s receive side refusing WQEs at ``now``?"""
        for h, start, end in self.plan.pauses:
            if h == host and start <= now < end:
                return True
        return False

    # -- internals -------------------------------------------------------------

    def _stream(self, src: int, dst: int):
        key = (src, dst)
        gen = self._streams.get(key)
        if gen is None:
            # One RNG stream per directed link: traffic on other links
            # never shifts this link's drop sequence.  A host's hairpin
            # path gets its own ``loopback`` stream so intra-host loss
            # decisions never perturb wire-link draws (and vice versa).
            if src == dst:
                name = f"faults.{self.scope}.loopback{src}"
            else:
                name = f"faults.{self.scope}.l{src}-{dst}"
            gen = self.sim.rng.stream(name)
            self._streams[key] = gen
        return gen

    def _dropped(self, src: int, dst: int, kind: str, nbytes: int,
                 cause: str) -> None:
        self.drops += 1
        key = (src, dst)
        self.drops_by_link[key] = self.drops_by_link.get(key, 0) + 1
        tele = self.sim.telemetry
        if tele.enabled:
            reg = tele.scope(self.scope)
            reg.counter("fault.drops").inc(key=cause)
            reg.counter("fault.dropped_bytes").inc(nbytes, key=kind)
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "fault", "drop",
                       kind=kind, cause=cause, size=nbytes)
        return None

    def snapshot(self) -> dict[str, object]:
        return {
            "drops": self.drops,
            "delays": self.delays,
            "delay_ns_total": self.delay_ns_total,
            "drops_by_link": {
                f"{s}-{d}": n
                for (s, d), n in sorted(self.drops_by_link.items())
            },
        }


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the CLI ``--faults`` grammar into a :class:`FaultPlan`.

    Comma-separated clauses, times in ns (floats, so ``1.5e6`` works)::

        loss=0.01                    uniform drop probability
        link=SRC-DST:PROB            per-directed-link loss override
        flap=START:END               drop everything in the window
        degrade=START:END:FACTOR     inflate propagation by FACTOR
        stall=HOST:START:END         defer arrivals at HOST to window end
        pause=HOST:START:END         HOST claims no recv WQEs (RNR)
        nodropctl                    loss never eats acks/responses
    """
    loss = 0.0
    link_loss: list[tuple] = []
    flaps: list[tuple] = []
    degrade: list[tuple] = []
    stalls: list[tuple] = []
    pauses: list[tuple] = []
    drop_control = True

    def _floats(val: str, n: int, clause: str) -> list[float]:
        parts = val.split(":")
        if len(parts) != n:
            raise ConfigError(
                f"--faults clause {clause!r}: expected {n} ':'-separated "
                f"fields, got {len(parts)}"
            )
        try:
            return [float(p) for p in parts]
        except ValueError:
            raise ConfigError(
                f"--faults clause {clause!r}: non-numeric field"
            ) from None

    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if clause == "nodropctl":
            drop_control = False
            continue
        key, sep, val = clause.partition("=")
        if not sep:
            raise ConfigError(f"--faults clause {clause!r} is not KEY=VALUE")
        if key == "loss":
            try:
                loss = float(val)
            except ValueError:
                raise ConfigError(
                    f"--faults loss must be a float, got {val!r}"
                ) from None
        elif key == "link":
            pair, sep2, prob = val.partition(":")
            src, sep3, dst = pair.partition("-")
            if not (sep2 and sep3):
                raise ConfigError(
                    f"--faults clause {clause!r}: want link=SRC-DST:PROB"
                )
            try:
                link_loss.append((int(src), int(dst), float(prob)))
            except ValueError:
                raise ConfigError(
                    f"--faults clause {clause!r}: non-numeric field"
                ) from None
        elif key == "flap":
            flaps.append(tuple(_floats(val, 2, clause)))
        elif key == "degrade":
            degrade.append(tuple(_floats(val, 3, clause)))
        elif key in ("stall", "pause"):
            host, start, end = _floats(val, 3, clause)
            (stalls if key == "stall" else pauses).append(
                (int(host), start, end)
            )
        else:
            raise ConfigError(f"--faults: unknown clause key {key!r}")
    return FaultPlan(
        loss=loss,
        link_loss=tuple(link_loss),
        flaps=tuple(flaps),
        degrade=tuple(degrade),
        stalls=tuple(stalls),
        pauses=tuple(pauses),
        drop_control=drop_control,
    )
