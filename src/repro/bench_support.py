"""Shared plumbing for the figure benchmarks in ``benchmarks/``.

Each benchmark regenerates one table/figure of the paper: it runs the
simulation sweep, prints the series as an ASCII table (the same rows the
paper plots), writes the table under ``results/``, and evaluates the
paper's qualitative claims as PASS/FAIL shape checks.

``REPRO_BENCH_SCALE`` (float, default 1.0) scales iteration counts for
quick smoke runs (e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from repro.analysis.compare import CheckResult

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def bench_scale() -> float:
    """Global iteration-count multiplier from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    return max(minimum, int(round(n * bench_scale())))


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def report_checks(name: str, checks: Iterable[CheckResult], strict: bool = True) -> str:
    """Render shape checks; assert them when ``strict``."""
    checks = list(checks)
    lines = ["shape checks vs paper:"]
    lines += [c.line() for c in checks]
    text = "\n".join(lines)
    print(text)
    failed = [c for c in checks if not c.passed]
    if strict and failed:
        raise AssertionError(
            f"{name}: {len(failed)} shape check(s) failed:\n"
            + "\n".join(c.line() for c in failed)
        )
    return text
