"""Shared plumbing for the figure benchmarks in ``benchmarks/``.

Each benchmark regenerates one table/figure of the paper: it runs the
simulation sweep, prints the series as an ASCII table (the same rows the
paper plots), writes the table under ``results/``, and evaluates the
paper's qualitative claims as PASS/FAIL shape checks.

``REPRO_BENCH_SCALE`` (float, default 1.0) scales iteration counts for
quick smoke runs (e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``).

``REPRO_BENCH_WORKERS`` (int, default = CPU count) sets how many worker
processes :func:`parallel_sweep` fans sweep points over.  ``1`` forces
serial execution in-process.

:func:`figure_bench` wraps one figure's sweep in wall-clock + simulation
accounting and appends the measurement to ``results/BENCH_figures.json``
(override the path with ``REPRO_BENCH_JSON``), keyed by figure name and
by whether steady-state fast-forward was on — so a base/fast-forward pair
of runs yields a recorded speedup (see ``tools/check_bench_budget.py``).
Only same-scale, same-worker-count pairs enter the summary speedup, and
smoke-scale runs (``REPRO_BENCH_SCALE`` < 1) are never merged into the
default committed record — set ``REPRO_BENCH_JSON`` to record them.
"""

from __future__ import annotations

import gc
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.analysis.compare import CheckResult
from repro.errors import ConfigError

_T = TypeVar("_T")
_R = TypeVar("_R")


def results_dir() -> Path:
    """Output directory for tables, read from ``REPRO_RESULTS_DIR`` at
    *call* time — setting the variable after import works."""
    return Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def __getattr__(name: str):
    # Back-compat: RESULTS_DIR used to be a module constant frozen at
    # import time; resolve it lazily so late env changes are honoured.
    if name == "RESULTS_DIR":
        return results_dir()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def bench_scale() -> float:
    """Global iteration-count multiplier from the environment."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "").strip()
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_BENCH_SCALE must be a number, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"REPRO_BENCH_SCALE must be non-negative, got {raw!r}")
    return value


def scaled(n: int, minimum: int = 1) -> int:
    return max(minimum, int(round(n * bench_scale())))


def bench_workers() -> int:
    """Worker-process count for :func:`parallel_sweep`.

    ``REPRO_BENCH_WORKERS`` wins when set; otherwise all CPUs.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigError(
                f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}"
            ) from None
    return os.cpu_count() or 1


BENCH_JSON_ENV = "REPRO_BENCH_JSON"


def bench_json_path() -> Path:
    """Where :func:`figure_bench` records its measurements."""
    raw = os.environ.get(BENCH_JSON_ENV, "").strip()
    return Path(raw) if raw else results_dir() / "BENCH_figures.json"


def _load_bench_json(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {"benchmarks": {}, "summary": {}}
    if not isinstance(data, dict):
        return {"benchmarks": {}, "summary": {}}
    data.setdefault("benchmarks", {})
    data.setdefault("summary", {})
    return data


def _summarize(benchmarks: dict) -> dict:
    """Aggregate base-vs-fast-forward speedup over figures with both runs.

    A pair only counts when both runs were taken at the same ``scale`` and
    ``workers`` — a smoke-scale ff run against a full-scale base would
    record a meaningless speedup (and the CI gate evaluates it).
    Mismatched pairs are listed separately so the gate can name them.
    """
    base_s = ff_s = 0.0
    paired = []
    mismatched = []
    scales = set()
    for name, modes in sorted(benchmarks.items()):
        if "base" not in modes or "ff" not in modes:
            continue
        base, ff = modes["base"], modes["ff"]
        if (base.get("scale"), base.get("workers")) != \
                (ff.get("scale"), ff.get("workers")):
            mismatched.append(name)
            continue
        base_s += base["wall_s"]
        ff_s += ff["wall_s"]
        paired.append(name)
        scales.add(base.get("scale"))
    summary = {"paired_benchmarks": paired}
    if mismatched:
        summary["mismatched_benchmarks"] = mismatched
    if paired and ff_s > 0:
        summary.update({
            "base_wall_s": round(base_s, 3),
            "ff_wall_s": round(ff_s, 3),
            "speedup": round(base_s / ff_s, 3),
        })
        if len(scales) == 1:
            (summary["scale"],) = scales
    return summary


def record_figure_bench(name: str, entry: dict) -> Optional[Path]:
    """Merge one figure measurement into the benchmark JSON (see module
    docstring) and refresh the cross-figure summary.

    The default path is the *committed* full-scale record, so scaled-down
    smoke runs (``REPRO_BENCH_SCALE`` < 1) are not merged into it — point
    ``REPRO_BENCH_JSON`` somewhere explicitly to record them.  Returns the
    path written, or ``None`` when the entry was refused.
    """
    if entry.get("scale", 1.0) < 1.0 and not os.environ.get(BENCH_JSON_ENV, "").strip():
        print(f"[bench] not recording {name!r} at scale {entry.get('scale')} "
              f"into the committed {bench_json_path()} (set {BENCH_JSON_ENV} "
              "to record smoke runs)")
        return None
    path = bench_json_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    data = _load_bench_json(path)
    mode = "ff" if entry.get("fastforward") else "base"
    data["benchmarks"].setdefault(name, {})[mode] = entry
    data["summary"] = _summarize(data["benchmarks"])
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


@contextmanager
def figure_bench(name: str):
    """Account one figure's sweep: wall-clock seconds plus simulation-side
    run stats (events simulated, fast-forward skips), recorded into
    ``BENCH_figures.json``.

    Wall-clock here is benchmark instrumentation *about* the simulator,
    never an input to it — results stay bit-identical with or without the
    wrapper.
    """
    from repro.perftest.runner import run_stats_snapshot

    before = run_stats_snapshot()
    t0 = time.perf_counter()  # sim: allow-wallclock(benchmark harness timing, not simulation input)
    yield
    wall = time.perf_counter() - t0  # sim: allow-wallclock(benchmark harness timing, not simulation input)
    after = run_stats_snapshot()
    entry = {
        "wall_s": round(wall, 4),
        "scale": bench_scale(),
        "workers": bench_workers(),
        "fastforward": _fastforward_on(),
    }
    for key, value in after.items():
        delta = value - before.get(key, 0)
        entry[key] = round(delta, 3) if isinstance(delta, float) else delta
    record_figure_bench(name, entry)


def _fastforward_on() -> bool:
    from repro.perftest.runner import _fastforward_on as ff_on

    return ff_on()


def _instrumented_point(task):
    """Worker-side wrapper: run one sweep point and ship the per-point run
    stats back with the result (the parent merges them, so figure_bench
    totals are identical for any worker count)."""
    from repro.perftest.runner import reset_run_stats, run_stats_snapshot

    point, p = task
    reset_run_stats()
    result = point(p)
    return result, run_stats_snapshot()


def _worker_init() -> None:
    # Sweep workers churn through millions of short-lived simulation
    # objects with reference cycles (process <-> event).  The default gen-0
    # threshold (700) makes the cycle collector a measurable fraction of a
    # run; a worker's entire heap dies with the process anyway, so trade
    # peak RSS for speed.  Collection still happens, just rarely.
    gc.set_threshold(200_000, 200, 200)


def parallel_sweep(
    point: Callable[[_T], _R],
    points: Sequence[_T],
    workers: int | None = None,
) -> list[_R]:
    """Run ``point(p)`` for every sweep point, fanned over worker processes.

    Results come back in the order of ``points`` regardless of which worker
    finishes first, and every point builds its own fresh, seeded
    ``Simulator`` — so the output is bit-identical to a serial run for any
    worker count (including the serial fallback).  ``point`` must be a
    module-level function and each point picklable.

    Worker count: explicit ``workers`` argument, else ``REPRO_BENCH_WORKERS``,
    else the CPU count.  One worker (or one point, or a platform without
    ``fork``) degrades gracefully to a plain in-process loop.
    """
    points = list(points)
    if workers is None:
        workers = bench_workers()
    workers = min(workers, len(points))
    if workers <= 1:
        return [point(p) for p in points]
    try:
        import multiprocessing

        # fork keeps already-imported benchmark modules (and __main__
        # entrypoints) picklable by reference and skips re-import cost.
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [point(p) for p in points]
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx, initializer=_worker_init
    ) as pool:
        out = list(pool.map(_instrumented_point,
                            [(point, p) for p in points], chunksize=1))
    from repro.perftest.runner import merge_run_stats

    for _result, snap in out:
        merge_run_stats(snap)
    return [result for result, _snap in out]


ATTRIBUTION_JSON_ENV = "REPRO_ATTRIBUTION_JSON"


def attribution_json_path() -> Path:
    """Where :func:`record_attribution_probes` writes its baselines."""
    raw = os.environ.get(ATTRIBUTION_JSON_ENV, "").strip()
    return Path(raw) if raw else results_dir() / "BENCH_attribution.json"


def record_attribution_probes(figure: str) -> Path:
    """Run one figure's pinned attribution probes and merge the per-stage
    blame baselines into ``BENCH_attribution.json``.

    Probe iteration counts are pinned in
    :data:`repro.telemetry.attribution.ATTRIBUTION_PROBES` — deliberately
    *not* scaled by ``REPRO_BENCH_SCALE`` — so the recorded stage totals
    are identical at any scale and ``tools/check_attribution.py`` can
    recompute them exactly in CI.
    """
    from repro.telemetry.attribution import run_figure_probes

    entries = run_figure_probes(figure)
    path = attribution_json_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        data = {}
    if not isinstance(data, dict):
        data = {}
    data.setdefault("probes", {}).update(entries)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"[bench] recorded {len(entries)} attribution probe(s) for "
          f"{figure!r} -> {path}")
    return path


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print()
    print(text)
    outdir = results_dir()
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{name}.txt"
    path.write_text(text + "\n")


def report_checks(name: str, checks: Iterable[CheckResult], strict: bool = True) -> str:
    """Render shape checks; assert them when ``strict``.

    The quantitative bounds are calibrated at full iteration counts, so
    scaled-down smoke runs (``REPRO_BENCH_SCALE`` < 0.5) report PASS/FAIL
    without asserting — the sweep still exercises every code path.
    """
    strict = strict and bench_scale() >= 0.5
    checks = list(checks)
    lines = ["shape checks vs paper:"]
    lines += [c.line() for c in checks]
    text = "\n".join(lines)
    print(text)
    failed = [c for c in checks if not c.passed]
    if strict and failed:
        raise AssertionError(
            f"{name}: {len(failed)} shape check(s) failed:\n"
            + "\n".join(c.line() for c in failed)
        )
    return text
