"""Shared plumbing for the figure benchmarks in ``benchmarks/``.

Each benchmark regenerates one table/figure of the paper: it runs the
simulation sweep, prints the series as an ASCII table (the same rows the
paper plots), writes the table under ``results/``, and evaluates the
paper's qualitative claims as PASS/FAIL shape checks.

``REPRO_BENCH_SCALE`` (float, default 1.0) scales iteration counts for
quick smoke runs (e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``).

``REPRO_BENCH_WORKERS`` (int, default = CPU count) sets how many worker
processes :func:`parallel_sweep` fans sweep points over.  ``1`` forces
serial execution in-process.
"""

from __future__ import annotations

import gc
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.analysis.compare import CheckResult
from repro.errors import ConfigError

_T = TypeVar("_T")
_R = TypeVar("_R")


def results_dir() -> Path:
    """Output directory for tables, read from ``REPRO_RESULTS_DIR`` at
    *call* time — setting the variable after import works."""
    return Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def __getattr__(name: str):
    # Back-compat: RESULTS_DIR used to be a module constant frozen at
    # import time; resolve it lazily so late env changes are honoured.
    if name == "RESULTS_DIR":
        return results_dir()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def bench_scale() -> float:
    """Global iteration-count multiplier from the environment."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "").strip()
    if not raw:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_BENCH_SCALE must be a number, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"REPRO_BENCH_SCALE must be non-negative, got {raw!r}")
    return value


def scaled(n: int, minimum: int = 1) -> int:
    return max(minimum, int(round(n * bench_scale())))


def bench_workers() -> int:
    """Worker-process count for :func:`parallel_sweep`.

    ``REPRO_BENCH_WORKERS`` wins when set; otherwise all CPUs.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ConfigError(
                f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}"
            ) from None
    return os.cpu_count() or 1


def _worker_init() -> None:
    # Sweep workers churn through millions of short-lived simulation
    # objects with reference cycles (process <-> event).  The default gen-0
    # threshold (700) makes the cycle collector a measurable fraction of a
    # run; a worker's entire heap dies with the process anyway, so trade
    # peak RSS for speed.  Collection still happens, just rarely.
    gc.set_threshold(200_000, 200, 200)


def parallel_sweep(
    point: Callable[[_T], _R],
    points: Sequence[_T],
    workers: int | None = None,
) -> list[_R]:
    """Run ``point(p)`` for every sweep point, fanned over worker processes.

    Results come back in the order of ``points`` regardless of which worker
    finishes first, and every point builds its own fresh, seeded
    ``Simulator`` — so the output is bit-identical to a serial run for any
    worker count (including the serial fallback).  ``point`` must be a
    module-level function and each point picklable.

    Worker count: explicit ``workers`` argument, else ``REPRO_BENCH_WORKERS``,
    else the CPU count.  One worker (or one point, or a platform without
    ``fork``) degrades gracefully to a plain in-process loop.
    """
    points = list(points)
    if workers is None:
        workers = bench_workers()
    workers = min(workers, len(points))
    if workers <= 1:
        return [point(p) for p in points]
    try:
        import multiprocessing

        # fork keeps already-imported benchmark modules (and __main__
        # entrypoints) picklable by reference and skips re-import cost.
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [point(p) for p in points]
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx, initializer=_worker_init
    ) as pool:
        return list(pool.map(point, points, chunksize=1))


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print()
    print(text)
    outdir = results_dir()
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{name}.txt"
    path.write_text(text + "\n")


def report_checks(name: str, checks: Iterable[CheckResult], strict: bool = True) -> str:
    """Render shape checks; assert them when ``strict``.

    The quantitative bounds are calibrated at full iteration counts, so
    scaled-down smoke runs (``REPRO_BENCH_SCALE`` < 0.5) report PASS/FAIL
    without asserting — the sweep still exercises every code path.
    """
    strict = strict and bench_scale() >= 0.5
    checks = list(checks)
    lines = ["shape checks vs paper:"]
    lines += [c.line() for c in checks]
    text = "\n".join(lines)
    print(text)
    failed = [c for c in checks if not c.passed]
    if strict and failed:
        raise AssertionError(
            f"{name}: {len(failed)} shape check(s) failed:\n"
            + "\n".join(c.line() for c in failed)
        )
    return text
