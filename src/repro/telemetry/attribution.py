"""Latency attribution: blame trees over causal op spans.

:func:`repro.telemetry.spans.build_spans` already yields per-op stage
intervals that partition ``[begin, end]`` exactly.  This module is the
*post-processing* layer on top (the hot path gains nothing — attribution
only ever reads a finished trace): it splits every stage's duration into

- **queueing** — time spent waiting behind other operations on the same
  serial server (the tx WQE engine, the rx engine, the source wire port)
  or, for a written-but-unreaped CQE, waiting for the application to poll;
- **service** — time the stage's component actually worked on this op.

The split needs no extra instrumentation because the contended components
are serial FIFO servers: within one server, sort all spans' stage
intervals by completion time, and an interval's service can only have
started when the server finished the previous interval.  Formally, for
intervals in end order::

    service_start = max(own_start, previous_interval_end)

which is exact for FIFO service and degenerates to queue = 0 when the
server was idle.  The previous interval is remembered as the stage's
*blocker*, which is what lets :mod:`repro.analysis.critpath` chase the
critical path across coupled ops (send_bw's windowed transmitter).

Because the simulation is bit-deterministic, the resulting per-stage
totals are exact and CI gates on them with zero tolerance for
deterministic configs (``tools/check_attribution.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.telemetry.spans import OpSpan

#: Stages whose opening component is a serial FIFO server: the interval is
#: queue-behind-earlier-ops plus service, split by the end-order sweep.
#: ``doorbell`` = the tx WQE engine (one WQE at a time, message-rate cap),
#: ``rx_arrive`` = the rx engine, ``tx_wire`` = the source port
#: (capacity-1 resource; serialization is FIFO per host), ``rx_port`` =
#: the destination's switch output queue + RX ingress port (emitted only
#: when the fabric runs with receiver-side contention; fan-in queueing
#: lands here).
SERIAL_STAGES = frozenset({"doorbell", "rx_arrive", "tx_wire", "rx_port"})

#: Stages that are pure waiting: the CQE is in host memory, the op is done
#: at the device, and the clock runs until the application reaps it.  The
#: whole interval is queueing (behind the app's poll loop / other CQEs).
#: ``cc_pace`` is the DCQCN token-bucket pacing delay before WQE fetch
#: (emitted only when congestion control is on and the op was actually
#: held back): self-imposed waiting, not service.
WAIT_STAGES = frozenset({"cqe", "cc_pace"})


def base_stage(name: str) -> str:
    """Strip the ``#n`` repeat suffix ``OpSpan.stages()`` adds."""
    return name.split("#", 1)[0]


@dataclass
class StageBlame:
    """One stage of one op, with its queueing/service split."""

    name: str  # instance name, repeat suffix kept ("rx_arrive#2")
    host: object
    comp: str
    start_ns: float
    end_ns: float
    #: "serial" (FIFO server: sweep decides), "wait" (all queue),
    #: "service" (fixed-latency pipeline segment: all service).
    kind: str
    #: When service actually began (== start_ns unless queued).
    service_start_ns: float
    #: (span_id, stage name) whose service end gated ours, if queued
    #: behind another op on the same serial server.
    blocker: Optional[tuple[int, str]] = None

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def queue_ns(self) -> float:
        return self.service_start_ns - self.start_ns

    @property
    def service_ns(self) -> float:
        return self.end_ns - self.service_start_ns


@dataclass
class OpBlame:
    """One operation's blame tree: its stages, split and accounted."""

    span_id: int
    op: str
    dataplane: str
    host: object
    size: int
    begin_ns: float
    end_ns: float
    complete: bool
    stages: list[StageBlame] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        return self.end_ns - self.begin_ns

    @property
    def explained_ns(self) -> float:
        return sum(s.duration_ns for s in self.stages)

    @property
    def residual_ns(self) -> float:
        """End-to-end time not covered by any named stage.

        Zero by construction for spans built from an untruncated trace
        (stages partition ``[begin, end]``); reported explicitly so a
        nonzero value is loud, never silent.
        """
        return self.total_ns - self.explained_ns

    @property
    def explained_fraction(self) -> float:
        if self.total_ns <= 0:
            return 1.0
        return self.explained_ns / self.total_ns

    def tree_lines(self) -> list[str]:
        """Human-readable blame tree for this one op."""
        head = (f"span {self.span_id}  {self.op}  {self.size} B  "
                f"{self.dataplane}  total {self.total_ns:.1f} ns"
                + ("" if self.complete else "  [incomplete]"))
        lines = [head]
        for i, s in enumerate(self.stages):
            branch = "└─" if i == len(self.stages) - 1 else "├─"
            parts = [f"service {s.service_ns:.1f}"]
            if s.queue_ns > 0:
                blocked = (f" behind span {s.blocker[0]}:{s.blocker[1]}"
                           if s.blocker else "")
                parts.insert(0, f"queue {s.queue_ns:.1f}{blocked}")
            lines.append(
                f"{branch} host{s.host}/{s.comp:<7s} {s.name:<12s} "
                f"{s.duration_ns:10.1f} ns  ({', '.join(parts)})"
            )
        lines.append(f"   residual {self.residual_ns:.1f} ns "
                     f"(explained {self.explained_fraction * 100:.1f}%)")
        return lines


def attribute_spans(
    spans: Iterable[OpSpan], complete_only: bool = True
) -> list[OpBlame]:
    """Split every span's stages into queueing vs service.

    Incomplete spans (no ``op_end``; e.g. unsignaled one-sided WRs the
    application never reaps) are skipped unless ``complete_only=False`` —
    their extent ends at the last causal mark, not at an app observation,
    so mixing them into per-op latency aggregates would skew the tables.
    """
    blames: list[OpBlame] = []
    for span in spans:
        if complete_only and not span.complete:
            continue
        stages: list[StageBlame] = []
        for s in span.stages():
            base = base_stage(s.name)
            if base in SERIAL_STAGES:
                kind = "serial"
                svc_start = s.start_ns  # sweep below may push it later
            elif base in WAIT_STAGES:
                kind = "wait"
                svc_start = s.end_ns  # all queue: device done, app not yet
            else:
                kind = "service"
                svc_start = s.start_ns
            stages.append(StageBlame(
                name=s.name, host=s.host, comp=s.comp,
                start_ns=s.start_ns, end_ns=s.end_ns,
                kind=kind, service_start_ns=svc_start,
            ))
        blames.append(OpBlame(
            span_id=span.span_id, op=span.op, dataplane=span.dataplane,
            host=span.host, size=span.size, begin_ns=span.begin_ns,
            end_ns=span.end_ns, complete=span.complete, stages=stages,
        ))

    # The serial-server sweep: group same-server stage intervals across
    # ops, sort by end time, and gate each service start on the previous
    # end.  ``sorted`` keys include the span id so ties break
    # deterministically.
    groups: dict[tuple, list[tuple[StageBlame, int]]] = {}
    for blame in blames:
        for stage in blame.stages:
            if stage.kind == "serial":
                key = (str(stage.host), stage.comp, base_stage(stage.name))
                groups.setdefault(key, []).append((stage, blame.span_id))
    for items in groups.values():
        items.sort(key=lambda it: (it[0].end_ns, it[1]))
        prev_end = float("-inf")
        prev_ref: Optional[tuple[int, str]] = None
        for stage, span_id in items:
            if prev_end > stage.start_ns:
                # Queued behind the previous occupant.  Clamp at the stage
                # end (out-of-FIFO anomalies, e.g. PSN reorder holds under
                # faults, become all-queue rather than negative service).
                stage.service_start_ns = min(prev_end, stage.end_ns)
                stage.blocker = prev_ref
            prev_end = stage.end_ns
            prev_ref = (span_id, stage.name)
    return blames


# -- aggregation ---------------------------------------------------------------


@dataclass
class StageStats:
    """One stage's aggregate across the ops of a measurement."""

    name: str
    count: int = 0
    total_ns: float = 0.0
    queue_ns: float = 0.0
    service_ns: float = 0.0
    durations: list[float] = field(default_factory=list, repr=False)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def p50_ns(self) -> float:
        return float(np.percentile(self.durations, 50)) if self.durations else 0.0

    @property
    def p99_ns(self) -> float:
        return float(np.percentile(self.durations, 99)) if self.durations else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "queue_ns": self.queue_ns,
            "service_ns": self.service_ns,
            "mean_ns": self.mean_ns,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
        }


@dataclass
class AttributionTable:
    """Per-stage aggregate attribution for one measurement's ops."""

    op: str
    dataplane: str
    size: int
    ops: int = 0
    incomplete: int = 0
    total_latency_ns: float = 0.0
    residual_ns: float = 0.0
    explained_min: float = 1.0
    stages: dict[str, StageStats] = field(default_factory=dict)

    def rows(self) -> tuple[list[str], list[list[str]]]:
        header = ["stage", "count", "mean ns", "queue ns", "service ns",
                  "p50 ns", "p99 ns", "share %"]
        rows = []
        for name, st in self.stages.items():
            share = (st.total_ns / self.total_latency_ns * 100
                     if self.total_latency_ns else 0.0)
            rows.append([
                name, str(st.count), f"{st.mean_ns:.1f}",
                f"{st.queue_ns / st.count:.1f}" if st.count else "0.0",
                f"{st.service_ns / st.count:.1f}" if st.count else "0.0",
                f"{st.p50_ns:.1f}", f"{st.p99_ns:.1f}", f"{share:.1f}",
            ])
        return header, rows

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dict with *exact* float stage totals (gate input)."""
        return {
            "op": self.op,
            "dataplane": self.dataplane,
            "size": self.size,
            "ops": self.ops,
            "incomplete": self.incomplete,
            "total_latency_ns": self.total_latency_ns,
            "residual_ns": self.residual_ns,
            "explained_min": self.explained_min,
            "stages": {
                name: st.snapshot() for name, st in self.stages.items()
            },
        }


def aggregate(blames: Iterable[OpBlame], incomplete: int = 0) -> list[AttributionTable]:
    """Fold blame trees into per-(op, dataplane, size) attribution tables.

    Stage instance names keep their repeat suffix: the forward ``rx_arrive``
    and the ACK leg's ``rx_arrive#2`` are different places to lose time.
    """
    tables: dict[tuple, AttributionTable] = {}
    for blame in blames:
        key = (blame.op, blame.dataplane, blame.size)
        table = tables.get(key)
        if table is None:
            table = tables[key] = AttributionTable(
                op=blame.op, dataplane=blame.dataplane, size=blame.size)
        table.ops += 1
        table.total_latency_ns += blame.total_ns
        table.residual_ns += blame.residual_ns
        table.explained_min = min(table.explained_min, blame.explained_fraction)
        for stage in blame.stages:
            st = table.stages.get(stage.name)
            if st is None:
                st = table.stages[stage.name] = StageStats(stage.name)
            st.count += 1
            st.total_ns += stage.duration_ns
            st.queue_ns += stage.queue_ns
            st.service_ns += stage.service_ns
            st.durations.append(stage.duration_ns)
    out = [tables[key] for key in sorted(tables, key=str)]
    for table in out:
        table.incomplete = incomplete
    return out


# -- figure attribution probes -------------------------------------------------
#
# Each figure benchmark re-runs a small pinned-iteration slice of its sweep
# with full tracing and records the per-stage attribution into
# ``results/BENCH_attribution.json``.  Iteration counts are pinned (never
# scaled by REPRO_BENCH_SCALE) so the committed baselines are reproducible
# from any checkout at any scale: ``tools/check_attribution.py`` recomputes
# every entry and compares stage totals exactly for deterministic systems,
# within a tolerance band for the jittered system A (whose lognormal
# syscall jitter goes through libm and may differ in the last bits across
# platforms).


@dataclass(frozen=True)
class ProbeSpec:
    """One pinned attribution measurement (reproducible from this spec)."""

    figure: str
    label: str
    kind: str  # "lat" | "bw"
    size: int
    system: str = "L"
    transport: str = "RC"
    op: str = "send"
    client: str = "bypass"
    server: str = "bypass"
    iters: int = 80
    warmup: int = 12
    window: int = 32
    seed: int = 7
    techniques: tuple[bool, bool, bool] = (True, True, True)
    #: Exact systems gate with zero tolerance; jittered ones with a band.
    exact: bool = True

    @property
    def key(self) -> str:
        return f"{self.figure}/{self.label}/{self.kind}/{self.size}"

    def config(self):
        from repro.perftest.runner import PerftestConfig
        from repro.perftest.techniques import Techniques

        zero_copy, kernel_bypass, polling = self.techniques
        return PerftestConfig(
            system=self.system, transport=self.transport, op=self.op,
            client=self.client, server=self.server,
            iters=self.iters, warmup=self.warmup, window=self.window,
            seed=self.seed, fastforward=False,
            techniques=Techniques(zero_copy=zero_copy,
                                  kernel_bypass=kernel_bypass,
                                  polling=polling),
        )

    def asdict(self) -> dict[str, object]:
        return {
            "figure": self.figure, "label": self.label, "kind": self.kind,
            "size": self.size, "system": self.system,
            "transport": self.transport, "op": self.op,
            "client": self.client, "server": self.server,
            "iters": self.iters, "warmup": self.warmup,
            "window": self.window, "seed": self.seed,
            "techniques": list(self.techniques), "exact": self.exact,
        }

    @classmethod
    def fromdict(cls, d: dict) -> "ProbeSpec":
        return cls(
            figure=d["figure"], label=d["label"], kind=d["kind"],
            size=int(d["size"]), system=d["system"],
            transport=d["transport"], op=d["op"], client=d["client"],
            server=d["server"], iters=int(d["iters"]),
            warmup=int(d["warmup"]), window=int(d["window"]),
            seed=int(d["seed"]), techniques=tuple(d["techniques"]),
            exact=bool(d["exact"]),
        )


def _fig1_probes() -> list[ProbeSpec]:
    variants = [
        ("baseline", (True, True, True)),
        ("no-zero-copy", (False, True, True)),
        ("no-kernel-bypass", (True, False, True)),
        ("no-polling", (True, True, False)),
    ]
    return [
        ProbeSpec(figure="fig1", label=label, kind="lat", size=65536,
                  techniques=tech)
        for label, tech in variants
    ]


def _fig3_probes() -> list[ProbeSpec]:
    out = []
    for size in (4096, 32768):
        out.append(ProbeSpec(figure="fig3", label="BP-BP", kind="lat", size=size))
        out.append(ProbeSpec(figure="fig3", label="CD-CD", kind="lat", size=size,
                             client="cord", server="cord"))
    return out


def _fig4_probes() -> list[ProbeSpec]:
    bw = dict(kind="bw", size=32768, iters=150, warmup=30, window=32)
    return [
        ProbeSpec(figure="fig4", label="BP-BP", **bw),
        ProbeSpec(figure="fig4", label="CD-CD", client="cord", server="cord", **bw),
    ]


def _fig5_probes() -> list[ProbeSpec]:
    a = dict(kind="lat", size=4096, system="A", exact=False)
    return [
        ProbeSpec(figure="fig5", label="BP-BP", **a),
        ProbeSpec(figure="fig5", label="CD-CD", client="cord", server="cord", **a),
    ]


ATTRIBUTION_PROBES: dict[str, list[ProbeSpec]] = {
    "fig1": _fig1_probes(),
    "fig3": _fig3_probes(),
    "fig4": _fig4_probes(),
    "fig5": _fig5_probes(),
}


def run_probe(spec: ProbeSpec) -> dict[str, object]:
    """Run one probe measurement and return its baseline JSON entry."""
    from repro.perftest.runner import run_attributed

    _result, sim, _pair = run_attributed(spec.config(), spec.size, spec.kind)
    from repro.telemetry.spans import build_spans

    spans = build_spans(sim.trace, op="post_send")
    incomplete = sum(1 for s in spans if not s.complete)
    blames = attribute_spans(spans)
    tables = aggregate(blames, incomplete=incomplete)
    if len(tables) != 1:  # pragma: no cover - probes are single-config
        raise RuntimeError(f"probe {spec.key}: expected one table, "
                           f"got {len(tables)}")
    entry: dict[str, object] = {"spec": spec.asdict(),
                                "dropped": sim.trace.dropped}
    entry.update(tables[0].snapshot())
    return entry


def run_figure_probes(figure: str) -> dict[str, dict[str, object]]:
    """All of one figure's probe entries, keyed by probe key."""
    return {spec.key: run_probe(spec) for spec in ATTRIBUTION_PROBES[figure]}
