"""Per-host metrics: counters, gauges, log2 histograms, and the registry.

This generalizes the byte/op :class:`repro.sim.trace.Counter` into a small
metric family every layer can report into.  A :class:`Telemetry` instance
hangs off the :class:`~repro.sim.engine.Simulator` (disabled by default):
instrumented sites pay exactly one branch when it is off, and when it is on
they only mutate plain Python numbers — telemetry never creates events,
consumes simulated time, or touches an RNG stream, so enabling it cannot
change simulation results (see ``tests/test_golden_determinism.py``).

Scopes group metrics per host (``"host0"``, ``"host1"``...); a scope is a
:class:`MetricsRegistry` created lazily on first use.
"""

from __future__ import annotations

from typing import Optional


class MetricCounter:
    """Monotonic counter: occurrence count plus a summed amount.

    ``amount`` is whatever the site measures — bytes for queue counters,
    nanoseconds for cost counters.  ``key`` splits the count by a label
    (opcode, policy name, eager/rndv...).
    """

    __slots__ = ("name", "count", "total", "by_key")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.by_key: dict[str, int] = {}

    def inc(self, amount: float = 0.0, key: Optional[str] = None) -> None:
        self.count += 1
        self.total += amount
        if key is not None:
            self.by_key[key] = self.by_key.get(key, 0) + 1

    def snapshot(self) -> dict[str, object]:
        out: dict[str, object] = {"count": self.count, "total": self.total}
        if self.by_key:
            out["by_key"] = dict(self.by_key)
        return out


class Gauge:
    """Last-value metric with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def snapshot(self) -> dict[str, object]:
        if self.samples == 0:
            return {"value": None, "min": None, "max": None, "samples": 0}
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


class Log2Histogram:
    """log2-bucketed histogram: bucket ``i`` counts values in [2^i, 2^(i+1)).

    Values below 1 land in bucket 0 (there is no sub-unit resolution worth
    paying for on the hot path).  The same binning the observability
    policy's flow records use for message sizes.
    """

    __slots__ = ("name", "buckets", "count", "sum")

    def __init__(self, name: str):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        bucket = max(0, int(value).bit_length() - 1) if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100), interpolated in-bucket.

        Bucket ``i`` spans ``[2^i, 2^(i+1))`` (bucket 0 starts at 0, since
        sub-unit values all land there); the estimate assumes a uniform
        spread within the bucket, so the error is bounded by the bucket
        width — the usual log2-histogram trade.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for bucket, n in sorted(self.buckets.items()):
            if cumulative + n >= target:
                lo = 0.0 if bucket == 0 else float(2 ** bucket)
                hi = float(2 ** (bucket + 1))
                # Fraction of this bucket's mass needed to reach the target.
                frac = (target - cumulative) / n
                return lo + frac * (hi - lo)
            cumulative += n
        # q == 100 rounding tail: top of the last bucket.
        last = max(self.buckets)
        return float(2 ** (last + 1))

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """One scope's (usually one host's) named metrics, created on demand."""

    __slots__ = ("scope", "counters", "gauges", "histograms")

    def __init__(self, scope: str):
        self.scope = scope
        self.counters: dict[str, MetricCounter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Log2Histogram] = {}

    def counter(self, name: str) -> MetricCounter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = MetricCounter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Log2Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Log2Histogram(name)
        return h

    def snapshot(self) -> dict[str, object]:
        return {
            "counters": {n: c.snapshot() for n, c in sorted(self.counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }


class Telemetry:
    """The per-simulator metric store.  Off by default; one branch when off.

    Sites do::

        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope("host0").counter("cpu.syscalls").inc()
    """

    __slots__ = ("enabled", "_scopes")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._scopes: dict[str, MetricsRegistry] = {}

    def scope(self, name: str) -> MetricsRegistry:
        reg = self._scopes.get(name)
        if reg is None:
            reg = self._scopes[name] = MetricsRegistry(name)
        return reg

    def scopes(self) -> list[str]:
        return sorted(self._scopes)

    def snapshot(self) -> dict[str, object]:
        """All scopes' metrics as one JSON-ready dict."""
        return {name: self._scopes[name].snapshot() for name in sorted(self._scopes)}
