"""Exporters: Chrome trace-event JSON (Perfetto), JSONL, metrics snapshots.

Chrome format reference: the Trace Event Format's ``traceEvents`` array.
Spans become complete (``"X"``) events — one per stage — on per-host
process tracks with per-component threads, so a message's life renders as
a causally ordered staircase across ``host0`` and ``host1`` tracks in
Perfetto (https://ui.perfetto.dev).  Non-span trace records become instant
(``"i"``) events on the same tracks.  Timestamps are microseconds (the
format's unit); simulated nanoseconds divide by 1e3.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.sim.trace import Trace, TraceRecord
from repro.telemetry.spans import SPAN_CATEGORY, OpSpan, build_spans

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.engine import Simulator

#: tid assigned to component tracks, in a stable render order.
_COMP_ORDER = ("driver", "app", "nic.tx", "wire", "nic.rx", "cq", "trace")


def _pid(host: object, pids: dict[object, int]) -> int:
    pid = pids.get(host)
    if pid is None:
        pid = pids[host] = len(pids) + 1
    return pid


def _tid(comp: str) -> int:
    try:
        return _COMP_ORDER.index(comp) + 1
    except ValueError:
        return len(_COMP_ORDER) + 1


def chrome_trace(
    trace: Union[Trace, Iterable[TraceRecord]],
    spans: Optional[list[OpSpan]] = None,
    include_instants: bool = True,
) -> dict[str, object]:
    """Build a Perfetto-loadable trace-event document.

    ``spans`` defaults to :func:`build_spans` over ``trace``; pass a
    pre-filtered list to export a subset (e.g. one operation).
    """
    if spans is None:
        spans = build_spans(trace)
    events: list[dict[str, object]] = []
    pids: dict[object, int] = {}

    for span in spans:
        for stage in span.stages():
            events.append({
                "name": stage.name,
                "cat": f"span.{span.op}",
                "ph": "X",
                "ts": stage.start_ns / 1e3,
                "dur": stage.duration_ns / 1e3,
                "pid": _pid(stage.host, pids),
                "tid": _tid(stage.comp),
                "args": {
                    "span": span.span_id,
                    "op": span.op,
                    "dataplane": span.dataplane,
                    "qpn": span.qpn,
                    "wr_id": span.wr_id,
                    "size": span.size,
                },
            })

    if include_instants:
        records = trace if not isinstance(trace, Trace) else iter(trace)
        for rec in records:
            if rec.category == SPAN_CATEGORY:
                continue
            fields = dict(rec.fields)
            host = fields.pop("host", "?")
            events.append({
                "name": rec.event,
                "cat": rec.category,
                "ph": "i",
                "s": "t",
                "ts": rec.time / 1e3,
                "pid": _pid(host, pids),
                "tid": _tid("trace"),
                "args": fields,
            })

    # Metadata: name the process/thread tracks.
    for host, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"host{host}"},
        })
        for comp in _COMP_ORDER:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": _tid(comp), "args": {"name": comp},
            })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


# -- folded stacks (FlameGraph / speedscope) ----------------------------------


def folded_stacks(
    trace: Union[Trace, Iterable[TraceRecord], None] = None,
    blames: Optional[list] = None,
    op: Optional[str] = None,
) -> list[str]:
    """Render attribution as folded stacks with simulated-ns weights.

    One line per unique frame stack, ``frame;frame;... <weight>``, the
    format ``flamegraph.pl`` and speedscope ingest directly.  Frames are
    ``op → dataplane → host → component → stage → queue|service`` so the
    flame width at any level answers "where did the nanoseconds go" at
    that granularity, and the queue/service leaf split shows contention
    vs work.

    Pass either a trace (spans are built and attributed here) or
    pre-computed ``blames`` from
    :func:`repro.telemetry.attribution.attribute_spans`.
    """
    from repro.telemetry.attribution import attribute_spans

    if blames is None:
        if trace is None:
            raise ValueError("folded_stacks needs a trace or blames")
        blames = attribute_spans(build_spans(trace, op=op))
    weights: dict[str, int] = {}
    for blame in blames:
        prefix = f"{blame.op};{blame.dataplane};host{blame.host}"
        for stage in blame.stages:
            frame = f"{prefix};{stage.comp};{stage.name}"
            for leaf, ns in (("queue", stage.queue_ns),
                             ("service", stage.service_ns)):
                ins = int(round(ns))
                if ins > 0:
                    key = f"{frame};{leaf}"
                    weights[key] = weights.get(key, 0) + ins
    return [f"{key} {weight}" for key, weight in sorted(weights.items())]


# -- JSONL --------------------------------------------------------------------


def jsonl_lines(trace: Union[Trace, Iterable[TraceRecord]]) -> Iterable[str]:
    """One JSON object per trace record (streaming-friendly)."""
    for rec in trace:
        yield json.dumps(rec.asdict(), default=str, sort_keys=True)


def records_from_jsonl(lines: Iterable[str]) -> list[TraceRecord]:
    """Inverse of :func:`jsonl_lines` (modulo non-JSON field types)."""
    out = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        time = obj.pop("time")
        category = obj.pop("category")
        event = obj.pop("event")
        out.append(TraceRecord(time, category, event, tuple(sorted(obj.items()))))
    return out


# -- metrics snapshot ---------------------------------------------------------


def _core_stats(host: "Host") -> list[dict[str, object]]:
    return [
        {
            "name": core.name,
            "busy_ns": core.busy_ns,
            "syscalls": core.syscalls,
        }
        for core in host.cpus.cores
    ]


def metrics_snapshot(
    sim: "Simulator",
    hosts: Iterable["Host"] = (),
    flows: Optional[list[dict[str, object]]] = None,
) -> dict[str, object]:
    """JSON-ready metrics dump: live registry scopes + pulled device state.

    The registry half holds what instrumented sites pushed while
    ``sim.telemetry`` was enabled; the pulled half reads each host's
    always-on counters (NIC, cores, IRQs, CQ totals) so the snapshot is
    useful even for runs that never enabled push telemetry.
    """
    out: dict[str, object] = {
        "time_ns": sim.now,
        "telemetry_enabled": sim.telemetry.enabled,
        "trace": {
            "enabled": sim.trace.enabled,
            "records": len(sim.trace),
            "dropped": sim.trace.dropped,
            "max_records": sim.trace.max_records,
        },
        "scopes": sim.telemetry.snapshot(),
    }
    host_state: dict[str, object] = {}
    for host in hosts:
        host_state[host.name] = {
            "nic": host.nic.counters.snapshot(),
            "cores": _core_stats(host),
            "irqs_delivered": host.kernel.irq.delivered,
        }
    if host_state:
        out["hosts"] = host_state
    if flows is not None:
        out["flows"] = flows
    return out
