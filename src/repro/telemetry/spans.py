"""Causal op spans reconstructed from trace records.

Instrumented layers emit three record shapes into the simulator's
:class:`~repro.sim.trace.Trace` under category ``"span"``:

- ``op_begin`` — a dataplane entry point (``post_send``/``post_recv``)
  allocated a span id (``Trace.new_span``) and attached it to the WR;
- ``mark``     — a stage boundary somewhere downstream (NIC doorbell, WQE
  fetch, wire serialization, delivery, DMA, CQE write...).  The span id
  rides the :class:`~repro.verbs.wr.SendWR` → ``WireMessage`` → ``CQE``
  chain, so marks on *both* hosts correlate to the one operation;
- ``op_end``   — the application observed a completion for the span (its
  ``poll_cq`` returned the span's CQE).

:func:`build_spans` folds those records into :class:`OpSpan` objects whose
stages partition ``[begin, end]`` exactly: stage *i* runs from mark *i* to
mark *i+1*, so per-stage durations always sum to the span's total latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.sim.trace import Trace, TraceRecord

#: Trace category all span records use.
SPAN_CATEGORY = "span"


@dataclass(frozen=True)
class SpanMark:
    """One causal milestone inside a span."""

    time: float
    stage: str
    host: object  # host id, or "?" when the layer has none
    comp: str  # component track: "driver", "nic.tx", "wire", "nic.rx", "cq", "app"


@dataclass
class SpanStage:
    """The interval between two consecutive marks, named by its start."""

    name: str
    start_ns: float
    end_ns: float
    host: object
    comp: str

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class OpSpan:
    """One dataplane operation's full lifecycle."""

    span_id: int
    op: str = "?"
    host: object = "?"
    dataplane: str = "?"
    qpn: int = -1
    wr_id: int = -1
    size: int = 0
    begin_ns: float = 0.0
    marks: list[SpanMark] = field(default_factory=list)
    #: True once an op_end arrived (the app saw the completion).
    complete: bool = False

    @property
    def end_ns(self) -> float:
        return self.marks[-1].time if self.marks else self.begin_ns

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.begin_ns

    def stages(self) -> list[SpanStage]:
        """Consecutive-mark intervals; durations telescope to duration_ns."""
        out: list[SpanStage] = []
        prev = SpanMark(self.begin_ns, "post", self.host, "driver")
        for mark in self.marks:
            name = prev.stage
            n = 2
            existing = {s.name for s in out}
            while name in existing:  # repeats (e.g. two rx_arrive hops)
                name = f"{prev.stage}#{n}"
                n += 1
            out.append(SpanStage(name, prev.time, mark.time, prev.host, prev.comp))
            prev = mark
        return out

    def stage_durations(self) -> dict[str, float]:
        return {s.name: s.duration_ns for s in self.stages()}


def build_spans(
    source: Union[Trace, Iterable[TraceRecord]],
    op: Optional[str] = None,
) -> list[OpSpan]:
    """Fold span trace records into :class:`OpSpan` objects.

    ``source`` is a :class:`Trace` or any iterable of records (e.g. a live
    subscriber's buffer).  Spans come back sorted by begin time; marks are
    kept in emission (= causal, the trace is append-only) order.  Spans
    whose ``op_begin`` was evicted from a ring-buffered trace are skipped.
    """
    records = source.select(category=SPAN_CATEGORY) if isinstance(source, Trace) \
        else [r for r in source if r.category == SPAN_CATEGORY]
    spans: dict[int, OpSpan] = {}
    for rec in records:
        span_id = rec.get("span")
        if span_id is None:
            continue
        if rec.event == "op_begin":
            spans[span_id] = OpSpan(
                span_id=span_id,
                op=str(rec.get("op", "?")),
                host=rec.get("host", "?"),
                dataplane=str(rec.get("dataplane", "?")),
                qpn=int(rec.get("qpn", -1)),
                wr_id=int(rec.get("wr_id", -1)),
                size=int(rec.get("size", 0)),
                begin_ns=rec.time,
            )
            continue
        span = spans.get(span_id)
        if span is None:
            continue  # begin fell off the ring buffer; partial span dropped
        if rec.event == "mark":
            span.marks.append(SpanMark(
                rec.time, str(rec.get("stage", "?")),
                rec.get("host", "?"), str(rec.get("comp", "?")),
            ))
        elif rec.event == "op_end":
            span.marks.append(SpanMark(
                rec.time, "completion", rec.get("host", "?"), "app",
            ))
            span.complete = True
    out = sorted(spans.values(), key=lambda s: (s.begin_ns, s.span_id))
    if op is not None:
        out = [s for s in out if s.op == op]
    return out
