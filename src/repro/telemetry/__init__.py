"""End-to-end telemetry for the converged dataplane simulation.

Three pieces, all disabled by default and free when off:

- :mod:`~repro.telemetry.spans` — causal op spans: one id allocated at
  ``post_send``/``post_recv`` entry, threaded driver → doorbell → WQE
  pipeline → DMA → wire → rx → CQE → completion, so one message's life is
  reconstructable with per-stage durations.
- :mod:`~repro.telemetry.metrics` — per-host registry of counters, gauges
  and log2 histograms (NIC queue occupancy, CQ depth, syscalls, IRQs,
  per-policy cost, MPI protocol mix).
- :mod:`~repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  JSONL record dumps, metrics snapshot JSON.

Enable with::

    sim = Simulator(seed=7, trace=Trace(enabled=True))
    sim.telemetry.enabled = True

or set ``REPRO_TELEMETRY=1`` for the perftest runner / figure benchmarks
(exports land under ``REPRO_TELEMETRY_DIR``, default ``results/telemetry``).
"""

from repro.telemetry.attribution import (
    ATTRIBUTION_PROBES,
    AttributionTable,
    OpBlame,
    ProbeSpec,
    StageBlame,
    aggregate,
    attribute_spans,
    run_figure_probes,
    run_probe,
)
from repro.telemetry.export import (
    chrome_trace,
    folded_stacks,
    jsonl_lines,
    metrics_snapshot,
    records_from_jsonl,
)
from repro.telemetry.metrics import (
    Gauge,
    Log2Histogram,
    MetricCounter,
    MetricsRegistry,
    Telemetry,
)
from repro.telemetry.spans import SPAN_CATEGORY, OpSpan, SpanMark, SpanStage, build_spans

__all__ = [
    "SPAN_CATEGORY",
    "ATTRIBUTION_PROBES",
    "AttributionTable",
    "OpBlame",
    "OpSpan",
    "ProbeSpec",
    "SpanMark",
    "SpanStage",
    "StageBlame",
    "aggregate",
    "attribute_spans",
    "build_spans",
    "chrome_trace",
    "folded_stacks",
    "jsonl_lines",
    "metrics_snapshot",
    "records_from_jsonl",
    "run_figure_probes",
    "run_probe",
    "Gauge",
    "Log2Histogram",
    "MetricCounter",
    "MetricsRegistry",
    "Telemetry",
]
