"""Protection domains.

A PD groups MRs and QPs; a QP may only use MRs from its own PD.  In the
simulation this is enforced at post time (local keys) and at the responder
NIC (remote keys), mirroring real hardware checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import VerbsError

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.device import Context
    from repro.verbs.mr import MemoryRegionV
    from repro.verbs.qp import QueuePair


class ProtectionDomain:
    """``ibv_pd`` analogue."""

    _next_handle = 1

    def __init__(self, context: "Context") -> None:
        self.context = context
        self.handle = ProtectionDomain._next_handle
        ProtectionDomain._next_handle += 1
        self.mrs: list["MemoryRegionV"] = []
        self.qps: list["QueuePair"] = []

    def owns_mr(self, mr: "MemoryRegionV") -> bool:
        return mr.pd is self

    def check_mr(self, mr: "MemoryRegionV") -> None:
        if not self.owns_mr(mr):
            raise VerbsError(
                f"MR lkey={mr.lkey:#x} belongs to PD {mr.pd.handle}, not {self.handle}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PD {self.handle} mrs={len(self.mrs)} qps={len(self.qps)}>"
