"""Queue pairs: RC and UD transports with the IB state machine.

A QP owns a send queue and a receive queue (bounded), references a send and
a receive CQ, and carries transport state: packet sequence numbers, the
RC outstanding-request map (for ack-driven completions), and a responder
reorder buffer that preserves per-QP ordering even when the NIC engine's
internal pipelining would deliver out of order.

State machine (subset of ``ibv_qp_state``): RESET -> INIT -> RTR -> RTS.
Posting to a QP in the wrong state raises, as real verbs would return EINVAL.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import QPStateError, VerbsError
from repro.verbs.wr import Psn, RecvWR, SendWR, WireMessage

if False:  # pragma: no cover - typing only
    from repro.verbs.srq import SharedReceiveQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.pd import ProtectionDomain
    from repro.verify.monitors import ProtocolMonitor


class QPState(enum.Enum):
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  # ready to receive
    RTS = "RTS"  # ready to send
    ERROR = "ERROR"


class Transport(enum.Enum):
    RC = "RC"
    UD = "UD"


_VALID_TRANSITIONS = {
    QPState.RESET: {QPState.INIT, QPState.ERROR},
    QPState.INIT: {QPState.RTR, QPState.ERROR, QPState.RESET},
    QPState.RTR: {QPState.RTS, QPState.ERROR, QPState.RESET},
    QPState.RTS: {QPState.ERROR, QPState.RESET},
    QPState.ERROR: {QPState.RESET},
}


class QueuePair:
    """``ibv_qp`` analogue."""

    def __init__(
        self,
        pd: "ProtectionDomain",
        transport: Transport,
        send_cq: "CompletionQueue",
        recv_cq: "CompletionQueue",
        qpn: int,
        sq_depth: int,
        rq_depth: int,
        max_inline: int,
        srq: "SharedReceiveQueue | None" = None,
    ) -> None:
        self.pd = pd
        self.transport = transport
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qpn = qpn
        self.sq_depth = sq_depth
        self.rq_depth = rq_depth
        self.max_inline = max_inline
        #: Optional shared receive queue; when set, the NIC consumes recv
        #: WQEs from it and post_recv on this QP is invalid.
        self.srq = srq
        #: Backing field for :attr:`state`; written only by :meth:`modify`
        #: (PROTO001 lints direct writes, PROTO103 monitors them at runtime).
        self._state = QPState.RESET
        #: Protocol monitor hook (set by ``Nic.register_qp`` when a
        #: :class:`~repro.verify.monitors.ProtocolMonitor` is attached to
        #: the simulator; None costs one branch in :meth:`modify`).
        self._monitor: "ProtocolMonitor | None" = None

        #: RC: connected peer as (host_id, qpn); set at RTR.
        self.remote: Optional[tuple[int, int]] = None

        # Queues. The NIC consumes from these.
        self.rq: deque[RecvWR] = deque()
        #: Send WQEs handed to the NIC but not yet completed (occupancy cap).
        self.sq_outstanding = 0

        # RC transport state.
        self.sq_psn = 0  # next PSN to assign
        self.expected_psn = 0  # next PSN the responder will accept
        self.outstanding: dict[int, SendWR] = {}  # psn -> wqe awaiting ack
        self.reorder: dict[int, WireMessage] = {}  # out-of-order responder hold
        self.rnr_retries = 7
        #: Max transport retries (ACK-timeout retransmissions) per PSN
        #: before the WR completes with RETRY_EXC_ERR (``retry_cnt`` in
        #: ``ibv_qp_attr`` terms).
        self.retry_cnt = 7
        #: Initiator-side retry bookkeeping: psn -> retries so far.  RNR
        #: NAK retries and ACK-timeout retransmissions share this count.
        self.retx_retries: dict[int, int] = {}
        #: psn -> epoch of the currently armed ACK timer.  A fired timer
        #: whose epoch no longer matches is stale (the PSN was acked,
        #: retransmitted or flushed meanwhile) and must do nothing.
        self.retx_epoch: dict[int, int] = {}
        #: Monotone epoch allocator; never reset so PSN reuse after a QP
        #: RESET cannot revive a stale timer.
        self._retx_seq = 0
        #: PSNs with a retransmission queued in the NIC TX store but not
        #: yet fetched — at most one queued retry per PSN (the NIC dedups
        #: against this; membership tests only, never iterated).
        self.retx_pending: set[int] = set()
        #: Responder-side replay cache for atomics: psn -> original value.
        #: A retransmitted atomic whose execution already happened replays
        #: the cached response instead of re-executing (exactly-once).
        self.atomic_cache: dict[int, int] = {}

        # Statistics.
        self.sends_posted = 0
        self.recvs_posted = 0
        self.bytes_sent = 0
        self.rnr_naks = 0

    # -- state machine -------------------------------------------------------------

    @property
    def state(self) -> QPState:
        """Current QP state.  Read-only: all writes go through :meth:`modify`.

        Making this a property (rather than trusting callers) is what
        turns the transition table into an *enforced* contract — code that
        assigned ``qp.state`` directly used to silently skip the legality
        check and the ERROR/RESET flush semantics.
        """
        return self._state

    def modify(self, new_state: QPState, remote: Optional[tuple[int, int]] = None) -> None:
        """Transition the QP (``ibv_modify_qp`` analogue).

        Raises :class:`~repro.errors.QPStateError` on any transition not
        in the ``_VALID_TRANSITIONS`` table — for every caller; there is
        no unchecked path (``state`` is a read-only property).

        Entering ERROR flushes all outstanding work requests: every posted
        recv WQE and every unacknowledged send completes with
        ``WR_FLUSH_ERR``, exactly as the verbs spec requires (consumers
        rely on this to reclaim buffers).  The state is committed *before*
        the flush runs so any observer woken by a flush CQE already sees
        the QP in ERROR (and the PROTO104 monitor can anchor its
        "flush strictly after ERROR" check on the transition).
        """
        if new_state not in _VALID_TRANSITIONS[self._state]:
            raise QPStateError(f"illegal transition {self._state} -> {new_state}")
        if new_state is QPState.RTR and self.transport is Transport.RC:
            if remote is None:
                raise QPStateError("RC RTR transition requires remote (host, qpn)")
            self.remote = remote
        mon = self._monitor
        if mon is not None:
            mon.on_qp_transition(self, self._state, new_state)
        self._state = new_state
        if new_state is QPState.ERROR:
            self._flush_with_errors()
        if new_state is QPState.RESET:
            self._flush()

    def _flush_with_errors(self) -> None:
        """Complete everything in flight with WR_FLUSH_ERR.

        Flush order is the verbs contract order: posted recvs first, then
        sends in SQ (post) order.  The send sort key is the *circular*
        distance from the next-unassigned ``sq_psn`` — ``Psn.delta`` maps
        the oldest in-flight PSN to the smallest key even when the
        outstanding window straddles the 24-bit wrap point, where a raw
        ascending-PSN sort would flush the post-wrap (newest) WRs first.
        """
        from repro.verbs.wr import CQE, Opcode, WCStatus

        for rwr in self.rq:
            self.recv_cq.push(CQE(
                wr_id=rwr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                opcode=Opcode.SEND, byte_len=0, qp_num=self.qpn))
        self.rq.clear()
        base = self.sq_psn
        for _psn, swr in sorted(
            self.outstanding.items(), key=lambda kv: Psn.delta(kv[0], base)
        ):
            self.send_cq.push(CQE(
                wr_id=swr.wr_id, status=WCStatus.WR_FLUSH_ERR,
                opcode=swr.opcode, byte_len=0, qp_num=self.qpn))
        self.outstanding.clear()
        self.reorder.clear()
        self.retx_retries.clear()
        self.retx_epoch.clear()
        self.retx_pending.clear()
        self.sq_outstanding = 0

    def _flush(self) -> None:
        self.rq.clear()
        self.outstanding.clear()
        self.reorder.clear()
        self.retx_retries.clear()
        self.retx_epoch.clear()
        self.retx_pending.clear()
        self.atomic_cache.clear()
        self.sq_outstanding = 0
        self.sq_psn = 0
        self.expected_psn = 0

    # -- posting validation (data structures only; costs live in dataplane) -----

    def check_post_send(self, wr: SendWR) -> None:
        if self.state is not QPState.RTS:
            raise QPStateError(f"post_send on QP {self.qpn} in state {self.state}")
        wr.validate()
        if self.sq_outstanding >= self.sq_depth:
            raise VerbsError(f"QP {self.qpn} send queue full (depth {self.sq_depth})")
        if wr.inline and wr.length > self.max_inline:
            raise VerbsError(
                f"inline length {wr.length} exceeds max_inline {self.max_inline}"
            )
        if self.transport is Transport.UD:
            if not wr.opcode.is_send:
                raise VerbsError(f"UD supports only SEND, got {wr.opcode}")
            if wr.ah is None:
                raise VerbsError("UD send requires an address handle (ah)")
        else:
            if self.remote is None:
                raise QPStateError(f"RC QP {self.qpn} is not connected")

    def check_post_recv(self, wr: RecvWR) -> None:
        if self.srq is not None:
            raise VerbsError(
                f"QP {self.qpn} uses SRQ {self.srq.srqn}; post to the SRQ"
            )
        if self.state in (QPState.RESET, QPState.ERROR):
            raise QPStateError(f"post_recv on QP {self.qpn} in state {self.state}")
        if len(self.rq) >= self.rq_depth:
            raise VerbsError(f"QP {self.qpn} recv queue full (depth {self.rq_depth})")

    def destination_for(self, wr: SendWR) -> tuple[int, int]:
        """Resolve (host, qpn) the WR targets."""
        if self.transport is Transport.UD:
            assert wr.ah is not None
            return wr.ah
        assert self.remote is not None
        return self.remote

    def assign_psn(self) -> int:
        """Hand out the next send PSN (24-bit wraparound per IBTA)."""
        psn = self.sq_psn
        self.sq_psn = Psn.next(psn)
        return psn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QP {self.qpn} {self.transport.value} {self.state.value}>"
