"""Work requests, completions, opcodes and access flags.

These are the wire- and queue-level value types shared by the verbs layer
and the NIC engine.  They deliberately mirror ``ibv_send_wr`` /
``ibv_recv_wr`` / ``ibv_wc`` from the real API.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Psn:
    """24-bit packet-sequence-number arithmetic (IBTA §9.7.2).

    Real PSNs live in a 24-bit circular space: assignment wraps at
    ``2**24`` and ordering is serial-number arithmetic with a half-window
    of ``2**23`` — ``b`` is "after" ``a`` when the forward distance
    ``(b - a) & MASK`` is less than half the space.  Every piece of PSN
    math in the tree must route through these helpers (the PROTO002 lint
    rule enforces it); raw ``+``/``-`` silently diverges from a wrapped
    responder the moment a long-lived QP crosses the wrap point.

    The helpers are plain ``@staticmethod``s on a namespace class (not
    instances) so the per-message paths pay one attribute lookup and one
    ``&``, nothing more.
    """

    BITS = 24
    #: The PSN space modulus mask, ``2**24 - 1``.
    MASK = (1 << BITS) - 1
    #: Serial-arithmetic half window: forward distances below this mean
    #: "ahead", at-or-above mean "behind" (a duplicate / very old PSN).
    HALF = 1 << (BITS - 1)

    @staticmethod
    def wrap(value: int) -> int:
        """Project any integer into the 24-bit PSN space."""
        return value & Psn.MASK

    @staticmethod
    def next(psn: int) -> int:
        """The PSN after ``psn`` (wraps ``2**24 - 1 -> 0``)."""
        return (psn + 1) & Psn.MASK

    @staticmethod
    def add(psn: int, n: int) -> int:
        """``psn`` advanced by ``n`` (``n`` may be negative), wrapped."""
        return (psn + n) & Psn.MASK

    @staticmethod
    def delta(psn: int, base: int) -> int:
        """Forward distance from ``base`` to ``psn`` in [0, 2**24).

        Also the circular sort key for "oldest outstanding first": with
        ``base`` = the next-unassigned ``sq_psn``, older in-flight PSNs
        map to smaller deltas even across the wrap point.
        """
        return (psn - base) & Psn.MASK

    @staticmethod
    def cmp(a: int, b: int) -> int:
        """Serial-number compare: -1 if ``a`` is behind ``b``, 0, or +1.

        "Behind" means the forward distance from ``b`` to ``a`` is at
        least half the space — i.e. ``a`` is a duplicate/older PSN from
        the responder's point of view when ``b`` is ``expected_psn``.
        """
        if a == b:
            return 0
        return 1 if (a - b) & Psn.MASK < Psn.HALF else -1


class Opcode(enum.Enum):
    """Send-side operation codes (subset of ``ibv_wr_opcode``).

    The classification flags (``is_send``, ``reads_local_memory``, …) are
    plain member attributes precomputed below — they sit on the NIC's
    per-message path, where property descriptors and tuple membership
    tests showed up in profiles.
    """

    SEND = "send"
    SEND_WITH_IMM = "send_imm"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_WITH_IMM = "rdma_write_imm"
    RDMA_READ = "rdma_read"
    ATOMIC_FETCH_ADD = "atomic_fadd"
    ATOMIC_CMP_SWAP = "atomic_cswap"

    is_write: bool
    is_send: bool
    has_imm: bool
    is_atomic: bool
    #: Does this op consume a receive WQE at the responder?
    consumes_recv_wqe: bool
    #: Does the initiating NIC DMA payload out of local memory?
    reads_local_memory: bool


for _op in Opcode:
    _op.is_write = _op in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM)
    _op.is_send = _op in (Opcode.SEND, Opcode.SEND_WITH_IMM)
    _op.has_imm = _op in (Opcode.SEND_WITH_IMM, Opcode.RDMA_WRITE_WITH_IMM)
    _op.is_atomic = _op in (Opcode.ATOMIC_FETCH_ADD, Opcode.ATOMIC_CMP_SWAP)
    _op.consumes_recv_wqe = _op.is_send or _op is Opcode.RDMA_WRITE_WITH_IMM
    _op.reads_local_memory = _op.is_send or _op.is_write
del _op


class WCStatus(enum.Enum):
    """Completion status (subset of ``ibv_wc_status``)."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    REM_INV_REQ_ERR = "remote_invalid_request"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    RETRY_EXC_ERR = "retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class AccessFlags(enum.IntFlag):
    """MR access permissions (subset of ``ibv_access_flags``)."""

    LOCAL_READ = 0x0  # implicit, always allowed
    LOCAL_WRITE = 0x1
    REMOTE_WRITE = 0x2
    REMOTE_READ = 0x4

    @classmethod
    def all_remote(cls) -> "AccessFlags":
        return cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ


@dataclass(slots=True)
class SendWR:
    """A send work request (``ibv_send_wr`` analogue, single SGE).

    ``addr``/``length``/``lkey`` describe the local payload.  One-sided
    operations add ``remote_addr``/``rkey``.  UD sends add ``ah`` (the
    address handle: destination host id and QPN).  ``data`` optionally
    carries real bytes for correctness tests.
    """

    wr_id: int
    opcode: Opcode
    addr: int = 0
    length: int = 0
    lkey: int = 0
    signaled: bool = True
    inline: bool = False
    imm: Optional[int] = None
    remote_addr: int = 0
    rkey: int = 0
    ah: Optional[tuple[int, int]] = None  # (dst_host_id, dst_qpn) for UD
    data: Optional[bytes] = None
    #: Structured sideband for upper layers (e.g. MPI headers).  Travels
    #: with the message and surfaces in the matching CQE; in a physical
    #: system this would be serialized into the payload's first bytes.
    meta: object = None
    #: Atomic operands (8-byte ops): FETCH_ADD uses ``compare_add`` as the
    #: addend; CMP_SWAP compares against ``compare_add`` and stores ``swap``.
    compare_add: int = 0
    swap: int = 0
    #: Telemetry op-span id (None unless tracing is on; see repro.telemetry).
    span: Optional[int] = None

    def validate(self) -> None:
        from repro.errors import VerbsError

        if self.length < 0:
            raise VerbsError(f"negative WR length: {self.length}")
        if self.opcode.has_imm and self.imm is None:
            raise VerbsError(f"{self.opcode} requires an immediate value")
        if self.opcode is Opcode.RDMA_READ and self.inline:
            raise VerbsError("RDMA_READ cannot be inline")
        if self.opcode.is_atomic:
            if self.length != 8:
                raise VerbsError("atomic operations are exactly 8 bytes")
            if self.inline:
                raise VerbsError("atomics cannot be inline")
        if self.data is not None and len(self.data) != self.length:
            raise VerbsError(
                f"payload length {len(self.data)} != WR length {self.length}"
            )


@dataclass(slots=True)
class RecvWR:
    """A receive work request (``ibv_recv_wr`` analogue, single SGE)."""

    wr_id: int
    addr: int = 0
    length: int = 0
    lkey: int = 0


@dataclass(slots=True)
class CQE:
    """A work completion (``ibv_wc`` analogue)."""

    wr_id: int
    status: WCStatus
    opcode: Opcode
    byte_len: int
    qp_num: int
    src_qp: int = 0
    imm: Optional[int] = None
    #: Simulation timestamp at which the NIC wrote this CQE to host memory.
    timestamp: float = 0.0
    #: Delivered payload for correctness tests (recv completions only).
    data: Optional[bytes] = None
    #: Sideband from the sender's WR (recv completions only).
    meta: object = None
    #: Telemetry op-span id of the originating operation (None when off).
    span: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


@dataclass(slots=True)
class WireMessage:
    """One message on the fabric (a transport-level unit, not one packet)."""

    kind: str  # "send" | "write" | "read_req" | "read_resp" | "ack" | "nak_rnr" | "cnp"
    src_host: int
    dst_host: int
    src_qpn: int
    dst_qpn: int
    transport: str  # "RC" | "UD"
    psn: int
    length: int = 0
    imm: Optional[int] = None
    remote_addr: int = 0
    rkey: int = 0
    data: Optional[bytes] = None
    #: For read_resp / ack: the initiator-side WQE being completed.
    token: object = None
    #: Upper-layer sideband copied from the send WR.
    meta: object = None
    #: Atomic request operands: (opcode, compare_add, swap).
    atomic: Optional[tuple] = None
    header_bytes: int = 0
    retries: int = 0
    #: Telemetry op-span id carried across the wire (None when off).
    span: Optional[int] = None
    #: ECN congestion-experienced mark, set by the switch output queue
    #: when congestion control is enabled (see ``hw/profiles.CcProfile``).
    ecn: bool = False

    @property
    def wire_bytes(self) -> int:
        return self.length + self.header_bytes
