"""Connection manager: rdma_cm-style connection establishment.

Real RDMA applications rarely exchange QPNs by hand; they use librdmacm's
listen/connect with a REQ → REP → RTU handshake carried over the fabric.
This module models that: a :class:`CmListener` binds a service id on a
host, :func:`cm_connect` performs the three-way handshake (each leg pays
wire time + a control-plane transition at the receiver) and returns a
fully connected endpoint pair, like ``rdma_connect``/``rdma_accept``.

The endpoint setup helpers in :mod:`repro.core.endpoint` remain available
for tests that want instant wiring; the CM is the realistic path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import KernelError
from repro.sim.store import Store
from repro.verbs.qp import QPState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.core.endpoint import Endpoint
    from repro.sim.events import Event

#: Kernel CM processing per handshake leg (event channel + id bookkeeping).
CM_LEG_KERNEL_NS = 1_500.0

#: Cluster-wide service registry: (host_id, service_id) -> CmListener.
_registry: dict[tuple[int, int], "CmListener"] = {}


def reset_registry() -> None:
    """Clear the service registry (test isolation)."""
    _registry.clear()


@dataclass
class _ConnReq:
    """A REQ in flight: who is asking, and how to tell them the answer."""

    client_addr: tuple[int, int]  # (host_id, qpn)
    reply_event: "Event"


class CmListener:
    """``rdma_listen`` analogue bound to (host, service_id)."""

    def __init__(self, host: "Host", service_id: int) -> None:
        key = (host.host_id, service_id)
        if key in _registry:
            raise KernelError(
                f"service {service_id} already listening on host {host.host_id}"
            )
        self.host = host
        self.service_id = service_id
        self._reqs: Store = Store(host.sim, name=f"cm:{key}")
        _registry[key] = self

    def accept(
        self, endpoint: "Endpoint"
    ) -> Generator["Event", object, tuple[int, int]]:
        """Wait for a REQ, connect ``endpoint`` to the caller, send REP.

        Returns the client's (host_id, qpn).  ``rdma_accept`` analogue.
        """
        req = yield self._reqs.get()
        assert isinstance(req, _ConnReq)
        # Server-side transition to RTR/RTS against the client's QP.
        yield from endpoint.core.run(CM_LEG_KERNEL_NS)
        yield from endpoint.ctx.connect_qp(endpoint.qp, req.client_addr)
        # REP travels back one propagation delay; client finishes on it.
        sim = self.host.sim
        rep = sim.timeout(self.host.fabric.propagation_ns)
        rep.callbacks.append(
            lambda _ev: req.reply_event.succeed(endpoint.addr)
        )
        return req.client_addr

    def close(self) -> None:
        _registry.pop((self.host.host_id, self.service_id), None)


def cm_connect(
    endpoint: "Endpoint", dst_host_id: int, service_id: int
) -> Generator["Event", object, tuple[int, int]]:
    """``rdma_connect`` analogue: REQ -> (server accept) -> REP -> RTU.

    Blocks until the connection is established; returns the server's
    (host_id, qpn).
    """
    listener = _registry.get((dst_host_id, service_id))
    if listener is None:
        raise KernelError(
            f"no listener at host {dst_host_id} service {service_id}"
        )
    sim = endpoint.sim
    # REQ: client-side CM work + one propagation to the server.
    yield from endpoint.core.syscall(CM_LEG_KERNEL_NS)
    reply = sim.event(name=f"cm.rep:{service_id}")
    req = _ConnReq(client_addr=endpoint.addr, reply_event=reply)
    deliver = sim.timeout(endpoint.host.fabric.propagation_ns)
    deliver.callbacks.append(lambda _ev: listener._reqs.put(req))
    # Wait for the REP carrying the server's QPN.
    server_addr = yield reply
    # Client transitions its QP and sends the RTU (fire-and-forget).
    yield from endpoint.core.run(CM_LEG_KERNEL_NS)
    if endpoint.qp.state is not QPState.RTS:
        yield from endpoint.ctx.connect_qp(endpoint.qp, server_addr)
    return server_addr  # type: ignore[return-value]
