"""ibverbs-style RDMA stack.

Mirrors the structure of the real ibverbs API (paper §4): control-plane
objects (device context, protection domains, memory regions, queue pairs,
completion queues) are created through the kernel (ioctl-modelled costs);
data-plane operations (``post_send``/``post_recv``/``poll_cq``) go through a
:mod:`repro.core.dataplane` which is where bypass and CoRD differ.

Public surface:

- :class:`~repro.verbs.device.Device` / :class:`~repro.verbs.device.Context`
- :class:`~repro.verbs.pd.ProtectionDomain`
- :class:`~repro.verbs.mr.MemoryRegionV` (+ access flags)
- :class:`~repro.verbs.cq.CompletionQueue`
- :class:`~repro.verbs.qp.QueuePair` (RC and UD)
- :mod:`~repro.verbs.wr` — work requests, completions, opcodes
"""

from repro.verbs.wr import (
    CQE,
    AccessFlags,
    Opcode,
    RecvWR,
    SendWR,
    WCStatus,
)
from repro.verbs.mr import MemoryRegionV
from repro.verbs.cq import CompletionQueue
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QueuePair, QPState, Transport
from repro.verbs.device import Context, Device

__all__ = [
    "Opcode",
    "WCStatus",
    "AccessFlags",
    "SendWR",
    "RecvWR",
    "CQE",
    "MemoryRegionV",
    "CompletionQueue",
    "ProtectionDomain",
    "QueuePair",
    "QPState",
    "Transport",
    "Device",
    "Context",
]
