"""Shared receive queues.

An SRQ lets many QPs draw receive WQEs from one pool instead of per-QP
receive queues — the feature that makes verbs-based MPI scale to thousands
of peers without preposting rq_depth x n_peers buffers.  The NIC consumes
from the SRQ whenever an incoming message targets a QP created with one.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import VerbsError
from repro.verbs.wr import RecvWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.verbs.pd import ProtectionDomain

_srq_ids = itertools.count(1)


class SharedReceiveQueue:
    """``ibv_srq`` analogue."""

    def __init__(self, pd: "ProtectionDomain", depth: int = 4096,
                 limit: int = 0) -> None:
        if depth <= 0:
            raise VerbsError(f"SRQ depth must be positive: {depth}")
        self.pd = pd
        self.srqn = next(_srq_ids)
        self.depth = depth
        #: Low-watermark: when occupancy drops below it, ``limit_event``
        #: fires once (``ibv_modify_srq`` IBV_SRQ_LIMIT analogue).
        self.limit = limit
        self.rq: deque[RecvWR] = deque()
        self.recvs_posted = 0
        self.recvs_consumed = 0
        self._limit_armed = limit > 0
        self._limit_waiters: list = []

    def check_post(self, wr: RecvWR) -> None:
        if len(self.rq) >= self.depth:
            raise VerbsError(f"SRQ {self.srqn} full (depth {self.depth})")

    def push(self, wr: RecvWR) -> None:
        self.rq.append(wr)
        self.recvs_posted += 1
        if self.limit and len(self.rq) >= self.limit:
            self._limit_armed = True

    def pop(self) -> RecvWR:
        wr = self.rq.popleft()
        self.recvs_consumed += 1
        if self._limit_armed and self.limit and len(self.rq) < self.limit:
            self._limit_armed = False
            waiters, self._limit_waiters = self._limit_waiters, []
            for ev in waiters:
                ev.succeed(len(self.rq))
        return wr

    def limit_event(self, sim: "Simulator") -> "Event":
        """Event firing when occupancy crosses below the limit watermark."""
        ev = sim.event(name=f"srq{self.srqn}.limit")
        if self.limit and len(self.rq) < self.limit and not self._limit_armed:
            ev.succeed(len(self.rq))
        else:
            self._limit_waiters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.rq)
