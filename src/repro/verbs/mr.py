"""Memory regions and the per-host MR table.

Registering an MR is a control-plane operation: pages are pinned (CPU cost
in the kernel), and the region gets an ``lkey``/``rkey`` pair.  The NIC
validates every DMA against the table — an invalid address yields an error
completion but never touches memory outside registered regions (paper §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import MemoryAccessError, VerbsError
from repro.hw.memory import Buffer
from repro.verbs.wr import AccessFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.pd import ProtectionDomain


@dataclass
class MemoryRegionV:
    """A registered memory region (``ibv_mr`` analogue)."""

    pd: "ProtectionDomain"
    buffer: Buffer
    addr: int
    length: int
    lkey: int
    rkey: int
    access: AccessFlags
    valid: bool = True

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.length

    def deregister(self) -> None:
        self.valid = False


class MrTable:
    """Per-host key -> MR lookup used by the NIC for DMA validation."""

    def __init__(self) -> None:
        self._by_lkey: dict[int, MemoryRegionV] = {}
        self._by_rkey: dict[int, MemoryRegionV] = {}
        self._next_key = 0x1000

    def install(self, mr: MemoryRegionV) -> None:
        self._by_lkey[mr.lkey] = mr
        self._by_rkey[mr.rkey] = mr

    def remove(self, mr: MemoryRegionV) -> None:
        self._by_lkey.pop(mr.lkey, None)
        self._by_rkey.pop(mr.rkey, None)
        mr.deregister()

    def next_keys(self) -> tuple[int, int]:
        lkey = self._next_key
        rkey = self._next_key + 1
        self._next_key += 2
        return lkey, rkey

    def check_local(self, lkey: int, addr: int, length: int, write: bool) -> MemoryRegionV:
        """Validate a local (lkey) access; raise on violation."""
        mr = self._by_lkey.get(lkey)
        if mr is None or not mr.valid:
            raise MemoryAccessError(f"invalid lkey {lkey:#x}")
        if not mr.contains(addr, length):
            raise MemoryAccessError(
                f"local access [{addr:#x},+{length}) outside MR "
                f"[{mr.addr:#x},+{mr.length})"
            )
        if write and not mr.access & AccessFlags.LOCAL_WRITE:
            raise MemoryAccessError(f"MR lkey={lkey:#x} lacks LOCAL_WRITE")
        return mr

    def check_remote(
        self, rkey: int, addr: int, length: int, write: bool
    ) -> Optional[MemoryRegionV]:
        """Validate a remote (rkey) access; return None on violation.

        Remote violations must not raise inside the NIC engine — the IB
        spec turns them into NAKs / error completions at the initiator.
        """
        mr = self._by_rkey.get(rkey)
        if mr is None or not mr.valid:
            return None
        if not mr.contains(addr, length):
            return None
        needed = AccessFlags.REMOTE_WRITE if write else AccessFlags.REMOTE_READ
        if not mr.access & needed:
            return None
        return mr


def validate_registration(buffer: Buffer, addr: int, length: int) -> None:
    """Check that the MR range lies within the backing buffer."""
    if length <= 0:
        raise VerbsError(f"MR length must be positive: {length}")
    buffer.check_range(addr, length)
