"""Completion queues.

A CQ is a bounded ring in host memory.  The NIC pushes CQEs (timed DMA
writes happen in the NIC engine; here is just the data structure), and the
application polls via its dataplane (which charges bypass vs CoRD costs).
``req_notify`` arms the CQ so the next CQE raises a completion event
(interrupt path) — the paper's "no polling" configuration.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import CQError
from repro.verbs.wr import CQE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


class CompletionQueue:
    """``ibv_cq`` analogue."""

    def __init__(self, sim: "Simulator", depth: int = 4096, name: str = "cq") -> None:
        if depth <= 0:
            raise CQError(f"CQ depth must be positive: {depth}")
        self.sim = sim
        self.depth = depth
        self.name = name
        self._nonempty_name = f"{name}.nonempty"
        self.entries: deque[CQE] = deque()
        self.overflowed = False
        self.armed = False
        #: Kernel hook: called on CQ event when armed (interrupt delivery).
        self.on_event: Optional[Callable[["CompletionQueue"], None]] = None
        self._nonempty_waiters: list["Event"] = []
        # Statistics.
        self.total_cqes = 0
        self.events_raised = 0

    # -- NIC side ---------------------------------------------------------------

    def push(self, cqe: CQE) -> None:
        """NIC deposits a completion (already timed by the engine)."""
        if len(self.entries) >= self.depth:
            # Real hardware transitions the CQ to error; we record and drop.
            self.overflowed = True
            raise CQError(f"CQ {self.name} overflow (depth {self.depth})")
        cqe.timestamp = self.sim.now
        self.entries.append(cqe)
        self.total_cqes += 1
        mon = self.sim._monitor
        if mon is not None:
            mon.on_cqe(self, cqe)
        waiters, self._nonempty_waiters = self._nonempty_waiters, []
        for ev in waiters:
            ev.succeed(self.sim.now)
        if self.armed:
            self.armed = False
            self.events_raised += 1
            if self.on_event is not None:
                self.on_event(self)

    # -- application side ----------------------------------------------------------

    def poll(self, max_entries: int = 16) -> list[CQE]:
        """Reap up to ``max_entries`` completions (data movement only;
        CPU cost is charged by the dataplane wrapper)."""
        if max_entries <= 0:
            raise CQError(f"poll max_entries must be positive: {max_entries}")
        out: list[CQE] = []
        while self.entries and len(out) < max_entries:
            out.append(self.entries.popleft())
        return out

    def req_notify(self) -> None:
        """Arm the CQ: the next pushed CQE raises a completion event."""
        self.armed = True

    def wait_nonempty(self) -> "Event":
        """Event that fires when the CQ holds at least one CQE.

        Fires immediately if it already does.  Used by waiter models to
        avoid simulating every spin of a poll loop.
        """
        ev = self.sim.event(name=self._nonempty_name)
        if self.entries:
            ev.succeed(self.sim.now)
        else:
            self._nonempty_waiters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.entries)
