"""Device contexts and the control plane.

Control-plane verbs (allocate PD, register MR, create CQ/QP, modify QP)
always go through the kernel via ``ioctl`` with serialized arguments
(paper §4) — in *both* bypass and CoRD.  Each helper here is a generator
that charges the caller's core the syscall + serialization + kernel work
and then mutates the data structures.

The interesting divergence — the data plane — lives in
:mod:`repro.core.dataplane`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import VerbsError
from repro.hw.cpu import Core
from repro.hw.memory import Buffer
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegionV, validate_registration
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import AccessFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.events import Event
    from repro.verbs.srq import SharedReceiveQueue

#: Serialization/deserialization of ioctl argument structures (paper §4:
#: "arguments to ibverbs calls are complex data structures that must be
#: serialized ... not performance critical for control-plane operations").
IOCTL_SERIALIZE_NS = 420.0
#: Kernel-side bookkeeping for object creation.
CTRL_KERNEL_NS = 900.0


class Device:
    """``ibv_device`` analogue: one per host NIC."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.name = f"mlx5_{host.host_id}"

    def open(self, core: Core) -> Generator["Event", object, "Context"]:
        """``ibv_open_device``: create a context (one ioctl)."""
        yield from core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        return Context(self, core)


@dataclass(frozen=True)
class DeviceAttr:
    """``ibv_device_attr`` analogue (the queryable capability subset)."""

    fw_ver: str
    max_qp: int
    max_cqe: int
    max_mr_size: int
    max_inline_data: int
    max_srq: int
    atomic_cap: bool
    phys_port_cnt: int = 1


@dataclass(frozen=True)
class PortAttr:
    """``ibv_port_attr`` analogue."""

    state: str  # "ACTIVE"
    active_mtu: int
    link_speed_gbps: float
    lid: int


class Context:
    """``ibv_context`` analogue, bound to the opening thread's core."""

    def __init__(self, device: Device, core: Core) -> None:
        self.device = device
        self.core = core
        self.host = device.host
        self.sim = device.host.sim
        self._cq_seq = 0

    # -- control-plane verbs ------------------------------------------------------

    def query_device(self) -> Generator["Event", object, DeviceAttr]:
        """``ibv_query_device``: the NIC's capability envelope."""
        yield from self.core.syscall(IOCTL_SERIALIZE_NS)
        nicp = self.host.nic.profile
        return DeviceAttr(
            fw_ver="sim-1.0",
            max_qp=1 << 18,
            max_cqe=1 << 22,
            max_mr_size=1 << 40,
            max_inline_data=nicp.inline_threshold,
            max_srq=1 << 16,
            atomic_cap=True,
        )

    def query_port(self, port: int = 1) -> Generator["Event", object, PortAttr]:
        """``ibv_query_port``."""
        if port != 1:
            raise VerbsError(f"device {self.device.name} has one port, not {port}")
        yield from self.core.syscall(IOCTL_SERIALIZE_NS)
        nicp = self.host.nic.profile
        return PortAttr(
            state="ACTIVE",
            active_mtu=nicp.mtu,
            link_speed_gbps=nicp.link_bw * 8,
            lid=self.host.host_id + 1,
        )

    def alloc_pd(self) -> Generator["Event", object, ProtectionDomain]:
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        return ProtectionDomain(self)

    def reg_mr(
        self,
        pd: ProtectionDomain,
        buffer: Buffer,
        access: AccessFlags = AccessFlags.LOCAL_WRITE,
        addr: Optional[int] = None,
        length: Optional[int] = None,
    ) -> Generator["Event", object, MemoryRegionV]:
        """``ibv_reg_mr``: pin pages and install keys (control plane)."""
        addr = buffer.addr if addr is None else addr
        length = buffer.length if length is None else length
        validate_registration(buffer, addr, length)
        pin_ns = self.host.mem_model.pin_ns(length)
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS + pin_ns)
        lkey, rkey = self.host.mr_table.next_keys()
        mr = MemoryRegionV(
            pd=pd, buffer=buffer, addr=addr, length=length,
            lkey=lkey, rkey=rkey, access=access,
        )
        pd.mrs.append(mr)
        self.host.mr_table.install(mr)
        return mr

    def dereg_mr(self, mr: MemoryRegionV) -> Generator["Event", object, None]:
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        self.host.mr_table.remove(mr)

    def create_cq(self, depth: int = 4096) -> Generator["Event", object, CompletionQueue]:
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        self._cq_seq += 1
        cq = CompletionQueue(
            self.sim, depth=depth, name=f"h{self.host.host_id}.cq{self._cq_seq}"
        )
        self.host.kernel.attach_cq(cq)
        return cq

    def create_srq(
        self, pd: ProtectionDomain, depth: int = 4096, limit: int = 0
    ) -> Generator["Event", object, "SharedReceiveQueue"]:
        """``ibv_create_srq``: a shared receive pool for many QPs."""
        from repro.verbs.srq import SharedReceiveQueue

        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        return SharedReceiveQueue(pd, depth=depth, limit=limit)

    def create_qp(
        self,
        pd: ProtectionDomain,
        transport: Transport,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        sq_depth: Optional[int] = None,
        rq_depth: Optional[int] = None,
        max_inline: Optional[int] = None,
        srq: "SharedReceiveQueue | None" = None,
    ) -> Generator["Event", object, QueuePair]:
        nicp = self.host.nic.profile
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        qp = QueuePair(
            pd=pd,
            transport=transport,
            send_cq=send_cq,
            recv_cq=recv_cq,
            qpn=self.host.nic.next_qpn(),
            sq_depth=sq_depth if sq_depth is not None else nicp.sq_depth,
            rq_depth=rq_depth if rq_depth is not None else nicp.rq_depth,
            max_inline=max_inline if max_inline is not None else nicp.inline_threshold,
            srq=srq,
        )
        pd.qps.append(qp)
        self.host.nic.register_qp(qp)
        qp.modify(QPState.INIT)
        return qp

    def connect_qp(
        self, qp: QueuePair, remote: tuple[int, int]
    ) -> Generator["Event", object, None]:
        """Bring an RC QP to RTS against ``remote`` (two modify_qp ioctls)."""
        if qp.transport is not Transport.RC:
            raise VerbsError("connect_qp is for RC; UD QPs go straight to RTS")
        if qp.state is QPState.RESET:
            # Reconnect after a reset: walk through INIT first.
            yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
            qp.modify(QPState.INIT)
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        qp.modify(QPState.RTR, remote=remote)
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        qp.modify(QPState.RTS)

    def activate_ud_qp(self, qp: QueuePair) -> Generator["Event", object, None]:
        """Bring a UD QP to RTS (no peer binding)."""
        if qp.transport is not Transport.UD:
            raise VerbsError("activate_ud_qp is for UD QPs")
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        qp.modify(QPState.RTR)
        yield from self.core.syscall(IOCTL_SERIALIZE_NS + CTRL_KERNEL_NS)
        qp.modify(QPState.RTS)
