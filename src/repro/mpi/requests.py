"""Nonblocking request handles."""

from __future__ import annotations

import itertools
from typing import Optional

_req_ids = itertools.count(1)


class Request:
    """An in-flight send or receive."""

    __slots__ = ("req_id", "kind", "done", "source", "tag", "nbytes", "data", "_on_done", "_localized")

    def __init__(self, kind: str, source: int = -1, tag: int = -1):
        self.req_id = next(_req_ids)
        self.kind = kind  # "send" | "recv"
        self.done = False
        #: Filled on completion (receives): actual source, tag, size, payload.
        self.source = source
        self.tag = tag
        self.nbytes: int = 0
        self.data: object = None
        self._on_done: Optional[callable] = None
        #: Sub-communicator envelope translation marker.
        self._localized = False

    def complete(
        self, source: int = -1, tag: int = -1, nbytes: int = 0, data: object = None
    ) -> None:
        assert not self.done, f"request {self.req_id} completed twice"
        self.done = True
        if source >= 0:
            self.source = source
        if tag >= 0:
            self.tag = tag
        self.nbytes = nbytes
        self.data = data
        if self._on_done is not None:
            self._on_done(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"<Request {self.req_id} {self.kind} {state}>"
