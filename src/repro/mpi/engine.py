"""Per-rank communication engines: verbs (bypass/CoRD) and IPoIB sockets.

The verbs engine implements the classic MPI-over-RDMA design:

- **eager** (<= threshold): payload is copied through a bounce buffer and
  SENT two-sided; the receiver copies out on match.  Costs two memcpys.
- **rendezvous** (> threshold): RTS (tiny send) -> CTS carrying the
  receiver's target address/rkey -> RDMA_WRITE_WITH_IMM straight into the
  target region (zero-copy) -> the immediate completes the receive.

Each rank owns one QP per peer (created by the world), one CQ shared by all
its QPs, a registered message region, and a progress engine that is driven
from blocking calls (no async progress thread, matching common MPI builds).

The socket engine sends everything eagerly through the IPoIB stack — the
kernel already copies, so rendezvous would buy nothing; this *is* the cost
structure that makes IPoIB slow in fig. 6.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import MPIError
from repro.mpi.requests import Request
from repro.verbs.wr import Opcode, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.core.dataplane import Dataplane
    from repro.hw.cpu import Core
    from repro.kernel.ipoib import IPoIBSocket
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.mr import MemoryRegionV
    from repro.verbs.qp import QueuePair

#: MPI envelope bytes charged on every wire message.
MPI_HEADER_BYTES = 48
#: Preposted recv WQEs per peer QP (replenished from progress).
RECV_SLOTS = 32

ANY = -1


# -- wire headers (ride the verbs `meta` sideband) ---------------------------


@dataclass
class EagerHdr:
    src_rank: int
    tag: int
    nbytes: int
    payload: object = None


@dataclass
class RtsHdr:
    src_rank: int
    tag: int
    nbytes: int
    msg_id: int


@dataclass
class CtsHdr:
    msg_id: int
    raddr: int
    rkey: int


@dataclass
class FinHdr:
    src_rank: int
    tag: int
    nbytes: int
    msg_id: int
    payload: object = None


@dataclass
class _PostedRecv:
    req: Request
    source: int
    tag: int

    def matches(self, src_rank: int, tag: int) -> bool:
        return (self.source in (ANY, src_rank)) and (self.tag in (ANY, tag))


@dataclass
class _Unexpected:
    src_rank: int
    tag: int
    hdr: object  # EagerHdr | RtsHdr


def match_first(posted: deque, src_rank: int, tag: int) -> Optional[_PostedRecv]:
    """Pop the first posted recv matching (src, tag), preserving MPI order."""
    for i, pr in enumerate(posted):
        if pr.matches(src_rank, tag):
            del posted[i]
            return pr
    return None


class RankEngine:
    """Interface shared by the transports."""

    def __init__(self, sim: "Simulator", rank: int, host: "Host", core: "Core"):
        self.sim = sim
        self.rank = rank
        self.host = host
        self.core = core
        self.posted: deque[_PostedRecv] = deque()
        self.unexpected: deque[_Unexpected] = deque()
        self.bytes_sent = 0
        self.msgs_sent = 0

    # overridables -------------------------------------------------------------

    def isend(self, dest: int, nbytes: int, tag: int, payload: object) -> Generator:
        raise NotImplementedError

    def irecv(self, source: int, tag: int) -> Generator:
        raise NotImplementedError

    def progress_until(self, cond) -> Generator:
        raise NotImplementedError

    def compute(self, work_ns: float) -> Generator:
        """Model a compute phase on this rank's core."""
        yield from self.core.run(work_ns)


# ---------------------------------------------------------------------------
# Verbs engine (bypass or CoRD, depending on the dataplane injected)
# ---------------------------------------------------------------------------

_msg_ids = itertools.count(1)


class VerbsRankEngine(RankEngine):
    def __init__(
        self,
        sim: "Simulator",
        rank: int,
        host: "Host",
        core: "Core",
        dataplane: "Dataplane",
        cq: "CompletionQueue",
        mr: "MemoryRegionV",
        eager_threshold: int = 8192,
    ):
        super().__init__(sim, rank, host, core)
        self.dataplane = dataplane
        self.cq = cq
        self.mr = mr
        self.buf = mr.buffer
        self.eager_threshold = eager_threshold
        self.qps: dict[int, "QueuePair"] = {}  # peer rank -> QP
        self.qpn_to_peer: dict[int, int] = {}
        self._wr_seq = itertools.count(1)
        #: wr_id -> ("eager"|"fin"|"ctrl", Request|None) for send completions.
        self._send_track: dict[int, tuple[str, Optional[Request]]] = {}
        #: msg_id -> (Request, payload) rendezvous sender state.
        self._rndv_send: dict[int, tuple[Request, int, object, int]] = {}
        #: msg_id -> Request rendezvous receiver state.
        self._rndv_recv: dict[int, Request] = {}
        #: region ring allocator offset for rendezvous targets.
        self._region_off = 0
        self._repost_due: dict[int, int] = {}  # peer -> count

    # -- wiring (done by the world) ----------------------------------------------

    def add_peer(self, peer: int, qp: "QueuePair") -> None:
        self.qps[peer] = qp
        self.qpn_to_peer[qp.qpn] = peer
        # Prepost the eager recv slots (uncharged: part of MPI_Init).
        for _ in range(RECV_SLOTS):
            self.host.nic.hw_post_recv(
                qp, RecvWR(wr_id=self._recv_wr_id(), addr=self.buf.addr,
                           length=self.buf.length, lkey=self.mr.lkey)
            )

    #: Set by the world: callable(rank_a, rank_b) wiring a QP pair lazily.
    _connect = None

    def _qp(self, peer: int) -> "QueuePair":
        qp = self.qps.get(peer)
        if qp is None:
            if self._connect is None:
                raise MPIError(
                    f"rank {self.rank} has no connection to rank {peer} "
                    "and no connector is installed"
                )
            self._connect(self.rank, peer)
            qp = self.qps[peer]
        return qp

    # -- wr_id namespace: even = recv, odd = send ---------------------------------

    def _send_wr_id(self) -> int:
        return next(self._wr_seq) * 2 + 1

    def _recv_wr_id(self) -> int:
        return next(self._wr_seq) * 2

    # -- public ops -----------------------------------------------------------------

    def isend(
        self, dest: int, nbytes: int, tag: int, payload: object = None
    ) -> Generator["Event", object, Request]:
        if dest == self.rank:
            raise MPIError("self-sends are not supported (use sendrecv patterns)")
        req = Request("send", tag=tag)
        qp = self._qp(dest)
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self.host.name).counter("mpi.protocol").inc(
                nbytes, key="eager" if nbytes <= self.eager_threshold else "rndv")
        if nbytes <= self.eager_threshold:
            # Copy into the bounce buffer (the eager protocol's cost).
            yield from self.core.run(self.host.mem_model.copy_ns(nbytes))
            yield from self._wait_sq(qp)
            wr_id = self._send_wr_id()
            self._send_track[wr_id] = ("eager", req)
            wr = SendWR(
                wr_id=wr_id, opcode=Opcode.SEND, addr=self.buf.addr,
                length=nbytes + MPI_HEADER_BYTES, lkey=self.mr.lkey,
                meta=EagerHdr(self.rank, tag, nbytes, payload),
            )
            yield from self.dataplane.post_send(qp, wr)
        else:
            msg_id = next(_msg_ids)
            self._rndv_send[msg_id] = (req, nbytes, payload, dest)
            yield from self._wait_sq(qp)
            wr_id = self._send_wr_id()
            self._send_track[wr_id] = ("ctrl", None)
            rts = SendWR(
                wr_id=wr_id, opcode=Opcode.SEND, addr=self.buf.addr,
                length=MPI_HEADER_BYTES, lkey=self.mr.lkey,
                meta=RtsHdr(self.rank, tag, nbytes, msg_id),
            )
            yield from self.dataplane.post_send(qp, rts)
        self.bytes_sent += nbytes
        self.msgs_sent += 1
        return req

    def irecv(
        self, source: int = ANY, tag: int = ANY
    ) -> Generator["Event", object, Request]:
        req = Request("recv", source=source, tag=tag)
        # Check the unexpected queue first (MPI ordering: earliest match).
        for i, um in enumerate(self.unexpected):
            pr = _PostedRecv(req, source, tag)
            if pr.matches(um.src_rank, um.tag):
                del self.unexpected[i]
                yield from self._deliver(pr, um.hdr)
                return req
        self.posted.append(_PostedRecv(req, source, tag))
        return req

    # -- matching/delivery -------------------------------------------------------------

    def _deliver(self, pr: _PostedRecv, hdr) -> Generator["Event", object, None]:
        if isinstance(hdr, EagerHdr):
            # Copy out of the bounce buffer into the user buffer.
            yield from self.core.run(self.host.mem_model.copy_ns(hdr.nbytes))
            pr.req.complete(hdr.src_rank, hdr.tag, hdr.nbytes, hdr.payload)
        elif isinstance(hdr, RtsHdr):
            yield from self._send_cts(pr, hdr)
        else:  # pragma: no cover - defensive
            raise MPIError(f"cannot deliver header {hdr!r}")

    def _send_cts(self, pr: _PostedRecv, rts: RtsHdr) -> Generator["Event", object, None]:
        # Carve a target region out of the ring (addresses are synthetic;
        # overlap after wraparound is harmless for timing studies).
        if self._region_off + rts.nbytes > self.buf.length:
            self._region_off = 0
        raddr = self.buf.addr + self._region_off
        self._region_off += min(rts.nbytes, self.buf.length)
        self._rndv_recv[rts.msg_id] = pr.req
        pr.req.source = rts.src_rank
        pr.req.tag = rts.tag
        qp = self._qp(rts.src_rank)
        yield from self._wait_sq(qp)
        wr_id = self._send_wr_id()
        self._send_track[wr_id] = ("ctrl", None)
        cts = SendWR(
            wr_id=wr_id, opcode=Opcode.SEND, addr=self.buf.addr,
            length=MPI_HEADER_BYTES, lkey=self.mr.lkey,
            meta=CtsHdr(rts.msg_id, raddr, self.mr.rkey),
        )
        yield from self.dataplane.post_send(qp, cts)

    def _start_rndv_data(self, cts: CtsHdr) -> Generator["Event", object, None]:
        req, nbytes, payload, dest = self._rndv_send.pop(cts.msg_id)
        qp = self._qp(dest)
        yield from self._wait_sq(qp)
        wr_id = self._send_wr_id()
        self._send_track[wr_id] = ("fin", req)
        wr = SendWR(
            wr_id=wr_id, opcode=Opcode.RDMA_WRITE_WITH_IMM, addr=self.buf.addr,
            length=nbytes, lkey=self.mr.lkey, imm=cts.msg_id,
            remote_addr=cts.raddr, rkey=cts.rkey,
            meta=FinHdr(self.rank, req.tag, nbytes, cts.msg_id, payload),
        )
        yield from self.dataplane.post_send(qp, wr)

    # -- progress ---------------------------------------------------------------------

    def _wait_sq(self, qp: "QueuePair") -> Generator["Event", object, None]:
        """Block (progressing) until the QP's send queue has room."""
        while qp.sq_outstanding >= qp.sq_depth - 1:
            yield from self._progress_once(block=True)

    def _progress_once(self, block: bool = False) -> Generator["Event", object, bool]:
        cqes = yield from self.dataplane.poll_cq(self.cq, 32)
        if not cqes and block:
            ready = self.cq.wait_nonempty()
            if not ready.processed:
                t0 = self.sim.now
                yield from self.core.busy_poll(ready, 0.0)
                self.dataplane._waited(self.sim.now - t0)
            cqes = yield from self.dataplane.poll_cq(self.cq, 32)
        if not cqes:
            return False
        for cqe in cqes:
            if not cqe.ok:
                raise MPIError(f"rank {self.rank}: completion error {cqe.status}")
            if cqe.wr_id & 1:
                yield from self._handle_send_cqe(cqe)
            else:
                yield from self._handle_recv_cqe(cqe)
        # Replenish consumed recv slots, one chained post per peer.
        for peer, count in list(self._repost_due.items()):
            if count:
                qp = self.qps[peer]
                wrs = [
                    RecvWR(wr_id=self._recv_wr_id(), addr=self.buf.addr,
                           length=self.buf.length, lkey=self.mr.lkey)
                    for _ in range(count)
                ]
                self._repost_due[peer] = 0
                yield from self.dataplane.post_recv_many(qp, wrs)
        return True

    def _handle_send_cqe(self, cqe) -> Generator["Event", object, None]:
        kind, req = self._send_track.pop(cqe.wr_id)
        if kind in ("eager", "fin") and req is not None:
            req.complete()
        return
        yield  # pragma: no cover

    def _handle_recv_cqe(self, cqe) -> Generator["Event", object, None]:
        peer = self.qpn_to_peer.get(cqe.qp_num)
        if cqe.opcode is Opcode.RDMA_WRITE_WITH_IMM:
            # Rendezvous FIN: the payload is already in place (zero copy).
            if peer is not None:
                self._repost_due[peer] = self._repost_due.get(peer, 0) + 1
            fin: FinHdr = cqe.meta
            req = self._rndv_recv.pop(fin.msg_id)
            req.complete(fin.src_rank, fin.tag, fin.nbytes, fin.payload)
            return
        if peer is not None:
            self._repost_due[peer] = self._repost_due.get(peer, 0) + 1
        hdr = cqe.meta
        if isinstance(hdr, CtsHdr):
            yield from self._start_rndv_data(hdr)
            return
        if isinstance(hdr, (EagerHdr, RtsHdr)):
            pr = match_first(self.posted, hdr.src_rank, hdr.tag)
            if pr is None:
                self.unexpected.append(_Unexpected(hdr.src_rank, hdr.tag, hdr))
            else:
                yield from self._deliver(pr, hdr)
            return
        raise MPIError(f"rank {self.rank}: unknown header {hdr!r}")

    def progress_until(self, cond) -> Generator["Event", object, None]:
        while not cond():
            yield from self._progress_once(block=True)


# ---------------------------------------------------------------------------
# Socket (IPoIB) engine
# ---------------------------------------------------------------------------


class SocketRankEngine(RankEngine):
    """Everything through the kernel socket stack — the fig. 6 comparator."""

    def __init__(
        self,
        sim: "Simulator",
        rank: int,
        host: "Host",
        core: "Core",
        sock: "IPoIBSocket",
        rank_addr,  # callable rank -> (host_id, port)
    ):
        super().__init__(sim, rank, host, core)
        self.sock = sock
        self.rank_addr = rank_addr

    def isend(
        self, dest: int, nbytes: int, tag: int, payload: object = None
    ) -> Generator["Event", object, Request]:
        req = Request("send")
        host_id, port = self.rank_addr(dest)
        yield from self.sock.sendto(
            self.core, host_id, port, nbytes + MPI_HEADER_BYTES,
            meta=EagerHdr(self.rank, tag, nbytes, payload),
        )
        # Socket semantics: the send completes once the kernel took the data.
        req.complete()
        self.bytes_sent += nbytes
        self.msgs_sent += 1
        return req

    def irecv(
        self, source: int = ANY, tag: int = ANY
    ) -> Generator["Event", object, Request]:
        req = Request("recv", source=source, tag=tag)
        for i, um in enumerate(self.unexpected):
            pr = _PostedRecv(req, source, tag)
            if pr.matches(um.src_rank, um.tag):
                del self.unexpected[i]
                hdr: EagerHdr = um.hdr
                req.complete(hdr.src_rank, hdr.tag, hdr.nbytes, hdr.payload)
                return req
        self.posted.append(_PostedRecv(req, source, tag))
        return req
        yield  # pragma: no cover - keeps the signature a generator

    def progress_until(self, cond) -> Generator["Event", object, None]:
        while not cond():
            _src, _nbytes, _data, meta = yield from self.sock.recvfrom(self.core)
            hdr: EagerHdr = meta
            pr = match_first(self.posted, hdr.src_rank, hdr.tag)
            if pr is None:
                self.unexpected.append(_Unexpected(hdr.src_rank, hdr.tag, hdr))
            else:
                pr.req.complete(hdr.src_rank, hdr.tag, hdr.nbytes, hdr.payload)
