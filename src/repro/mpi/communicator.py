"""The MPI communicator: point-to-point API + collectives entry points.

All operations are generators to be driven inside the rank's simulation
process.  ``data`` payloads are optional (numpy arrays or bytes); when
present they are delivered and, for reductions, combined for real — the
collectives tests verify numerical results, not just timing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.errors import MPIError
from repro.mpi import collectives as coll
from repro.mpi.engine import ANY, RankEngine
from repro.mpi.requests import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

ANY_SOURCE = ANY
ANY_TAG = ANY


def _payload_nbytes(nbytes: Optional[int], data: object) -> int:
    if nbytes is not None:
        return nbytes  # explicit size wins (payload may be any object)
    if data is None:
        raise MPIError("either nbytes or data must be given")
    if hasattr(data, "nbytes"):
        return int(data.nbytes)  # numpy
    try:
        return len(data)  # bytes-like
    except TypeError:
        raise MPIError(
            f"cannot infer message size from {type(data).__name__}; pass nbytes"
        ) from None


class Communicator:
    """MPI_COMM_WORLD analogue for one rank."""

    def __init__(self, engine: RankEngine, size: int):
        self.engine = engine
        self.size = size

    @property
    def rank(self) -> int:
        return self.engine.rank

    @property
    def sim(self):
        return self.engine.sim

    def _check_rank(self, r: int, what: str) -> None:
        if not 0 <= r < self.size:
            raise MPIError(f"{what} {r} out of range for world size {self.size}")

    # -- point to point ------------------------------------------------------------

    def isend(
        self, dest: int, nbytes: Optional[int] = None, tag: int = 0, data: object = None
    ) -> Generator["Event", object, Request]:
        self._check_rank(dest, "dest")
        n = _payload_nbytes(nbytes, data)
        req = yield from self.engine.isend(dest, n, tag, data)
        return req

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator["Event", object, Request]:
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        req = yield from self.engine.irecv(source, tag)
        return req

    def wait(self, req: Request) -> Generator["Event", object, Request]:
        yield from self.engine.progress_until(lambda: req.done)
        return req

    def waitall(self, reqs: Sequence[Request]) -> Generator["Event", object, None]:
        yield from self.engine.progress_until(lambda: all(r.done for r in reqs))

    def send(
        self, dest: int, nbytes: Optional[int] = None, tag: int = 0, data: object = None
    ) -> Generator["Event", object, None]:
        req = yield from self.isend(dest, nbytes, tag, data)
        yield from self.wait(req)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator["Event", object, Request]:
        req = yield from self.irecv(source, tag)
        yield from self.wait(req)
        return req

    def sendrecv(
        self,
        dest: int,
        source: int,
        nbytes: Optional[int] = None,
        tag: int = 0,
        data: object = None,
    ) -> Generator["Event", object, Request]:
        """Concurrent send+recv (the deadlock-free exchange primitive)."""
        rreq = yield from self.irecv(source, tag)
        sreq = yield from self.isend(dest, nbytes, tag, data)
        yield from self.waitall([sreq, rreq])
        return rreq

    # -- compute model ---------------------------------------------------------------

    def compute(self, work_ns: float) -> Generator["Event", object, None]:
        """Burn ``work_ns`` of CPU on this rank (NPB compute phases)."""
        yield from self.engine.compute(work_ns)

    # -- collectives -----------------------------------------------------------------

    def barrier(self) -> Generator["Event", object, None]:
        yield from coll.barrier(self)

    def bcast(self, root: int, nbytes: Optional[int] = None, data: object = None):
        return coll.bcast(self, root, _payload_nbytes(nbytes, data), data)

    def reduce(self, root: int, nbytes: Optional[int] = None, data: object = None, op=coll.SUM):
        return coll.reduce(self, root, _payload_nbytes(nbytes, data), data, op)

    def allreduce(self, nbytes: Optional[int] = None, data: object = None, op=coll.SUM):
        return coll.allreduce(self, _payload_nbytes(nbytes, data), data, op)

    def allgather(self, nbytes: Optional[int] = None, data: object = None):
        return coll.allgather(self, _payload_nbytes(nbytes, data), data)

    def alltoall(self, nbytes_per_peer: int, data_per_peer: Optional[list] = None):
        return coll.alltoall(self, nbytes_per_peer, data_per_peer)

    def alltoallv(self, send_counts: Sequence[int], data_per_peer: Optional[list] = None):
        return coll.alltoallv(self, send_counts, data_per_peer)

    def gather(self, root: int, nbytes: Optional[int] = None, data: object = None):
        return coll.gather(self, root, _payload_nbytes(nbytes, data), data)

    def scatter(self, root: int, nbytes_per_peer: int, data_per_peer: Optional[list] = None):
        return coll.scatter(self, root, nbytes_per_peer, data_per_peer)

    def reduce_scatter(self, nbytes_per_block: int,
                       data_per_block: Optional[list] = None, op=coll.SUM):
        return coll.reduce_scatter(self, nbytes_per_block, data_per_block, op)

    def scan(self, nbytes: Optional[int] = None, data: object = None, op=coll.SUM):
        return coll.scan(self, _payload_nbytes(nbytes, data), data, op)

    def exscan(self, nbytes: Optional[int] = None, data: object = None, op=coll.SUM):
        return coll.scan(self, _payload_nbytes(nbytes, data), data, op,
                         exclusive=True)

    # -- sub-communicators --------------------------------------------------------

    def _to_global(self, local: int) -> int:
        """Map a rank in this communicator to the world rank."""
        return local

    def split(
        self, color: Optional[int], key: int = 0
    ) -> Generator["Event", object, "Optional[SubCommunicator]"]:
        """``MPI_Comm_split``: collective over this communicator.

        Ranks with equal ``color`` form a sub-communicator ordered by
        ``(key, rank)``; ``color=None`` (MPI_UNDEFINED) returns None.
        Nested splits compose (splitting a sub-communicator works).
        """
        import zlib

        entries = yield from coll.allgather(self, 12, data=(color, key, self.rank))
        if color is None:
            return None
        members = sorted((k, r) for (c, k, r) in entries if c == color)
        global_ranks = [self._to_global(r) for _k, r in members]
        # A deterministic, member-agreed tag space disjoint from the
        # world's (< 2^31) and, with crc32 entropy, from sibling groups'.
        seed = repr((getattr(self, "_tag_base", 0), color, tuple(global_ranks)))
        tag_base = (zlib.crc32(seed.encode()) + 1) << 32
        return SubCommunicator(self, global_ranks, tag_base)


class SubCommunicator(Communicator):
    """A communicator over a subset of the world's ranks.

    Point-to-point ranks and tags are translated onto the engine: local
    rank i is ``ranks[i]`` (world ranks), and tags are offset into a
    per-communicator space so traffic never crosses communicators.
    Caveat (documented): ``ANY_TAG`` receives cannot be confined to the
    sub-communicator's tag space and are rejected.
    """

    def __init__(self, parent: Communicator, ranks: list, tag_base: int):
        super().__init__(parent.engine, len(ranks))
        self.parent = parent
        #: Members as *world* ranks, in local-rank order.
        self.ranks = list(ranks)
        self._tag_base = tag_base

    @property
    def rank(self) -> int:
        return self.ranks.index(self.engine.rank)

    def _to_global(self, local: int) -> int:
        return self.ranks[local]

    def _global(self, local: int) -> int:
        self._check_rank(local, "rank")
        return self.ranks[local]

    def isend(self, dest, nbytes=None, tag=0, data=None):
        n = _payload_nbytes(nbytes, data)
        req = yield from self.engine.isend(self._global(dest), n,
                                           self._tag_base + tag, data)
        return req

    def irecv(self, source=ANY, tag=ANY):
        if tag == ANY:
            raise MPIError(
                "ANY_TAG is not supported on sub-communicators (tag spaces "
                "are offset-encoded); use explicit tags"
            )
        gsource = ANY if source == ANY else self._global(source)
        req = yield from self.engine.irecv(gsource, self._tag_base + tag)
        return req

    def _localize(self, req) -> None:
        """Translate a completed request's envelope to local rank/tag space."""
        if getattr(req, "_localized", False) or not req.done:
            return
        if req.kind == "recv" and req.source >= 0 and req.source in self.ranks:
            req.source = self.ranks.index(req.source)
        if req.tag >= self._tag_base:
            req.tag -= self._tag_base
        req._localized = True

    def wait(self, req):
        yield from self.engine.progress_until(lambda: req.done)
        self._localize(req)
        return req

    def waitall(self, reqs):
        yield from self.engine.progress_until(lambda: all(r.done for r in reqs))
        for req in reqs:
            self._localize(req)
