"""The MPI world: rank placement, transport wiring, program launch.

``MpiWorld`` places ``size`` ranks over the cluster's hosts (block
placement), pins each to a core, and builds the per-rank engine for the
chosen transport:

- ``"bypass"`` — verbs with the classical user-level dataplane,
- ``"cord"``   — verbs with every dataplane op through the kernel,
- ``"ipoib"``  — kernel sockets over the same NIC.

Connections (RC QPs for verbs) are established lazily and without
simulated cost: NPB-style measurements exclude MPI_Init / connection
setup, and real MPI libraries establish connections on demand anyway.
The *dataplane* operations — the object of study — are always charged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.dataplane import BypassDataplane, CordDataplane
from repro.core.policy import PolicyChain
from repro.errors import ConfigError
from repro.mpi.communicator import Communicator
from repro.mpi.engine import SocketRankEngine, VerbsRankEngine
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegionV
from repro.verbs.pd import ProtectionDomain
from repro.verbs.qp import QPState, QueuePair, Transport
from repro.verbs.wr import AccessFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.engine import Simulator

TRANSPORTS = ("bypass", "cord", "ipoib")

#: Per-rank registered communication region.
RANK_BUF_BYTES = 16 * 1024 * 1024
#: Base port for IPoIB rank sockets.
RANK_PORT_BASE = 20_000


class MpiWorld:
    """All state for one MPI job on the simulated cluster."""

    def __init__(
        self,
        sim: "Simulator",
        hosts: list["Host"],
        size: int,
        transport: str = "bypass",
        eager_threshold: int = 8192,
        policies_factory: Optional[Callable[[int], PolicyChain]] = None,
    ):
        if transport not in TRANSPORTS:
            raise ConfigError(f"transport must be one of {TRANSPORTS}")
        if size < 1:
            raise ConfigError(f"world size must be >= 1, got {size}")
        self.sim = sim
        self.hosts = hosts
        self.size = size
        self.transport = transport
        self.eager_threshold = eager_threshold
        self.engines: list = []

        nhosts = len(hosts)
        for rank in range(size):
            host = hosts[rank * nhosts // size]
            core = host.cpus.pin()
            if transport in ("bypass", "cord"):
                engine = self._make_verbs_engine(
                    rank, host, core,
                    cord=(transport == "cord"),
                    policies=policies_factory(rank) if policies_factory else None,
                )
            else:
                engine = self._make_socket_engine(rank, host, core)
            self.engines.append(engine)
        if transport in ("bypass", "cord"):
            for engine in self.engines:
                engine._connect = self._connect_pair  # late binding, see _qp

    # -- engine construction (zero-cost control plane, see module docstring) ----

    def _make_verbs_engine(self, rank, host, core, cord, policies):
        pd = ProtectionDomain(context=None)
        cq = CompletionQueue(self.sim, depth=1 << 17, name=f"r{rank}.cq")
        space = host.new_address_space(f"rank{rank}")
        buf = space.alloc(RANK_BUF_BYTES)
        lkey, rkey = host.mr_table.next_keys()
        mr = MemoryRegionV(pd=pd, buffer=buf, addr=buf.addr, length=buf.length,
                           lkey=lkey, rkey=rkey, access=AccessFlags.all_remote())
        host.mr_table.install(mr)
        if cord:
            dataplane = CordDataplane(host, core, policies=policies,
                                      tenant=f"rank{rank}")
        else:
            if policies is not None and len(policies):
                raise ConfigError("bypass cannot enforce policies")
            dataplane = BypassDataplane(host, core, tenant=f"rank{rank}")
        engine = VerbsRankEngine(self.sim, rank, host, core, dataplane, cq, mr,
                                 eager_threshold=self.eager_threshold)
        return engine

    def _make_socket_engine(self, rank, host, core):
        device = host.kernel.ensure_ipoib()
        # All devices must share one cluster-wide registry.
        if not hasattr(self, "_ip_registry"):
            self._ip_registry = {}
        device.registry = self._ip_registry
        sock = device.socket()
        device.bind(sock, RANK_PORT_BASE + rank)
        return SocketRankEngine(
            self.sim, rank, host, core, sock, rank_addr=self._rank_addr
        )

    def _rank_addr(self, rank: int) -> tuple[int, int]:
        host = self.engines[rank].host
        return (host.host_id, RANK_PORT_BASE + rank)

    def _connect_pair(self, a: int, b: int) -> None:
        """Create and connect the RC QP pair between ranks a and b."""
        ea, eb = self.engines[a], self.engines[b]
        qa = self._new_qp(ea)
        qb = self._new_qp(eb)
        qa.modify(QPState.INIT)
        qa.modify(QPState.RTR, remote=(eb.host.host_id, qb.qpn))
        qa.modify(QPState.RTS)
        qb.modify(QPState.INIT)
        qb.modify(QPState.RTR, remote=(ea.host.host_id, qa.qpn))
        qb.modify(QPState.RTS)
        ea.add_peer(b, qa)
        eb.add_peer(a, qb)

    def _new_qp(self, engine) -> QueuePair:
        nicp = engine.host.nic.profile
        qp = QueuePair(
            pd=engine.mr.pd, transport=Transport.RC,
            send_cq=engine.cq, recv_cq=engine.cq,
            qpn=engine.host.nic.next_qpn(),
            sq_depth=nicp.sq_depth, rq_depth=max(nicp.rq_depth, 4096),
            max_inline=nicp.inline_threshold,
        )
        engine.host.nic.register_qp(qp)
        return qp

    # -- launching -----------------------------------------------------------------

    def comm(self, rank: int) -> Communicator:
        return Communicator(self.engines[rank], self.size)

    def launch(self, program: Callable, *args) -> list:
        """Spawn ``program(comm, *args)`` as one process per rank."""
        procs = []
        for rank in range(self.size):
            comm = self.comm(rank)
            procs.append(
                self.sim.process(program(comm, *args), name=f"mpi.rank{rank}")
            )
        return procs

    def run(self, program: Callable, *args) -> list:
        """Launch and run to completion; returns per-rank results."""
        procs = self.launch(program, *args)
        done = self.sim.all_of(procs)
        self.sim.run(done)
        return [p.value for p in procs]


def run_mpi(
    sim: "Simulator",
    hosts: list["Host"],
    size: int,
    program: Callable,
    *args,
    transport: str = "bypass",
    eager_threshold: int = 8192,
    policies_factory=None,
) -> list:
    """One-call convenience: build a world, run a program, return results."""
    world = MpiWorld(
        sim, hosts, size, transport=transport,
        eager_threshold=eager_threshold, policies_factory=policies_factory,
    )
    return world.run(program, *args)
